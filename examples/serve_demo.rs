//! A self-contained serving demo: boots the `lhmm-serve` TCP front end on
//! loopback, throws a mixed workload at it from several client threads —
//! one-shot batch requests and a live streaming session side by side —
//! then drains gracefully and prints the full metrics report.
//!
//! ```sh
//! cargo run --release --example serve_demo
//! ```

use lhmm::cellsim::traj::CellularTrajectory;
use lhmm::prelude::*;
use lhmm::serve::ServeClient;
use std::net::SocketAddr;
use std::thread;

/// One-shot client: match every `stride`-th held-out trajectory and count
/// the verdicts.
fn one_shot_worker(
    addr: SocketAddr,
    trajs: &[CellularTrajectory],
    offset: usize,
    stride: usize,
) -> (usize, usize, usize) {
    let mut client = ServeClient::connect(addr).expect("connect");
    let (mut routed, mut degraded, mut failed) = (0, 0, 0);
    for traj in trajs.iter().skip(offset).step_by(stride) {
        match client.one_shot(traj) {
            Ok(reply) => {
                routed += 1;
                if reply.degraded {
                    degraded += 1;
                }
            }
            Err(_) => failed += 1,
        }
    }
    (routed, degraded, failed)
}

/// Streaming client: open a session, push observations one at a time (the
/// mode a live vehicle feed would run in), then finish and take the route.
fn streaming_worker(addr: SocketAddr, session: u64, traj: &CellularTrajectory) -> usize {
    let mut client = ServeClient::connect(addr).expect("connect");
    client.open(session, 4).expect("open session");
    let mut committed = 0;
    for point in &traj.points {
        // An unmatchable observation (no candidates in radius) is
        // survivable: the session skips it and keeps streaming.
        if let Ok(c) = client.push(session, point) {
            committed = c as usize;
        }
    }
    let route = client.finish(session).expect("finish session");
    println!(
        "  streaming session {session}: {} observations -> {} segments (last commit {committed})",
        traj.len(),
        route.segments.len()
    );
    route.segments.len()
}

fn main() {
    println!("generating dataset and training a fast-test model ...");
    let ds = Dataset::generate(&DatasetConfig::tiny_test(42));
    let ctx = MatchContext {
        net: &ds.network,
        index: &ds.index,
        towers: &ds.towers,
    };
    let lhmm = Lhmm::train(&ds, LhmmConfig::fast_test(42));
    let registry = ModelRegistry::new(lhmm.model().clone(), "demo-v1");
    let trajs: Vec<_> = ds.test.iter().map(|r| r.cellular.clone()).collect();
    let stream_traj = &ds
        .test
        .iter()
        .max_by_key(|r| r.cellular.len())
        .expect("non-empty test split")
        .cellular;

    let config = ServeConfig {
        batch: BatchPolicy {
            max_batch: 8,
            workers: 2,
            ..Default::default()
        },
        ..Default::default()
    };
    println!(
        "serving {} one-shot trajectories from 3 clients plus 2 streaming sessions ...",
        trajs.len()
    );

    let report = thread::scope(|s| {
        let server = ServerHandle::start(
            s,
            ServeCtx {
                ctx,
                registry: &registry,
                scope: None,
            },
            config,
        )
        .expect("bind loopback server");
        let addr = server.addr();

        // The mixed workload: client threads live in an inner scope so
        // they all finish before the server drains.
        thread::scope(|cs| {
            let trajs = &trajs;
            for offset in 0..3 {
                cs.spawn(move || {
                    let (routed, degraded, failed) = one_shot_worker(addr, trajs, offset, 3);
                    println!(
                        "  one-shot client {offset}: {routed} routed ({degraded} degraded), {failed} failed"
                    );
                });
            }
            for session in [100u64, 200] {
                cs.spawn(move || streaming_worker(addr, session, stream_traj));
            }
        });

        // Model plane: the workload above fed refresh statistics, so derive
        // a candidate from them, promote it, and list what the registry now
        // holds — all over the same wire protocol, server still running.
        let mut admin = ServeClient::connect(addr).expect("connect admin");
        match admin.refresh() {
            Ok(models) if models.refreshed != 0 => {
                println!("\nrefresh derived candidate v{}", models.refreshed);
                admin.swap(models.refreshed).expect("promote candidate");
            }
            Ok(_) => println!("\nrefresh: no statistics accumulated, nothing derived"),
            Err(e) => println!("\nrefresh failed: {e}"),
        }
        let models = admin.versions().expect("list versions");
        println!("active v{} (previous v{}):", models.active, models.previous);
        for m in &models.manifests {
            println!(
                "  v{} [{}] fingerprint {:016x} ({} weight bytes)",
                m.version.0, m.label, m.fingerprint, m.weight_bytes
            );
        }

        server.shutdown_and_drain()
    });

    println!("\n{}", report.render());
    assert_eq!(report.in_flight_lost(), 0, "drain must lose nothing");
}
