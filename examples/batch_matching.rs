//! Batch matching: match a whole trajectory set in parallel with sharded
//! shortest-path caches, and inspect the engine telemetry.
//!
//! ```sh
//! cargo run --release --example batch_matching
//! ```

use lhmm::core::types::MatchContext;
use lhmm::eval::runner::evaluate_lhmm_batch;
use lhmm::prelude::*;

fn main() {
    println!("generating dataset ...");
    let ds = Dataset::generate(&DatasetConfig::tiny_test(42));

    println!("training LHMM ...");
    let lhmm = Lhmm::train(&ds, LhmmConfig::fast_test(42));

    // Match the entire held-out split in one call. `workers: 0` uses one
    // worker per CPU; results are byte-identical to a serial loop (see the
    // lhmm_core::batch module docs for the determinism argument).
    let ctx = MatchContext {
        net: &ds.network,
        index: &ds.index,
        towers: &ds.towers,
    };
    let trajs: Vec<_> = ds.test.iter().map(|r| r.cellular.clone()).collect();
    let matcher = BatchMatcher::new(lhmm.model(), BatchConfig::default());
    let (results, stats) = matcher.match_batch(&ctx, &trajs);
    println!(
        "matched {} trajectories on {} workers",
        results.len(),
        stats.per_worker.len()
    );
    println!(
        "warm layer: {} precomputed node pairs ({:.1} ms)",
        stats.warm_entries,
        stats.warm_time_s * 1e3
    );
    let total = stats.total();
    println!(
        "shortest-path queries: {} shard hits, {} warm hits, {} searches",
        total.cache_hits, total.cache_warm_hits, total.cache_misses
    );
    println!(
        "shortcuts: {} activations covering {} points; viterbi {:.1} ms total",
        total.shortcut_activations,
        total.shortcut_points,
        total.viterbi_time_s * 1e3
    );
    for (w, ws) in stats.per_worker.iter().enumerate() {
        println!(
            "  worker {w}: {} trajectories, {} shard hits / {} misses",
            ws.matched, ws.stats.cache_hits, ws.stats.cache_misses
        );
    }

    // The evaluation runner has a batch entry point, too: identical quality
    // metrics to `evaluate_matcher`, parallel wall-clock timing.
    let (report, _) = evaluate_lhmm_batch(&ds, lhmm.model(), &ds.test, BatchConfig::default());
    println!(
        "quality: precision {:.3}, recall {:.3}, CMF50 {:.3} ({:.1} ms/trajectory)",
        report.precision,
        report.recall,
        report.cmf50,
        report.avg_time_s * 1e3
    );
}
