//! Online map matching: feed cellular observations one at a time and watch
//! the committed path grow with a fixed lag — the mode a live traffic
//! system would run in.
//!
//! ```sh
//! cargo run --release --example streaming_matching
//! ```

use lhmm::core::candidates::{nearest_segments, to_candidates};
use lhmm::core::classic::{ClassicModel, ClassicObservation, ClassicTransition};
use lhmm::core::streaming::StreamingEngine;
use lhmm::eval::metrics::evaluate_path;
use lhmm::prelude::*;

fn main() {
    println!("generating dataset ...");
    let ds = Dataset::generate(&DatasetConfig::tiny_test(23));
    let rec = ds
        .test
        .iter()
        .max_by_key(|r| r.cellular.len())
        .expect("non-empty test split");
    let positions = rec.cellular.effective_positions();

    let mut model = ClassicModel::new(
        ClassicObservation::cellular(),
        ClassicTransition::cellular(),
        positions.clone(),
    );

    let lag = 3;
    let mut stream = StreamingEngine::new(&ds.network, lag);
    println!(
        "streaming {} observations with a {lag}-observation commit lag:\n",
        rec.cellular.len()
    );
    println!(
        "{:>5} {:>10} {:>12} {:>16}",
        "obs", "committed", "path segs", "path length (m)"
    );
    for (i, p) in rec.cellular.points.iter().enumerate() {
        let pairs = nearest_segments(&ds.network, &ds.index, positions[i], 20, 3_000.0);
        if pairs.is_empty() {
            continue;
        }
        let layer = to_candidates(&mut model, i, &pairs);
        let committed = match stream.push(positions[i], p.t, layer, &mut model) {
            Ok(n) => n,
            Err(e) => {
                // Unmatchable observation: skip it and keep streaming.
                println!("{i:>5} skipped ({e})");
                continue;
            }
        };
        println!(
            "{:>5} {:>10} {:>12} {:>16.0}",
            i,
            committed,
            stream.committed().len(),
            stream.committed().length(&ds.network)
        );
    }
    let path = stream.finish();
    let q = evaluate_path(&ds.network, &path, &rec.truth);
    println!(
        "\nfinal: {} segments | precision {:.3} | recall {:.3} | CMF50 {:.3}",
        path.len(),
        q.precision,
        q.recall,
        q.cmf50
    );
    println!("(offline LHMM with shortcuts remains the accuracy reference; streaming trades accuracy for latency)");
}
