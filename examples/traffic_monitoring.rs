//! Traffic monitoring from cellular data — the paper's motivating
//! application (§I): a telecom operator estimates road-level traffic
//! volumes by map-matching the cellular trajectories its network already
//! collects.
//!
//! ```sh
//! cargo run --release --example traffic_monitoring
//! ```

use lhmm::core::types::{MapMatcher, MatchContext};
use lhmm::network::graph::SegmentId;
use lhmm::prelude::*;
use std::collections::HashMap;

fn main() {
    println!("generating dataset ...");
    let ds = Dataset::generate(&DatasetConfig::tiny_test(7));
    println!("training LHMM ...");
    let mut lhmm = Lhmm::train(&ds, LhmmConfig::fast_test(7));
    let ctx = MatchContext {
        net: &ds.network,
        index: &ds.index,
        towers: &ds.towers,
    };

    // Match every held-out trajectory and accumulate per-road volumes.
    let mut matched_volume: HashMap<SegmentId, u32> = HashMap::new();
    let mut true_volume: HashMap<SegmentId, u32> = HashMap::new();
    for rec in &ds.test {
        let result = lhmm.match_trajectory(&ctx, &rec.cellular);
        for seg in result.path.segment_set() {
            *matched_volume.entry(seg).or_insert(0) += 1;
        }
        for seg in rec.truth.segment_set() {
            *true_volume.entry(seg).or_insert(0) += 1;
        }
    }

    // Report the busiest estimated roads and how well the estimate tracks
    // the (simulated) ground truth.
    let mut busiest: Vec<(SegmentId, u32)> = matched_volume.iter().map(|(&s, &v)| (s, v)).collect();
    busiest.sort_by_key(|&(_, v)| std::cmp::Reverse(v));
    println!("\ntop 10 busiest roads (estimated from cellular data):");
    println!(
        "{:>10} {:>8} {:>10} {:>12}",
        "segment", "volume", "true vol", "class"
    );
    for &(seg, vol) in busiest.iter().take(10) {
        println!(
            "{:>10} {:>8} {:>10} {:>12?}",
            seg.0,
            vol,
            true_volume.get(&seg).copied().unwrap_or(0),
            ds.network.segment(seg).class
        );
    }

    // Volume correlation over roads observed in either source.
    let all_roads: Vec<SegmentId> = {
        let mut v: Vec<SegmentId> = matched_volume
            .keys()
            .chain(true_volume.keys())
            .copied()
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let (mut sum_m, mut sum_t) = (0.0f64, 0.0f64);
    for &s in &all_roads {
        sum_m += f64::from(matched_volume.get(&s).copied().unwrap_or(0));
        sum_t += f64::from(true_volume.get(&s).copied().unwrap_or(0));
    }
    let (mean_m, mean_t) = (sum_m / all_roads.len() as f64, sum_t / all_roads.len() as f64);
    let (mut cov, mut var_m, mut var_t) = (0.0f64, 0.0f64, 0.0f64);
    for &s in &all_roads {
        let m = f64::from(matched_volume.get(&s).copied().unwrap_or(0)) - mean_m;
        let t = f64::from(true_volume.get(&s).copied().unwrap_or(0)) - mean_t;
        cov += m * t;
        var_m += m * m;
        var_t += t * t;
    }
    let corr = cov / (var_m.sqrt() * var_t.sqrt()).max(1e-12);
    println!(
        "\nvolume correlation (matched vs true) over {} roads: {:.3}",
        all_roads.len(),
        corr
    );
}
