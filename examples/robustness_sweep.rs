//! Sampling-rate robustness sweep (the Fig. 7b experiment in miniature):
//! LHMM vs the classic STM baseline as cellular sampling gets sparser.
//!
//! ```sh
//! cargo run --release --example robustness_sweep
//! ```

use lhmm::baselines::heuristic::stm;
use lhmm::cellsim::sampling::thin_to_rate;
use lhmm::cellsim::traj::TrajectoryRecord;
use lhmm::core::types::MapMatcher;
use lhmm::eval::runner::evaluate_matcher;
use lhmm::prelude::*;

fn main() {
    println!("generating dataset (dense sampling) ...");
    let mut cfg = DatasetConfig::tiny_test(19);
    cfg.sampling.cell_interval_mean = 20.0; // dense base rate to thin from
    let ds = Dataset::generate(&cfg);

    println!("training LHMM ...");
    let mut lhmm = Lhmm::train(&ds, LhmmConfig::fast_test(19));
    let mut stm_m = stm(&ds.network);

    println!(
        "\n{:>18} {:>12} {:>12}",
        "rate (per min)", "LHMM CMF50", "STM CMF50"
    );
    for rate in [0.5, 1.0, 1.5, 2.0, 3.0] {
        let thinned: Vec<TrajectoryRecord> = ds
            .test
            .iter()
            .map(|rec| {
                let (cellular, true_positions) =
                    thin_to_rate(&rec.cellular, &rec.true_positions, rate);
                TrajectoryRecord {
                    cellular,
                    gps: rec.gps.clone(),
                    truth: rec.truth.clone(),
                    true_positions,
                }
            })
            .filter(|r| r.cellular.len() >= 3)
            .collect();
        if thinned.is_empty() {
            continue;
        }
        let r_l = evaluate_matcher(&ds, &mut lhmm as &mut dyn MapMatcher, &thinned);
        let r_s = evaluate_matcher(&ds, &mut stm_m as &mut dyn MapMatcher, &thinned);
        println!("{rate:>18.1} {:>12.3} {:>12.3}", r_l.cmf50, r_s.cmf50);
    }
    println!("\nlower CMF50 is better; LHMM degrades more gracefully at sparse rates.");
}
