//! Bring your own data: load a road network and cellular trajectories from
//! CSV and match them — the deployment path for real operator data.
//!
//! This example first *exports* a synthetic network + trajectories to CSV
//! (standing in for your data warehouse dump), then loads both back through
//! the public I/O APIs and matches the loaded trajectories.
//!
//! ```sh
//! cargo run --release --example custom_data
//! ```

use lhmm::baselines::heuristic::stm;
use lhmm::cellsim::io::{read_trajectories, write_trajectories};
use lhmm::core::types::{MapMatcher, MatchContext};
use lhmm::network::io::{read_csv, write_csv};
use lhmm::network::spatial::SpatialIndex;
use lhmm::prelude::*;

fn main() {
    // --- Stand-in for your data export ---------------------------------
    let ds = Dataset::generate(&DatasetConfig::tiny_test(77));
    let mut nodes_csv = Vec::new();
    let mut segments_csv = Vec::new();
    write_csv(&ds.network, &mut nodes_csv, &mut segments_csv).expect("export network");
    let trajectories: Vec<_> = ds.test.iter().map(|r| r.cellular.clone()).collect();
    let mut traj_csv = Vec::new();
    write_trajectories(&trajectories, &mut traj_csv).expect("export trajectories");
    println!(
        "exported: {} node rows, {} segment rows, {} trajectory rows",
        nodes_csv.iter().filter(|&&b| b == b'\n').count(),
        segments_csv.iter().filter(|&&b| b == b'\n').count(),
        traj_csv.iter().filter(|&&b| b == b'\n').count(),
    );

    // --- The part your deployment would run ----------------------------
    let network = read_csv(nodes_csv.as_slice(), segments_csv.as_slice())
        .expect("load network from CSV");
    let index = SpatialIndex::build(&network, 250.0);
    let loaded = read_trajectories(traj_csv.as_slice()).expect("load trajectories");
    println!(
        "loaded network ({} segments) and {} trajectories",
        network.num_segments(),
        loaded.len()
    );

    // Match with the classic STM baseline (no training data needed; with
    // historical matched trips you would train `Lhmm` instead).
    let mut matcher = stm(&network);
    let ctx = MatchContext {
        net: &network,
        index: &index,
        towers: &ds.towers, // tower positions come with the trajectory data
    };
    let mut matched = 0usize;
    let mut total_segments = 0usize;
    for traj in &loaded {
        let result = matcher.match_trajectory(&ctx, traj);
        if !result.path.is_empty() {
            matched += 1;
            total_segments += result.path.len();
        }
    }
    println!(
        "matched {matched}/{} trajectories onto {total_segments} road segments total",
        loaded.len()
    );
}
