//! Dataset inspection: generate a Hangzhou-textured dataset, print its
//! Table-I characteristics, and export one trajectory (with its ground
//! truth) as GeoJSON for visual inspection.
//!
//! ```sh
//! cargo run --release --example dataset_inspection
//! ```

use lhmm::cellsim::stats;
use lhmm::prelude::*;
use std::fmt::Write as _;

fn main() {
    println!("generating hangzhou-like dataset at scale 0.02 ...");
    let ds = Dataset::generate(&DatasetConfig::hangzhou_like(0.02, 3));

    // Table-I style characteristics.
    println!("\n{}", stats::compute(&ds));

    // Positioning-error distribution (the paper's 0.1–3 km claim).
    let mut errs: Vec<f64> = ds
        .all_records()
        .flat_map(|r| r.positioning_errors())
        .collect();
    errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| errs[((errs.len() - 1) as f64 * p) as usize];
    println!("\npositioning error percentiles (m):");
    println!(
        "  p10 {:6.0}  p50 {:6.0}  p90 {:6.0}  p99 {:6.0}",
        pct(0.10),
        pct(0.50),
        pct(0.90),
        pct(0.99)
    );

    // Export the longest test trajectory as GeoJSON.
    let rec = ds
        .test
        .iter()
        .max_by_key(|r| r.cellular.len())
        .expect("non-empty test split");
    let mut geo = String::new();
    let truth_line: Vec<String> = rec
        .truth
        .polyline(&ds.network)
        .iter()
        .map(|p| format!("[{:.1},{:.1}]", p.x, p.y))
        .collect();
    let towers: Vec<String> = rec
        .cellular
        .points
        .iter()
        .map(|p| format!("[{:.1},{:.1}]", p.pos.x, p.pos.y))
        .collect();
    let _ = write!(
        geo,
        r#"{{"type":"FeatureCollection","features":[
 {{"type":"Feature","properties":{{"name":"truth"}},"geometry":{{"type":"LineString","coordinates":[{}]}}}},
 {{"type":"Feature","properties":{{"name":"cellular"}},"geometry":{{"type":"MultiPoint","coordinates":[{}]}}}}]}}"#,
        truth_line.join(","),
        towers.join(",")
    );
    let path = "dataset_sample.geojson";
    std::fs::write(path, geo).expect("write geojson");
    println!(
        "\nexported the longest test trajectory ({} points, {} truth segments) to {path}",
        rec.cellular.len(),
        rec.truth.len()
    );
}
