//! Quickstart: generate a small synthetic city, train LHMM, and match one
//! cellular trajectory.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lhmm::prelude::*;
use lhmm::core::types::MatchContext;
use lhmm::eval::metrics::evaluate_path;

fn main() {
    // 1. Generate a dataset: road network, cell towers, and simulated
    //    cellular trajectories with paired ground-truth paths.
    println!("generating dataset ...");
    let ds = Dataset::generate(&DatasetConfig::tiny_test(42));
    println!(
        "  {} segments, {} towers, {} train / {} test trajectories",
        ds.network.num_segments(),
        ds.towers.len(),
        ds.train.len(),
        ds.test.len()
    );

    // 2. Train the full LHMM pipeline: Het-Graph Encoder embeddings, the
    //    learned observation probability, and the learned transition
    //    probability.
    println!("training LHMM ...");
    let mut lhmm = Lhmm::train(&ds, LhmmConfig::fast_test(42));

    // 3. Match every held-out trajectory and compare with the ground truth.
    let ctx = MatchContext {
        net: &ds.network,
        index: &ds.index,
        towers: &ds.towers,
    };
    let (mut p, mut r, mut rmf, mut cmf) = (0.0, 0.0, 0.0, 0.0);
    for rec in &ds.test {
        let result = lhmm.match_trajectory(&ctx, &rec.cellular);
        let q = evaluate_path(&ds.network, &result.path, &rec.truth);
        p += q.precision;
        r += q.recall;
        rmf += q.rmf;
        cmf += q.cmf50;
    }
    let n = ds.test.len() as f64;
    println!("matched {} held-out trajectories; averages:", ds.test.len());
    println!(
        "precision {:.3} | recall {:.3} | RMF {:.3} | CMF50 {:.3}",
        p / n,
        r / n,
        rmf / n,
        cmf / n
    );
    println!("(lower RMF/CMF50 is better; see EXPERIMENTS.md for full-method comparisons)");
}
