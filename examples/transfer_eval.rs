//! Cross-city transfer evaluation — the measurement ROADMAP item 5 asks
//! for, over the three `tiny_city_*` variants (same scale, one axis of
//! variation each: tower density, density gradient, road topology).
//!
//! LHMM's learned `P_O`/`P_T` are trained per city: their embeddings are
//! indexed by the training city's segment and tower ids, so the weights
//! themselves cannot be applied to a different deployment. A rollout to a
//! new city therefore starts **zero-shot**: classic distance-based
//! probabilities with transferred hyperparameters. The transfer gap
//! reported here is what that forfeits — native learned quality minus
//! zero-shot classic quality, per city.
//!
//! The second half demonstrates the subsystem built to close that gap
//! without offline retraining: a stale model serves traffic through a
//! [`ModelRegistry`], served matches accumulate (tower, matched-segment)
//! co-occurrence statistics, `refresh` folds them into a re-derived
//! candidate version, and the candidate's quality is measured against the
//! stale incumbent on held-out data.
//!
//! ```sh
//! cargo run --release --example transfer_eval
//! ```

use lhmm::core::batch::{BatchConfig, BatchMatcher};
use lhmm::prelude::*;

const SEED: u64 = 9;

/// Mean held-out quality of `model` on its own city.
fn eval_on_test(ds: &Dataset, model: &LhmmModel) -> (MatchQuality, usize) {
    let ctx = MatchContext {
        net: &ds.network,
        index: &ds.index,
        towers: &ds.towers,
    };
    let matcher = BatchMatcher::new(model, BatchConfig::with_workers(2));
    let trajs: Vec<_> = ds.test.iter().map(|r| r.cellular.clone()).collect();
    let (results, _) = matcher.try_match_batch(&ctx, &trajs);
    let (mut sum, mut matched, mut failed) = (
        MatchQuality {
            precision: 0.0,
            recall: 0.0,
            rmf: 0.0,
            cmf50: 0.0,
        },
        0usize,
        0usize,
    );
    for (result, record) in results.iter().zip(&ds.test) {
        match result {
            Ok(m) => {
                let q = evaluate_path(&ds.network, &m.path, &record.truth);
                sum.precision += q.precision;
                sum.recall += q.recall;
                sum.rmf += q.rmf;
                sum.cmf50 += q.cmf50;
                matched += 1;
            }
            Err(_) => failed += 1,
        }
    }
    let n = matched.max(1) as f64;
    (
        MatchQuality {
            precision: sum.precision / n,
            recall: sum.recall / n,
            rmf: sum.rmf / n,
            cmf50: sum.cmf50 / n,
        },
        failed,
    )
}

fn classic_config(seed: u64) -> LhmmConfig {
    let mut cfg = LhmmConfig::fast_test(seed);
    cfg.use_learned_obs = false;
    cfg.use_learned_trans = false;
    cfg
}

fn main() {
    let cities = [
        ("A dense-towers", DatasetConfig::tiny_city_dense(SEED)),
        ("B steep-gradient", DatasetConfig::tiny_city_gradient(SEED)),
        ("C alt-topology", DatasetConfig::tiny_city_topology(SEED)),
    ];

    println!("== transfer gap: native learned vs zero-shot classic ==");
    println!("(zero-shot = what serving a new city without per-city retraining runs)\n");
    for (name, cfg) in &cities {
        let ds = Dataset::generate(cfg);
        let native = LhmmModel::train(&ds, LhmmConfig::fast_test(SEED));
        let zero_shot = LhmmModel::train(&ds, classic_config(SEED));
        let (nq, nf) = eval_on_test(&ds, &native);
        let (zq, zf) = eval_on_test(&ds, &zero_shot);
        println!("city {name} ({} towers, {} segments):", ds.towers.len(), ds.network.num_segments());
        println!(
            "  native LHMM   precision {:.3} recall {:.3} rmf {:.3} cmf50 {:.3} ({nf} failed)",
            nq.precision, nq.recall, nq.rmf, nq.cmf50
        );
        println!(
            "  zero-shot     precision {:.3} recall {:.3} rmf {:.3} cmf50 {:.3} ({zf} failed)",
            zq.precision, zq.recall, zq.rmf, zq.cmf50
        );
        println!(
            "  transfer gap  precision {:+.3} recall {:+.3}\n",
            nq.precision - zq.precision,
            nq.recall - zq.recall
        );
    }

    // The refresh loop on city B: a model trained on a third of the
    // training split stands in for a stale deployment; serving the
    // validation split feeds the registry's co-occurrence counters, and
    // `refresh` derives a candidate that is evaluated against the stale
    // incumbent on the untouched test split.
    println!("== online refresh on city B (accumulate -> refresh -> evaluate) ==\n");
    let ds = Dataset::generate(&DatasetConfig::tiny_city_gradient(SEED));
    let mut stale_ds = Dataset::generate(&DatasetConfig::tiny_city_gradient(SEED));
    stale_ds.train.truncate(stale_ds.train.len() / 3);
    let stale = LhmmModel::train(&stale_ds, LhmmConfig::fast_test(SEED));

    let registry = ModelRegistry::new(stale, "stale-b");
    let ctx = MatchContext {
        net: &ds.network,
        index: &ds.index,
        towers: &ds.towers,
    };
    let incumbent = registry.active();
    let matcher = BatchMatcher::new(&incumbent.model, BatchConfig::with_workers(2));
    let val: Vec<_> = ds.val.iter().map(|r| r.cellular.clone()).collect();
    let (results, _) = matcher.try_match_batch(&ctx, &val);
    for (result, traj) in results.iter().zip(&val) {
        if let Ok(m) = result {
            registry.observe(&ds.network, &traj.points, &m.path.segments);
        }
    }

    let candidate = registry
        .refresh("refresh-b-val")
        .expect("val split produced statistics");
    let refreshed = registry.resolve(candidate.0).expect("just registered");
    let (sq, _) = eval_on_test(&ds, &incumbent.model);
    let (rq, _) = eval_on_test(&ds, &refreshed.model);
    println!(
        "  stale v{}      precision {:.3} recall {:.3}",
        incumbent.manifest.version.0, sq.precision, sq.recall
    );
    println!(
        "  refreshed v{}  precision {:.3} recall {:.3} (derived from {} served trajectories)",
        refreshed.manifest.version.0,
        rq.precision,
        rq.recall,
        results.iter().filter(|r| r.is_ok()).count()
    );
    for m in registry.manifests() {
        println!(
            "  manifest v{} [{}] parent {:?} fingerprint {:016x}",
            m.version.0, m.label, m.parent.map(|p| p.0), m.fingerprint
        );
    }
}
