#!/usr/bin/env bash
# CI entry point: build, lint, and test the whole workspace.
#
#   ./ci.sh            # everything
#   ./ci.sh --fast     # skip the release build (lint + tests only)
#
# The integration suites run twice: single-threaded (RUST_TEST_THREADS=1)
# to surface ordering assumptions between tests, and with the default
# parallelism to surface shared-state races.
set -euo pipefail
cd "$(dirname "$0")"

fast=0
[ "${1:-}" = "--fast" ] && fast=1

run() {
  echo
  echo "==> $*"
  "$@"
}

if [ "$fast" -eq 0 ]; then
  run cargo build --release
  # Benches must keep compiling (they pin the scoring fast-path API).
  run cargo bench --workspace --no-run
fi

run cargo clippy --workspace --all-targets -- -D warnings

# Inference code must degrade through typed errors, never panic: deny
# unwrap/expect on the lhmm-core library target (test code is exempt via
# the crate's cfg_attr; training/test helpers assert with messages).
run cargo clippy -p lhmm-core --lib --no-deps -- -D warnings -D clippy::unwrap_used -D clippy::expect_used

# Same contract for the serving layer: a bad request or a slow client may
# shed or disconnect, but must never panic the server.
run cargo clippy -p lhmm-serve --lib --no-deps -- -D warnings -D clippy::unwrap_used -D clippy::expect_used

# The learned scorers and the experiment runner carry the same no-panic
# contract: a forward pass runs inside matching, and one degenerate
# trajectory must not abort a sweep.
run cargo clippy -p lhmm-neural --lib --no-deps -- -D warnings -D clippy::unwrap_used -D clippy::expect_used
run cargo clippy -p lhmm-eval --lib --no-deps -- -D warnings -D clippy::unwrap_used -D clippy::expect_used

# The shortest-path substrate backs every transition probability; both
# backends must degrade through Option/typed errors, never panic.
run cargo clippy -p lhmm-network --lib --no-deps -- -D warnings -D clippy::unwrap_used -D clippy::expect_used

# Workspace determinism & robustness linter (see DESIGN §10, §15): float
# comparisons, nondeterminism sources, hash iteration, panic paths,
# truncating casts, plus the concurrency pass — lock-order cycles over
# the workspace lock graph, guards held across blocking calls, and the
# unsafe/static fence — with zone policies per crate. New findings fail
# CI; the inference zone must additionally carry zero waived/baselined
# debt, and the lock-order/guard-across-blocking/unsafe-fence rules run
# against an empty baseline in every zone.
run cargo run -q -p lhmm-lint -- --deny

# Scheduling-nondeterminism smoke test: match the seeded adversarial
# corpus at two BatchMatcher worker counts (and once repeated) and require
# identical result fingerprints — including a run with the SIMD kernel
# forced to the scalar reference (kernel neutrality) and a witness lane
# (the swap run repeated under the runtime lock-hierarchy witness, which
# must change nothing and must observe rank-checked acquisitions).
run cargo run -q -p lhmm-lint -- --races

# Rendered API docs must stay warning-free (broken intra-doc links are the
# usual regression).
run env RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

# Unit + doc + integration tests, whole workspace.
run cargo test --workspace -q

# Integration tests under forced serial execution, then full parallelism.
# The parallel-vs-serial equivalence suite in particular must pass both
# ways: worker scheduling may never leak into results.
run env RUST_TEST_THREADS=1 cargo test -q --test batch_equivalence --test end_to_end --test matcher_contract
run cargo test -q --test batch_equivalence --test end_to_end --test matcher_contract

# Robustness gate: the adversarial fault-injection corpus and metamorphic
# relations must hold in every matching mode (serial/parallel/streaming,
# scalar/vectorized).
run cargo test -q --test fault_injection --test metamorphic

# SIMD-kernel exactness gate: the scoring-equivalence, fault-injection and
# kernel-corpus suites must pass with every kernel this machine supports
# forced via the LHMM_KERNEL startup env var (the in-process force_scope
# arm is covered by the suites themselves). Every path is pinned bitwise
# to the scalar reference, so these runs must be byte-identical replays.
for kern in $(cargo run -q -p lhmm-lint -- --kernels); do
  run env LHMM_KERNEL="$kern" cargo test -q --test scoring_equivalence --test fault_injection --test kernel_corpus
done

# The scalar-reference scoring oracle (feature-gated re-derivation of the
# fast path) must keep agreeing wherever it is compiled in.
run cargo test -q -p lhmm-core --features scalar-ref

# Exactness gate for the contraction-hierarchy backend: property-based
# Dijkstra-oracle equivalence (total_cmp equality, not tolerances) plus
# metamorphic shortest-path relations across both backends.
run cargo test -q -p lhmm-network --test ch_oracle --test sp_metamorphic

# Serving gate: real-TCP loopback equivalence (concurrent clients must be
# byte-identical to offline serial matching), typed overload shedding, and
# lose-nothing graceful drain.
run cargo test -q -p lhmm-serve

# Cluster gate (DESIGN §13): 4-shard verdict fingerprints byte-identical
# to single-process and offline serial — including mid-stream beam-state
# handoffs and a shard killed mid-stream (supervisor restart + journal
# replay, in_flight_lost() == 0) — plus decoder panic-freedom fuzzing
# over the extended frame set. Run serially as well: the supervisor's
# restart path must not depend on test scheduling.
run cargo test -q -p lhmm-serve --test cluster_loopback --test protocol_fuzz
run env RUST_TEST_THREADS=1 cargo test -q -p lhmm-serve --test cluster_loopback

# Model-lifecycle gate (DESIGN §14): the registry manifest property suite
# (bit-exact round-trips, typed failure on truncation/corruption, never a
# panic) and the hot-swap-under-load loopback suite (admission-pinned
# versions byte-matching each model's offline verdicts, shadow divergence
# accounting with no wire leakage, cluster-atomic swap across 4 shards,
# in_flight_lost() == 0 with a swap mid-run). The swap suite also runs
# serially: version pinning must not depend on test scheduling.
run cargo test -q -p lhmm-core --test registry_manifest_proptest
run cargo test -q -p lhmm-serve --test swap_loopback
run env RUST_TEST_THREADS=1 cargo test -q -p lhmm-serve --test swap_loopback

# Lock-hierarchy witness gate (DESIGN §15): the runtime twin of the
# lock-order lint. The witness harness proves a seeded inversion panics
# with both acquisition sites, then the serving, cluster, and swap
# suites run in RELEASE with the witness compiled in (the `lock-witness`
# feature; debug runs above already had it via debug_assertions), at one
# worker and at the default parallelism — every acquisition in every
# scenario is rank-checked, and zero inversions may fire.
run cargo test -q -p lhmm-core --release --features lock-witness --test lock_witness
run env RUST_TEST_THREADS=1 cargo test -q -p lhmm-serve --release --features lock-witness --test lock_witness --test loopback --test cluster_loopback --test swap_loopback
run cargo test -q -p lhmm-serve --release --features lock-witness --test lock_witness --test loopback --test cluster_loopback --test swap_loopback

echo
echo "ci: all checks passed"
