//! The [`Standard`] distribution and uniform range sampling, following
//! `rand` 0.8.5's algorithms exactly.

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution per type: full-range integers, `[0, 1)`
/// floats, fair booleans.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! standard_uint {
    ($($ty:ty => $method:ident),+ $(,)?) => {$(
        impl Distribution<$ty> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.$method() as $ty
            }
        }
    )+};
}

// Small ints truncate a u32; 64-bit and pointer-size draw a u64 (matching
// upstream's impl_int_from_uint choices on 64-bit targets).
standard_uint!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        // Upstream fills the high half first.
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 significant bits, scaled into [0, 1).
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        (rng.next_u32() as i32) < 0
    }
}

pub mod uniform {
    //! Uniform sampling over ranges.
    //!
    //! Integers use the widening-multiply method with rejection on the low
    //! word (`(range << range.leading_zeros()) - 1` zone); floats draw a
    //! `[1, 2)` mantissa and rescale. Both match `rand` 0.8.5's
    //! `sample_single` / `sample_single_inclusive` streams.

    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types that can be sampled uniformly from a range.
    pub trait SampleUniform: Sized {
        /// Uniform sample from `[low, high)`.
        fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        /// Uniform sample from `[low, high]`.
        fn sample_single_inclusive<R: RngCore + ?Sized>(
            low: Self,
            high: Self,
            rng: &mut R,
        ) -> Self;
    }

    /// Range types accepted by `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Draws one sample from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "gen_range: empty range");
            T::sample_single(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (start, end) = self.into_inner();
            assert!(start <= end, "gen_range: empty inclusive range");
            T::sample_single_inclusive(start, end, rng)
        }
    }

    macro_rules! uniform_int_impl {
        ($ty:ty, $uty:ty, $wide:ty, $gen:ident) => {
            impl SampleUniform for $ty {
                fn sample_single<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    let range = high.wrapping_sub(low) as $uty;
                    let zone = (range << range.leading_zeros()).wrapping_sub(1);
                    loop {
                        let v = rng.$gen() as $uty;
                        let m = (v as $wide) * (range as $wide);
                        let hi = (m >> <$uty>::BITS) as $uty;
                        let lo = m as $uty;
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }

                fn sample_single_inclusive<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    let range = (high.wrapping_sub(low) as $uty).wrapping_add(1);
                    if range == 0 {
                        // The full type range: any value works.
                        return rng.$gen() as $ty;
                    }
                    let zone = (range << range.leading_zeros()).wrapping_sub(1);
                    loop {
                        let v = rng.$gen() as $uty;
                        let m = (v as $wide) * (range as $wide);
                        let hi = (m >> <$uty>::BITS) as $uty;
                        let lo = m as $uty;
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }
            }
        };
    }

    uniform_int_impl!(u32, u32, u64, next_u32);
    uniform_int_impl!(i32, u32, u64, next_u32);
    uniform_int_impl!(u64, u64, u128, next_u64);
    uniform_int_impl!(i64, u64, u128, next_u64);
    uniform_int_impl!(usize, u64, u128, next_u64);
    uniform_int_impl!(isize, u64, u128, next_u64);

    macro_rules! uniform_float_impl {
        ($ty:ty, $uty:ty, $gen:ident, $bits_to_discard:expr, $exp_bias:expr, $frac_bits:expr) => {
            impl SampleUniform for $ty {
                fn sample_single<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    let scale = high - low;
                    loop {
                        // A value in [1, 2): exponent 0, random mantissa.
                        let bits = (rng.$gen() >> $bits_to_discard)
                            | (($exp_bias as $uty) << $frac_bits);
                        let value1_2 = <$ty>::from_bits(bits);
                        let value0_1 = value1_2 - 1.0;
                        let res = value0_1 * scale + low;
                        // Rounding can push the result onto `high`; resample.
                        if res < high {
                            return res;
                        }
                    }
                }

                fn sample_single_inclusive<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    let bits = (rng.$gen() >> $bits_to_discard)
                        | (($exp_bias as $uty) << $frac_bits);
                    let value0_1 = <$ty>::from_bits(bits) - 1.0;
                    value0_1 * (high - low) + low
                }
            }
        };
    }

    uniform_float_impl!(f64, u64, next_u64, 12, 1023u64, 52);
    uniform_float_impl!(f32, u32, next_u32, 9, 127u32, 23);

    #[cfg(test)]
    mod tests {
        use crate::rngs::StdRng;
        use crate::{Rng, SeedableRng};

        #[test]
        fn small_ranges_cover_all_values() {
            let mut rng = StdRng::seed_from_u64(17);
            let mut seen = [false; 5];
            for _ in 0..1000 {
                seen[rng.gen_range(0..5usize)] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }

        #[test]
        fn negative_float_ranges() {
            let mut rng = StdRng::seed_from_u64(18);
            for _ in 0..1000 {
                let v = rng.gen_range(-100.0..-1.0f64);
                assert!((-100.0..-1.0).contains(&v));
            }
        }

        #[test]
        fn inclusive_hits_endpoint() {
            let mut rng = StdRng::seed_from_u64(19);
            let mut hit_top = false;
            for _ in 0..200 {
                if rng.gen_range(0..=3u32) == 3 {
                    hit_top = true;
                }
            }
            assert!(hit_top);
        }
    }
}
