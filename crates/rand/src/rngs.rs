//! Concrete generators: [`StdRng`] (ChaCha12) and [`SmallRng`]
//! (xoshiro256++), matching `rand` 0.8.5's choices.

use crate::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
/// Words buffered per refill: four 16-word ChaCha blocks, the same buffer
/// size `rand_chacha` uses. The buffer length is observable through the
/// word-straddling behavior of `next_u64`, so it must match for
/// stream compatibility.
const BUF_WORDS: usize = 64;

#[inline(always)]
fn quarter_round(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

/// One 12-round ChaCha block: key || 64-bit counter || zero nonce.
fn chacha12_block(key: &[u32; 8], counter: u64, out: &mut [u32]) {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&CHACHA_CONSTANTS);
    state[4..12].copy_from_slice(key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    // Words 14-15: stream id, zero by default (as ChaCha12Rng::from_seed).
    let mut w = state;
    for _ in 0..6 {
        // Column round.
        quarter_round(&mut w, 0, 4, 8, 12);
        quarter_round(&mut w, 1, 5, 9, 13);
        quarter_round(&mut w, 2, 6, 10, 14);
        quarter_round(&mut w, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut w, 0, 5, 10, 15);
        quarter_round(&mut w, 1, 6, 11, 12);
        quarter_round(&mut w, 2, 7, 8, 13);
        quarter_round(&mut w, 3, 4, 9, 14);
    }
    for i in 0..16 {
        out[i] = w[i].wrapping_add(state[i]);
    }
}

/// The standard generator: ChaCha with 12 rounds (`rand` 0.8's `StdRng`).
#[derive(Clone, Debug)]
pub struct StdRng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; BUF_WORDS],
    /// Next unread word; `BUF_WORDS` means the buffer is exhausted.
    index: usize,
}

impl StdRng {
    fn refill(&mut self) {
        for block in 0..BUF_WORDS / 16 {
            chacha12_block(
                &self.key,
                self.counter,
                &mut self.buf[block * 16..(block + 1) * 16],
            );
            self.counter = self.counter.wrapping_add(1);
        }
    }

    /// Refills the buffer and sets the read index, mirroring `BlockRng`'s
    /// `generate_and_set`.
    fn generate_and_set(&mut self, index: usize) {
        self.refill();
        self.index = index;
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, w) in key.iter_mut().enumerate() {
            *w = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        StdRng {
            key,
            counter: 0,
            buf: [0; BUF_WORDS],
            index: BUF_WORDS,
        }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.generate_and_set(0);
        }
        let v = self.buf[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        // Matches rand_core's BlockRng::next_u64, including the case where
        // the two halves straddle a buffer refill.
        let index = self.index;
        if index < BUF_WORDS - 1 {
            self.index += 2;
            (u64::from(self.buf[index + 1]) << 32) | u64::from(self.buf[index])
        } else if index >= BUF_WORDS {
            self.generate_and_set(2);
            (u64::from(self.buf[1]) << 32) | u64::from(self.buf[0])
        } else {
            let lo = u64::from(self.buf[BUF_WORDS - 1]);
            self.generate_and_set(1);
            let hi = u64::from(self.buf[0]);
            (hi << 32) | lo
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_u32().to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
    }
}

/// A small, fast generator: xoshiro256++ (`rand` 0.8's 64-bit `SmallRng`).
#[cfg(feature = "small_rng")]
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

#[cfg(feature = "small_rng")]
impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, w) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[8 * i..8 * i + 8]);
            *w = u64::from_le_bytes(bytes);
        }
        // All-zero state would be a fixed point.
        if s.iter().all(|&w| w == 0) {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        SmallRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        // Upstream xoshiro seeds from a SplitMix64 stream rather than the
        // default PCG32 expansion.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }
}

#[cfg(feature = "small_rng")]
impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeedableRng;

    #[test]
    fn from_seed_reads_key_little_endian() {
        let mut seed = [0u8; 32];
        seed[0] = 1;
        let rng = StdRng::from_seed(seed);
        assert_eq!(rng.key[0], 1);
        assert_eq!(rng.counter, 0);
    }

    #[test]
    fn chacha_blocks_differ_per_counter() {
        let key = [7u32; 8];
        let mut a = [0u32; 16];
        let mut b = [0u32; 16];
        chacha12_block(&key, 0, &mut a);
        chacha12_block(&key, 1, &mut b);
        assert_ne!(a, b);
        // Deterministic for equal inputs.
        let mut a2 = [0u32; 16];
        chacha12_block(&key, 0, &mut a2);
        assert_eq!(a, a2);
    }

    #[cfg(feature = "small_rng")]
    #[test]
    fn small_rng_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(5);
        let mut b = SmallRng::seed_from_u64(5);
        assert!((0..100).all(|_| a.next_u64() == b.next_u64()));
    }
}
