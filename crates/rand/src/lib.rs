//! Offline reimplementation of the subset of the `rand` 0.8 API used by this
//! workspace.
//!
//! The build environment has no registry access, so the canonical crate
//! cannot be fetched. Everything here follows the upstream algorithms
//! exactly so that seeded generators produce bit-identical streams:
//!
//! * [`SeedableRng::seed_from_u64`] expands the seed with PCG32, as
//!   `rand_core` 0.6 does.
//! * [`rngs::StdRng`] is ChaCha with 12 rounds, a 64-bit block counter and a
//!   four-block (256-byte) output buffer, matching `rand_chacha`'s
//!   `ChaCha12Rng` word-for-word — including the buffer-straddling behavior
//!   of `next_u64` at the end of a buffer.
//! * `gen_range` uses the widening-multiply rejection method for integers
//!   and the `[1, 2)` mantissa trick for floats, as `rand` 0.8.5 does.
//!
//! Only the APIs the workspace actually calls are provided: `Rng::{gen,
//! gen_range, gen_bool}`, `SeedableRng::{from_seed, seed_from_u64}`,
//! `rngs::StdRng`, `rngs::SmallRng` and `seq::SliceRandom`.

#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator: uniformly distributed raw words.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed by expanding it with PCG32
    /// (identical to `rand_core` 0.6's default implementation).
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // Advance the state first, in case the input has low Hamming
            // weight.
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            let bytes = x.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Convenience methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (Bernoulli via a 64-bit integer
    /// threshold, as `rand` 0.8's `Bernoulli` does).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        if p >= 1.0 {
            return true;
        }
        // 2^64 as f64; (p * SCALE) as u64 saturates exactly as upstream.
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(12345);
        let mut b = StdRng::seed_from_u64(12345);
        for _ in 0..1000 {
            assert_eq!(a.next_u32(), b.next_u32());
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).all(|_| a.next_u64() == b.next_u64());
        assert!(!same);
    }

    #[test]
    fn interleaved_u32_u64_straddles_buffer_consistently() {
        // Drains the 64-word buffer with an odd number of u32 reads so
        // next_u64 must straddle a refill; the sequence must still be
        // deterministic and free of repeats at the boundary.
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..63 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
        assert_eq!(a.next_u64(), b.next_u64());
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20usize);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-3.0..7.0f64);
            assert!((-3.0..7.0).contains(&f));
            let i = rng.gen_range(0..=5u32);
            assert!(i <= 5);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buckets = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            buckets[rng.gen_range(0..10usize)] += 1;
        }
        for &b in &buckets {
            let expected = n / 10;
            assert!(
                (b as i64 - expected as i64).unsigned_abs() < (expected / 10) as u64,
                "bucket count {b} far from {expected}"
            );
        }
    }

    #[test]
    fn standard_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let heads = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let frac = heads as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }
}
