//! Sequence helpers: shuffling and random element choice.

use crate::distributions::uniform::SampleUniform;
use crate::RngCore;

/// Randomized operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates, identical draw sequence
    /// to `rand` 0.8.5's implementation).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns one uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        // Upstream iterates from the top, drawing gen_range(0..=i).
        for i in (1..self.len()).rev() {
            let j = <usize as SampleUniform>::sample_single_inclusive(0, i, rng);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = <usize as SampleUniform>::sample_single(0, self.len(), rng);
            Some(&self[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // Astronomically unlikely to be identity.
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_is_deterministic() {
        let mut a_rng = StdRng::seed_from_u64(9);
        let mut b_rng = StdRng::seed_from_u64(9);
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        a.shuffle(&mut a_rng);
        b.shuffle(&mut b_rng);
        assert_eq!(a, b);
    }

    #[test]
    fn choose_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(10);
        let v = [1, 2, 3];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
