//! Offline shim for the subset of the `proptest` 1.x API used by this
//! workspace.
//!
//! The build sandbox has no registry access, so the canonical crate cannot
//! be fetched. This shim keeps the same surface syntax — `proptest!`,
//! `prop_assert!`, `prop_assert_eq!`, `prop_assume!`, range/tuple/`vec`
//! strategies and `prop_map` — over a deterministic generator seeded from
//! the test name, so each property runs the same cases on every execution.
//!
//! Differences from upstream, by design:
//!
//! * No shrinking. A failing case panics immediately with the assertion
//!   message and the case number; rerunning reproduces it exactly.
//! * Strategies are simple samplers (`fn sample(&mut StdRng) -> Value`);
//!   rejection happens only at the whole-case level via `prop_assume!`.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface, mirroring `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. Mirrors upstream syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u64..100, (a, b) in my_strategy()) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let __strategy = ($($strat,)+);
            $crate::test_runner::run(
                &__config,
                stringify!($name),
                &__strategy,
                |__values| {
                    let ($($pat,)+) = __values;
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_items!(($config) $($rest)*);
    };
}

/// Asserts a condition inside a property; on failure the current case fails
/// with the condition text (and optional formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond))));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)+))));
        }
    };
}

/// Asserts two expressions are equal (`==`), reporting both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r)));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)+))));
        }
    }};
}

/// Asserts two expressions are unequal (`!=`), reporting both values.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if !(l != r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), l)));
        }
    }};
}

/// Discards the current case (retried with a fresh sample, not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond))));
        }
    };
}
