//! The case-running loop: sample, execute, retry on rejection, panic on
//! failure.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration. Only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// How many accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream's default case count.
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the whole property fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; retried with a fresh sample.
    Reject(String),
}

impl TestCaseError {
    /// Builds a [`TestCaseError::Fail`].
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a [`TestCaseError::Reject`].
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// FNV-1a, used to derive a per-test seed from the test name so different
/// properties see different (but stable) case sequences.
fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `config.cases` accepted cases of `test` over values drawn from
/// `strategy`. Panics on the first failing case; rejected cases are retried
/// (up to an overall cap) without being counted.
pub fn run<S, F>(config: &ProptestConfig, name: &str, strategy: &S, mut test: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let mut rng = StdRng::seed_from_u64(seed_for(name));
    let max_rejects = 1024u64.max(u64::from(config.cases) * 8);
    let mut rejects = 0u64;
    for case in 0..config.cases {
        loop {
            let value = strategy.sample(&mut rng);
            match test(value) {
                Ok(()) => break,
                Err(TestCaseError::Reject(why)) => {
                    rejects += 1;
                    assert!(
                        rejects <= max_rejects,
                        "property {name}: too many rejected cases ({rejects}); last: {why}"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("property {name} failed at case {case}/{}: {msg}", config.cases)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_the_requested_number_of_cases() {
        let mut count = 0;
        run(&ProptestConfig::with_cases(40), "count", &(0..5u32), |_| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, 40);
    }

    #[test]
    fn rejections_are_retried_not_counted() {
        let mut accepted = 0;
        run(&ProptestConfig::with_cases(10), "rej", &(0..10u32), |v| {
            if v < 5 {
                return Err(TestCaseError::reject("low"));
            }
            accepted += 1;
            Ok(())
        });
        assert_eq!(accepted, 10);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_panic() {
        run(&ProptestConfig::with_cases(10), "fail", &(0..10u32), |_| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    fn macro_roundtrip() {
        crate::proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn inner(x in 0u64..100, (a, b) in (0.0..1.0f64, 0..3i32)) {
                crate::prop_assert!(x < 100);
                crate::prop_assert!((0.0..1.0).contains(&a));
                crate::prop_assert!((0..3).contains(&b));
            }
        }
        inner();
    }
}
