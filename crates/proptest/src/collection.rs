//! Collection strategies: `vec` with a size range.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// The number of elements a collection strategy may produce.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange { min: exact, max: exact + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "vec size range is empty");
        SizeRange { min: r.start, max: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (start, end) = r.into_inner();
        assert!(start <= end, "vec size range is empty");
        SizeRange { min: start, max: end + 1 }
    }
}

/// A strategy producing `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// The result of [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..self.size.max);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_lengths_stay_in_range() {
        let strat = vec(0..100u32, 2..7);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn exact_size() {
        let strat = vec(0.0..1.0f64, 4usize);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(strat.sample(&mut rng).len(), 4);
    }
}
