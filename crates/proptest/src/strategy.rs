//! Value-generation strategies: ranges, tuples, `Just`, and `prop_map`.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A source of random test values.
///
/// Unlike upstream, a strategy here is a plain sampler: it draws one value
/// per case and carries no shrinking state.
pub trait Strategy {
    /// The type of values produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms produced values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for Range<T>
where
    T: rand::distributions::uniform::SampleUniform + PartialOrd + Clone,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: rand::distributions::uniform::SampleUniform + PartialOrd + Clone,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> S::Value {
        (**self).sample(rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn range_and_map_compose() {
        let strat = (0..10i32, 0.0..1.0f64).prop_map(|(i, f)| i as f64 + f);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((0.0..10.0).contains(&v));
        }
    }

    #[test]
    fn just_is_constant() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(Just(41).sample(&mut rng), 41);
    }
}
