//! Deterministic fault injection and adversarial-corpus generation.
//!
//! The matching pipeline's robustness claim (paper §IV-E, Algorithm 2) is
//! that it degrades gracefully on "unqualified" inputs — extreme cellular
//! noise, oscillating handovers, sparse or duplicated feeds. This module
//! *produces* exactly that input class, reproducibly: every injector is
//! driven by a seeded RNG, and a [`FaultPlan`] derives its stream from
//! `(master seed, plan name, trajectory index)` alone, so a corpus is a
//! pure function of its seed ([`AdversarialCorpus::fingerprint`] pins
//! byte-level reproducibility in tests).
//!
//! The injectors mirror the failure modes real cellular feeds exhibit
//! (CT-Mapper, Zero-Shot CTMM): observation loss, stuttering duplicates,
//! out-of-order delivery, tower ping-pong, off-network teleports, degenerate
//! 0/1/2-point trajectories and corrupted clocks.

use crate::randkit::mix64;
use crate::traj::{CellularPoint, CellularTrajectory};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One seeded corruption of a cellular trajectory. Probabilities are
/// per-observation and independent unless noted.
#[derive(Clone, Debug)]
pub enum Fault {
    /// Drop each observation with probability `p` (coverage gaps; the
    /// sparse feeds CT-Mapper stresses).
    Drop { p: f64 },
    /// Emit each observation twice with probability `p` — same tower,
    /// position *and* timestamp (a stuttering upstream collector).
    Duplicate { p: f64 },
    /// Swap each adjacent observation pair with probability `p`
    /// (out-of-order delivery; breaks timestamp monotonicity).
    SwapAdjacent { p: f64 },
    /// Tower ping-pong: with probability `p`, an interior observation is
    /// replaced by its predecessor's tower/position (handover oscillation
    /// between two serving cells, `A B A B …`).
    PingPong { p: f64 },
    /// Teleport an observation `distance` meters in a seeded direction
    /// with probability `p` (multipath ghost cells / off-network points).
    /// Clears any smoothed position: the corrupted feed is pre-filter.
    Teleport { p: f64, distance: f64 },
    /// Keep only the first `keep` observations (0, 1 and 2 are the
    /// degenerate trajectories every engine entry point must survive).
    Truncate { keep: usize },
    /// With probability `p`, copy the predecessor's timestamp onto an
    /// observation (frozen clock: `dt = 0`).
    EqualTimestamps { p: f64 },
    /// With probability `p`, swap an observation's timestamp with its
    /// predecessor's (non-monotone time: `dt < 0`).
    NonMonotoneTimestamps { p: f64 },
    /// With probability `p`, push a timestamp `offset_s` seconds into the
    /// future (clock jumps / 32-bit epoch bugs upstream).
    FarFutureTimestamps { p: f64, offset_s: f64 },
}

/// Applies one fault to a trajectory, drawing randomness from `rng`.
pub fn inject(traj: &CellularTrajectory, fault: &Fault, rng: &mut StdRng) -> CellularTrajectory {
    let pts = &traj.points;
    let points: Vec<CellularPoint> = match *fault {
        Fault::Drop { p } => pts.iter().copied().filter(|_| !hit(rng, p)).collect(),
        Fault::Duplicate { p } => {
            let mut out = Vec::with_capacity(pts.len() * 2);
            for pt in pts {
                out.push(*pt);
                if hit(rng, p) {
                    out.push(*pt);
                }
            }
            out
        }
        Fault::SwapAdjacent { p } => {
            let mut out = pts.clone();
            let mut i = 0;
            while i + 1 < out.len() {
                if hit(rng, p) {
                    out.swap(i, i + 1);
                    i += 2; // a swapped pair is not re-swapped
                } else {
                    i += 1;
                }
            }
            out
        }
        Fault::PingPong { p } => {
            let mut out = pts.clone();
            for i in 1..out.len() {
                if hit(rng, p) {
                    let prev = pts[i - 1];
                    out[i].tower = prev.tower;
                    out[i].pos = prev.pos;
                    out[i].smoothed = prev.smoothed;
                }
            }
            out
        }
        Fault::Teleport { p, distance } => {
            let mut out = pts.clone();
            for pt in &mut out {
                if hit(rng, p) {
                    let theta = rng.gen::<f64>() * std::f64::consts::TAU;
                    pt.pos = lhmm_geo::Point::new(
                        pt.pos.x + distance * theta.cos(),
                        pt.pos.y + distance * theta.sin(),
                    );
                    pt.smoothed = None;
                }
            }
            out
        }
        Fault::Truncate { keep } => pts.iter().take(keep).copied().collect(),
        Fault::EqualTimestamps { p } => {
            let mut out = pts.clone();
            for i in 1..out.len() {
                if hit(rng, p) {
                    out[i].t = out[i - 1].t;
                }
            }
            out
        }
        Fault::NonMonotoneTimestamps { p } => {
            let mut out = pts.clone();
            for i in 1..out.len() {
                if hit(rng, p) {
                    let t = out[i].t;
                    out[i].t = out[i - 1].t;
                    out[i - 1].t = t;
                }
            }
            out
        }
        Fault::FarFutureTimestamps { p, offset_s } => {
            let mut out = pts.clone();
            for pt in &mut out {
                if hit(rng, p) {
                    pt.t += offset_s;
                }
            }
            out
        }
    };
    CellularTrajectory { points }
}

fn hit(rng: &mut StdRng, p: f64) -> bool {
    rng.gen::<f64>() < p
}

/// A named, composable corruption recipe: faults applied in order, each
/// drawing from one RNG stream derived from `(seed, plan name, case key)`.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Stable display name; also salts the plan's RNG stream.
    pub name: String,
    /// Faults applied in order.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// Creates a plan from a name and fault sequence.
    pub fn new(name: &str, faults: Vec<Fault>) -> Self {
        FaultPlan {
            name: name.to_string(),
            faults,
        }
    }

    /// Applies the plan to one trajectory. `seed` and `case` (typically the
    /// trajectory's corpus index) fully determine the output.
    pub fn apply(&self, traj: &CellularTrajectory, seed: u64, case: u64) -> CellularTrajectory {
        let stream = mix64(seed, mix64(fnv1a(self.name.as_bytes()), case));
        let mut rng = StdRng::seed_from_u64(stream);
        let mut out = traj.clone();
        for fault in &self.faults {
            out = inject(&out, fault, &mut rng);
        }
        out
    }
}

/// FNV-1a over a byte string (deterministic across platforms; used to salt
/// per-plan RNG streams and to fingerprint corpora).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The standard adversarial battery: one clean control plus every failure
/// mode the injectors model, alone and composed. The degenerate-length
/// plans (`empty`, `single-point`, `two-points`) are deterministic; the
/// rest are seeded.
pub fn standard_plans() -> Vec<FaultPlan> {
    vec![
        FaultPlan::new("clean", vec![]),
        FaultPlan::new("drop-half", vec![Fault::Drop { p: 0.5 }]),
        FaultPlan::new("stutter", vec![Fault::Duplicate { p: 0.5 }]),
        FaultPlan::new("out-of-order", vec![Fault::SwapAdjacent { p: 0.5 }]),
        FaultPlan::new("ping-pong", vec![Fault::PingPong { p: 0.6 }]),
        FaultPlan::new(
            "teleport-5km",
            vec![Fault::Teleport {
                p: 0.3,
                distance: 5_000.0,
            }],
        ),
        FaultPlan::new(
            "teleport-off-map",
            vec![Fault::Teleport {
                p: 1.0,
                distance: 5_000_000.0,
            }],
        ),
        FaultPlan::new("empty", vec![Fault::Truncate { keep: 0 }]),
        FaultPlan::new("single-point", vec![Fault::Truncate { keep: 1 }]),
        FaultPlan::new("two-points", vec![Fault::Truncate { keep: 2 }]),
        FaultPlan::new("frozen-clock", vec![Fault::EqualTimestamps { p: 1.0 }]),
        FaultPlan::new(
            "time-warp",
            vec![Fault::NonMonotoneTimestamps { p: 0.5 }],
        ),
        FaultPlan::new(
            "far-future",
            vec![Fault::FarFutureTimestamps {
                p: 0.3,
                offset_s: 1.0e9,
            }],
        ),
        FaultPlan::new(
            "chaos",
            vec![
                Fault::Drop { p: 0.3 },
                Fault::Duplicate { p: 0.3 },
                Fault::SwapAdjacent { p: 0.3 },
                Fault::PingPong { p: 0.4 },
                Fault::Teleport {
                    p: 0.2,
                    distance: 8_000.0,
                },
                Fault::NonMonotoneTimestamps { p: 0.2 },
            ],
        ),
    ]
}

/// One corrupted trajectory with its provenance.
#[derive(Clone, Debug)]
pub struct CorpusCase {
    /// Name of the plan that produced this case.
    pub plan: String,
    /// Index of the base trajectory in the generation input.
    pub base: usize,
    /// The corrupted trajectory.
    pub traj: CellularTrajectory,
}

/// A reproducible adversarial corpus: every [`standard_plans`] plan applied
/// to every base trajectory, fully determined by `seed`.
#[derive(Clone, Debug)]
pub struct AdversarialCorpus {
    /// The master seed the corpus was generated from.
    pub seed: u64,
    /// All corrupted cases, plan-major then base-trajectory order.
    pub cases: Vec<CorpusCase>,
}

impl AdversarialCorpus {
    /// Generates the corpus: `standard_plans() × base`, seeded by `seed`.
    pub fn generate(base: &[CellularTrajectory], seed: u64) -> Self {
        Self::generate_with(base, &standard_plans(), seed)
    }

    /// Generates a corpus from an explicit plan battery.
    pub fn generate_with(
        base: &[CellularTrajectory],
        plans: &[FaultPlan],
        seed: u64,
    ) -> Self {
        let mut cases = Vec::with_capacity(plans.len() * base.len());
        for plan in plans {
            for (bi, traj) in base.iter().enumerate() {
                cases.push(CorpusCase {
                    plan: plan.name.clone(),
                    base: bi,
                    traj: plan.apply(traj, seed, bi as u64),
                });
            }
        }
        AdversarialCorpus { seed, cases }
    }

    /// Byte-level fingerprint of the whole corpus: FNV-1a over every case's
    /// plan name and every point's exact bit pattern (tower id, position,
    /// timestamp, smoothed position). Two corpora from the same seed and
    /// base set hash identically on every platform.
    pub fn fingerprint(&self) -> u64 {
        let mut bytes: Vec<u8> = Vec::new();
        for case in &self.cases {
            bytes.extend_from_slice(case.plan.as_bytes());
            bytes.extend_from_slice(&(case.base as u64).to_le_bytes());
            for p in &case.traj.points {
                bytes.extend_from_slice(&p.tower.0.to_le_bytes());
                bytes.extend_from_slice(&p.pos.x.to_bits().to_le_bytes());
                bytes.extend_from_slice(&p.pos.y.to_bits().to_le_bytes());
                bytes.extend_from_slice(&p.t.to_bits().to_le_bytes());
                match p.smoothed {
                    Some(s) => {
                        bytes.push(1);
                        bytes.extend_from_slice(&s.x.to_bits().to_le_bytes());
                        bytes.extend_from_slice(&s.y.to_bits().to_le_bytes());
                    }
                    None => bytes.push(0),
                }
            }
        }
        fnv1a(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tower::TowerId;
    use lhmm_geo::Point;

    fn base_traj(n: usize) -> CellularTrajectory {
        CellularTrajectory {
            points: (0..n)
                .map(|i| CellularPoint {
                    tower: TowerId((i % 5) as u32),
                    pos: Point::new(i as f64 * 300.0, (i as f64 * 37.0).sin() * 200.0),
                    t: i as f64 * 30.0,
                    smoothed: None,
                })
                .collect(),
        }
    }

    #[test]
    fn corpus_is_reproducible_and_seed_sensitive() {
        let base = vec![base_traj(12), base_traj(7)];
        let a = AdversarialCorpus::generate(&base, 42);
        let b = AdversarialCorpus::generate(&base, 42);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = AdversarialCorpus::generate(&base, 43);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn battery_covers_degenerate_lengths() {
        let base = vec![base_traj(10)];
        let corpus = AdversarialCorpus::generate(&base, 7);
        let len_of = |plan: &str| {
            corpus
                .cases
                .iter()
                .find(|c| c.plan == plan)
                .map(|c| c.traj.len())
        };
        assert_eq!(len_of("empty"), Some(0));
        assert_eq!(len_of("single-point"), Some(1));
        assert_eq!(len_of("two-points"), Some(2));
        assert_eq!(len_of("clean"), Some(10));
    }

    #[test]
    fn drop_never_grows_and_duplicate_never_shrinks() {
        let t = base_traj(20);
        let mut rng = StdRng::seed_from_u64(1);
        let dropped = inject(&t, &Fault::Drop { p: 0.5 }, &mut rng);
        assert!(dropped.len() <= t.len());
        let duped = inject(&t, &Fault::Duplicate { p: 0.5 }, &mut rng);
        assert!(duped.len() >= t.len());
        assert!(duped.len() <= 2 * t.len());
    }

    #[test]
    fn swap_preserves_multiset_of_timestamps() {
        let t = base_traj(15);
        let mut rng = StdRng::seed_from_u64(3);
        let swapped = inject(&t, &Fault::SwapAdjacent { p: 0.8 }, &mut rng);
        let mut a: Vec<u64> = t.points.iter().map(|p| p.t.to_bits()).collect();
        let mut b: Vec<u64> = swapped.points.iter().map(|p| p.t.to_bits()).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // With p = 0.8 over 14 pairs, at least one swap must have landed.
        assert!(t
            .points
            .iter()
            .zip(&swapped.points)
            .any(|(x, y)| x.t != y.t));
    }

    #[test]
    fn teleport_moves_points_by_the_requested_distance() {
        let t = base_traj(10);
        let mut rng = StdRng::seed_from_u64(5);
        let tp = inject(
            &t,
            &Fault::Teleport {
                p: 1.0,
                distance: 5_000.0,
            },
            &mut rng,
        );
        for (orig, moved) in t.points.iter().zip(&tp.points) {
            assert!((orig.pos.distance(moved.pos) - 5_000.0).abs() < 1e-6);
            assert!(moved.smoothed.is_none());
        }
    }

    #[test]
    fn timestamp_faults_corrupt_monotonicity() {
        let t = base_traj(10);
        let mut rng = StdRng::seed_from_u64(9);
        let frozen = inject(&t, &Fault::EqualTimestamps { p: 1.0 }, &mut rng);
        assert!(frozen.points.windows(2).all(|w| w[1].t == w[0].t));
        let warped = inject(&t, &Fault::NonMonotoneTimestamps { p: 1.0 }, &mut rng);
        assert!(warped.points.windows(2).any(|w| w[1].t < w[0].t));
        let future = inject(
            &t,
            &Fault::FarFutureTimestamps {
                p: 1.0,
                offset_s: 1e9,
            },
            &mut rng,
        );
        assert!(future.points.iter().all(|p| p.t >= 1e9));
    }

    #[test]
    fn ping_pong_repeats_predecessor_towers() {
        let t = base_traj(10);
        let mut rng = StdRng::seed_from_u64(11);
        let pp = inject(&t, &Fault::PingPong { p: 1.0 }, &mut rng);
        // With p = 1 every interior point copies its (original) predecessor.
        for i in 1..pp.len() {
            assert_eq!(pp.points[i].tower, t.points[i - 1].tower);
            assert_eq!(pp.points[i].pos, t.points[i - 1].pos);
            // Timestamps are untouched by ping-pong.
            assert_eq!(pp.points[i].t, t.points[i].t);
        }
    }

    #[test]
    fn plans_are_independent_streams() {
        // Two plans with identical faults but different names must draw
        // different randomness (the name salts the stream).
        let t = base_traj(30);
        let a = FaultPlan::new("a", vec![Fault::Drop { p: 0.5 }]);
        let b = FaultPlan::new("b", vec![Fault::Drop { p: 0.5 }]);
        let ta = a.apply(&t, 1, 0);
        let tb = b.apply(&t, 1, 0);
        let bits =
            |tr: &CellularTrajectory| tr.points.iter().map(|p| p.t.to_bits()).collect::<Vec<_>>();
        assert_ne!(bits(&ta), bits(&tb));
        // And the same plan replays identically.
        assert_eq!(bits(&ta), bits(&a.apply(&t, 1, 0)));
    }
}
