//! Cellular and GPS sampling of a drive.

use crate::attach::{serving_tower, AttachConfig};
use crate::randkit;
use crate::tower::TowerField;
use crate::traj::{CellularPoint, CellularTrajectory, GpsPoint};
use crate::trips::Drive;
use lhmm_geo::Point;
use lhmm_network::graph::RoadNetwork;
use rand::Rng;

/// Sampling process parameters.
#[derive(Clone, Debug)]
pub struct SamplingConfig {
    /// Mean cellular sampling interval, seconds (Table I: Hangzhou 67 s,
    /// Xiamen 42 s).
    pub cell_interval_mean: f64,
    /// Log-std of the interval jitter (yields maxima ≈ 3–4× the mean, as in
    /// Table I).
    pub cell_interval_jitter: f64,
    /// GPS sampling interval, seconds.
    pub gps_interval: f64,
    /// GPS position noise standard deviation, meters (1–50 m per paper §I).
    pub gps_noise_std: f64,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            cell_interval_mean: 60.0,
            cell_interval_jitter: 0.45,
            gps_interval: 25.0,
            gps_noise_std: 8.0,
        }
    }
}

/// Samples the cellular view of a drive. Returns the trajectory and the true
/// positions at the sampling instants (for positioning-error diagnostics).
pub fn sample_cellular(
    net: &RoadNetwork,
    field: &TowerField,
    drive: &Drive,
    attach_cfg: &AttachConfig,
    cfg: &SamplingConfig,
    trip_seed: u64,
    rng: &mut impl Rng,
) -> (CellularTrajectory, Vec<Point>) {
    let mut points = Vec::new();
    let mut true_positions = Vec::new();
    let mut t = 0.0;
    loop {
        let pos = drive.position_at(net, t);
        let tower = serving_tower(field, pos, trip_seed, attach_cfg, rng);
        points.push(CellularPoint {
            tower,
            pos: field.tower(tower).pos,
            t,
            smoothed: None,
        });
        true_positions.push(pos);
        if t >= drive.duration {
            break;
        }
        // Jittered interval, clamped so the max/mean ratio matches Table I.
        let interval = (cfg.cell_interval_mean
            * randkit::lognormal(rng, 0.0, cfg.cell_interval_jitter))
        .clamp(cfg.cell_interval_mean * 0.25, cfg.cell_interval_mean * 3.8);
        t = (t + interval).min(drive.duration);
    }
    (CellularTrajectory { points }, true_positions)
}

/// Samples the GPS view of the same drive (small isotropic noise).
pub fn sample_gps(
    net: &RoadNetwork,
    drive: &Drive,
    cfg: &SamplingConfig,
    rng: &mut impl Rng,
) -> Vec<GpsPoint> {
    let mut out = Vec::new();
    let mut t = 0.0;
    loop {
        let pos = drive.position_at(net, t);
        out.push(GpsPoint {
            pos: Point::new(
                pos.x + randkit::normal(rng, 0.0, cfg.gps_noise_std),
                pos.y + randkit::normal(rng, 0.0, cfg.gps_noise_std),
            ),
            t,
        });
        if t >= drive.duration {
            break;
        }
        t += cfg.gps_interval;
        t = t.min(drive.duration);
    }
    out
}

/// Thins a cellular trajectory to approximately `per_minute` samples per
/// minute by greedily enforcing a minimum gap. Used by the sampling-rate
/// robustness experiment (paper Fig. 7b). `true_positions` is thinned in
/// lock-step. The first and last points are always kept.
pub fn thin_to_rate(
    traj: &CellularTrajectory,
    true_positions: &[Point],
    per_minute: f64,
) -> (CellularTrajectory, Vec<Point>) {
    assert!(per_minute > 0.0, "rate must be positive");
    assert_eq!(traj.points.len(), true_positions.len(), "length mismatch");
    if traj.points.len() <= 2 {
        return (traj.clone(), true_positions.to_vec());
    }
    let min_gap = 60.0 / per_minute;
    let mut points = vec![traj.points[0]];
    let mut pos = vec![true_positions[0]];
    let mut last_t = traj.points[0].t;
    for (p, &tp) in traj.points.iter().zip(true_positions).skip(1) {
        if p.t - last_t >= min_gap {
            points.push(*p);
            pos.push(tp);
            last_t = p.t;
        }
    }
    // Always keep the final point so the trip end stays observable.
    if let (Some(&last), Some(&last_pos)) = (traj.points.last(), true_positions.last()) {
        if points.last().map(|p| p.t) != Some(last.t) {
            points.push(last);
            pos.push(last_pos);
        }
    }
    (CellularTrajectory { points }, pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{place_towers, PlacementConfig};
    use crate::trips::{generate_trip, TripConfig};
    use lhmm_network::generators::{generate_city, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (RoadNetwork, TowerField, Drive) {
        let net = generate_city(&GeneratorConfig {
            rows: 16,
            cols: 16,
            ..GeneratorConfig::small_test(2)
        });
        let field = place_towers(net.bbox(), &PlacementConfig::default());
        let mut rng = StdRng::seed_from_u64(5);
        let drive = generate_trip(
            &net,
            &TripConfig {
                min_od_distance: 1_500.0,
                ..Default::default()
            },
            &mut rng,
        )
        .expect("trip");
        (net, field, drive)
    }

    #[test]
    fn cellular_sampling_covers_the_trip() {
        let (net, field, drive) = setup();
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = SamplingConfig::default();
        let (traj, truth) = sample_cellular(
            &net,
            &field,
            &drive,
            &AttachConfig::default(),
            &cfg,
            7,
            &mut rng,
        );
        assert!(traj.len() >= 2);
        assert_eq!(traj.len(), truth.len());
        assert_eq!(traj.points[0].t, 0.0);
        assert!((traj.points.last().unwrap().t - drive.duration).abs() < 1e-9);
        // Timestamps strictly increase.
        for w in traj.points.windows(2) {
            assert!(w[1].t > w[0].t);
        }
    }

    #[test]
    fn positioning_errors_are_in_the_cellular_regime() {
        let (net, field, drive) = setup();
        let mut rng = StdRng::seed_from_u64(8);
        let (traj, truth) = sample_cellular(
            &net,
            &field,
            &drive,
            &AttachConfig::default(),
            &SamplingConfig::default(),
            9,
            &mut rng,
        );
        let errs: Vec<f64> = traj
            .points
            .iter()
            .zip(&truth)
            .map(|(p, &t)| p.pos.distance(t))
            .collect();
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        // Paper §I: cellular positioning errors are 0.1–3 km.
        assert!(mean > 100.0, "mean error {mean} too GPS-like");
        assert!(mean < 3_000.0, "mean error {mean} unrealistically large");
    }

    #[test]
    fn gps_noise_is_small() {
        let (net, _, drive) = setup();
        let mut rng = StdRng::seed_from_u64(10);
        let cfg = SamplingConfig::default();
        let gps = sample_gps(&net, &drive, &cfg, &mut rng);
        assert!(gps.len() >= 2);
        for g in &gps {
            let true_pos = drive.position_at(&net, g.t);
            assert!(g.pos.distance(true_pos) < cfg.gps_noise_std * 6.0);
        }
    }

    #[test]
    fn gps_denser_than_cellular() {
        let (net, field, drive) = setup();
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = SamplingConfig::default();
        let (traj, _) = sample_cellular(
            &net,
            &field,
            &drive,
            &AttachConfig::default(),
            &cfg,
            12,
            &mut rng,
        );
        let gps = sample_gps(&net, &drive, &cfg, &mut rng);
        assert!(gps.len() > traj.len());
    }

    #[test]
    fn thinning_respects_rate_and_endpoints() {
        let (net, field, drive) = setup();
        let mut rng = StdRng::seed_from_u64(13);
        let (traj, truth) = sample_cellular(
            &net,
            &field,
            &drive,
            &AttachConfig::default(),
            &SamplingConfig {
                cell_interval_mean: 20.0,
                ..Default::default()
            },
            14,
            &mut rng,
        );
        let (thin, thin_truth) = thin_to_rate(&traj, &truth, 0.5); // 1 per 2 min
        assert_eq!(thin.points.len(), thin_truth.len());
        assert!(thin.len() < traj.len());
        assert_eq!(thin.points[0].t, traj.points[0].t);
        assert_eq!(
            thin.points.last().unwrap().t,
            traj.points.last().unwrap().t
        );
        for w in thin.points.windows(2) {
            // All gaps except possibly the final one respect the minimum.
            if (w[1].t - traj.points.last().unwrap().t).abs() > 1e-9 {
                assert!(w[1].t - w[0].t >= 120.0 - 1e-9);
            }
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::tower::TowerId;
    use proptest::prelude::*;

    fn arb_timed_traj() -> impl Strategy<Value = (CellularTrajectory, Vec<Point>)> {
        proptest::collection::vec(1.0..120.0f64, 2..30).prop_map(|gaps| {
            let mut t = 0.0;
            let mut points = Vec::new();
            let mut truth = Vec::new();
            for (i, g) in gaps.into_iter().enumerate() {
                points.push(CellularPoint {
                    tower: TowerId(i as u32 % 5),
                    pos: Point::new(i as f64 * 100.0, 0.0),
                    t,
                    smoothed: None,
                });
                truth.push(Point::new(i as f64 * 100.0, 5.0));
                t += g;
            }
            (CellularTrajectory { points }, truth)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Thinning keeps endpoints, respects the minimum gap everywhere
        /// except possibly before the preserved final point, and never
        /// reorders.
        #[test]
        fn thinning_invariants((traj, truth) in arb_timed_traj(), rate in 0.1..4.0f64) {
            let (thin, thin_truth) = thin_to_rate(&traj, &truth, rate);
            prop_assert_eq!(thin.points.len(), thin_truth.len());
            prop_assert!(thin.len() <= traj.len());
            prop_assert!(thin.len() >= 2);
            prop_assert_eq!(thin.points[0].t, traj.points[0].t);
            prop_assert_eq!(
                thin.points.last().unwrap().t,
                traj.points.last().unwrap().t
            );
            let min_gap = 60.0 / rate;
            for w in thin.points.windows(2) {
                prop_assert!(w[1].t > w[0].t);
            }
            // Interior gaps respect the minimum.
            if thin.len() > 2 {
                for w in thin.points[..thin.len() - 1].windows(2) {
                    prop_assert!(w[1].t - w[0].t >= min_gap - 1e-9,
                        "interior gap {} < {}", w[1].t - w[0].t, min_gap);
                }
            }
        }
    }
}
