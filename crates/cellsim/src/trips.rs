//! Trip generation: origin/destination sampling, route choice, and the
//! continuous drive timeline that sampling processes observe.

use crate::randkit;
use lhmm_geo::Point;
use lhmm_network::graph::{NodeId, RoadNetwork};
use lhmm_network::path::Path;
use lhmm_network::shortest_path::node_to_node_weighted;
use rand::Rng;

/// Parameters of the trip generator.
#[derive(Clone, Debug)]
pub struct TripConfig {
    /// Minimum straight-line distance between origin and destination,
    /// meters.
    pub min_od_distance: f64,
    /// Log-std of per-segment route-choice noise: 0 = strict shortest paths,
    /// 0.2–0.4 = plausible near-shortest detours.
    pub route_noise: f64,
    /// Log-std of the per-trip speed factor (driver aggressiveness).
    pub trip_speed_sigma: f64,
    /// Log-std of per-segment speed noise (signals, congestion).
    pub segment_speed_sigma: f64,
}

impl Default for TripConfig {
    fn default() -> Self {
        TripConfig {
            min_od_distance: 2_500.0,
            route_noise: 0.25,
            trip_speed_sigma: 0.15,
            segment_speed_sigma: 0.20,
        }
    }
}

/// A trip being driven: the traveled path plus its timeline, queryable for
/// the true position at any instant.
#[derive(Clone, Debug)]
pub struct Drive {
    /// The ground-truth traveled path.
    pub path: Path,
    /// Trip duration in seconds.
    pub duration: f64,
    // Vertex-aligned cumulative state: entry i covers segment i of `path`.
    seg_start_time: Vec<f64>,
    seg_duration: Vec<f64>,
}

impl Drive {
    /// Simulates driving `path` with per-trip and per-segment speed noise.
    pub fn new(net: &RoadNetwork, path: Path, cfg: &TripConfig, rng: &mut impl Rng) -> Self {
        assert!(!path.is_empty(), "cannot drive an empty path");
        let trip_factor = randkit::lognormal(rng, 0.0, cfg.trip_speed_sigma);
        let mut seg_start_time = Vec::with_capacity(path.len());
        let mut seg_duration = Vec::with_capacity(path.len());
        let mut t = 0.0;
        for &sid in &path.segments {
            let seg = net.segment(sid);
            let noise = randkit::lognormal(rng, 0.0, cfg.segment_speed_sigma);
            let speed = (seg.class.free_flow_speed() * trip_factor * noise).max(1.0);
            seg_start_time.push(t);
            let d = seg.length / speed;
            seg_duration.push(d);
            t += d;
        }
        Drive {
            path,
            duration: t,
            seg_start_time,
            seg_duration,
        }
    }

    /// True position at time `t` seconds after departure; clamps to the
    /// endpoints outside `[0, duration]`.
    pub fn position_at(&self, net: &RoadNetwork, t: f64) -> Point {
        if t <= 0.0 {
            return net.segment_start(self.path.segments[0]);
        }
        if t >= self.duration {
            if let Some(&last) = self.path.segments.last() {
                return net.segment_end(last);
            }
        }
        // Binary search the segment whose time window contains t.
        let i = match self
            .seg_start_time
            .binary_search_by(|s| s.total_cmp(&t))
        {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        };
        let frac = ((t - self.seg_start_time[i]) / self.seg_duration[i]).clamp(0.0, 1.0);
        let sid = self.path.segments[i];
        net.segment_start(sid).lerp(net.segment_end(sid), frac)
    }
}

/// Samples one trip: a random OD pair at least `min_od_distance` apart,
/// routed with per-trip perturbed travel-time weights. Returns `None` when
/// no suitable trip was found within the attempt budget (e.g. disconnected
/// OD pairs).
pub fn generate_trip(
    net: &RoadNetwork,
    cfg: &TripConfig,
    rng: &mut impl Rng,
) -> Option<Drive> {
    let n = net.num_nodes() as u32;
    for _ in 0..50 {
        let o = NodeId(rng.gen_range(0..n));
        let d = NodeId(rng.gen_range(0..n));
        if net.node_pos(o).distance(net.node_pos(d)) < cfg.min_od_distance {
            continue;
        }
        // Perturbed travel-time route choice: a fixed per-trip seed keeps the
        // weight function consistent across edge relaxations.
        let trip_seed: u64 = rng.gen();
        let route = node_to_node_weighted(net, o, d, |sid| {
            let seg = net.segment(sid);
            let base = seg.length / seg.class.free_flow_speed();
            let z = randkit::keyed_randn(randkit::mix64(trip_seed, sid.0 as u64));
            base * (cfg.route_noise * z).exp()
        });
        if let Some(r) = route {
            if r.segments.is_empty() {
                continue;
            }
            return Some(Drive::new(net, Path::new(r.segments), cfg, rng));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhmm_network::generators::{generate_city, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn city() -> RoadNetwork {
        generate_city(&GeneratorConfig::small_test(1))
    }

    #[test]
    fn generated_trip_is_contiguous_and_long_enough() {
        let net = city();
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = TripConfig {
            min_od_distance: 600.0,
            ..Default::default()
        };
        let drive = generate_trip(&net, &cfg, &mut rng).expect("trip found");
        assert!(drive.path.is_contiguous(&net));
        assert!(drive.path.length(&net) >= 600.0);
        assert!(drive.duration > 0.0);
    }

    #[test]
    fn position_at_is_monotone_along_path() {
        let net = city();
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = TripConfig {
            min_od_distance: 600.0,
            ..Default::default()
        };
        let drive = generate_trip(&net, &cfg, &mut rng).unwrap();
        // Start and end match the path geometry.
        assert_eq!(
            drive.position_at(&net, -5.0),
            net.segment_start(drive.path.segments[0])
        );
        assert_eq!(
            drive.position_at(&net, drive.duration + 5.0),
            net.segment_end(*drive.path.segments.last().unwrap())
        );
        // Positions over time always lie near the path polyline.
        let poly = drive.path.polyline(&net);
        for i in 0..=20 {
            let t = drive.duration * i as f64 / 20.0;
            let p = drive.position_at(&net, t);
            let d = lhmm_geo::polyline::distance_to_polyline(p, &poly);
            assert!(d < 1e-6, "t={t} off-path by {d}");
        }
    }

    #[test]
    fn route_noise_changes_routes_between_trips() {
        let net = city();
        let cfg = TripConfig {
            min_od_distance: 900.0,
            route_noise: 0.5,
            ..Default::default()
        };
        let mut distinct = std::collections::HashSet::new();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..12 {
            if let Some(d) = generate_trip(&net, &cfg, &mut rng) {
                distinct.insert(d.path.segments.clone());
            }
        }
        assert!(distinct.len() > 1, "route noise produced identical trips");
    }

    #[test]
    fn deterministic_under_seed() {
        let net = city();
        let cfg = TripConfig::default();
        let a = generate_trip(&net, &cfg, &mut StdRng::seed_from_u64(9));
        let b = generate_trip(&net, &cfg, &mut StdRng::seed_from_u64(9));
        match (a, b) {
            (Some(x), Some(y)) => {
                assert_eq!(x.path.segments, y.path.segments);
                assert_eq!(x.duration, y.duration);
            }
            (None, None) => {}
            _ => panic!("determinism violated"),
        }
    }
}
