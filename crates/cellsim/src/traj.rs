//! Trajectory data types.

use crate::tower::TowerId;
use lhmm_geo::Point;
use lhmm_network::Path;

/// One cellular observation: the serving tower at a sampling instant.
///
/// `pos` is the *tower's* position — the only location a cellular record
/// carries — which deviates from the user's true location by 0.1–3 km
/// (paper §I). `smoothed` is filled by the α-trimmed mean filter
/// ([`crate::filters`]) and used by distance-based matchers.
#[derive(Clone, Copy, Debug)]
pub struct CellularPoint {
    /// Serving tower.
    pub tower: TowerId,
    /// Tower position (the recorded location).
    pub pos: Point,
    /// Seconds since trip start.
    pub t: f64,
    /// Smoothed position, if a smoothing filter ran.
    pub smoothed: Option<Point>,
}

impl CellularPoint {
    /// The position matchers should use: smoothed when available.
    #[inline]
    pub fn effective_pos(&self) -> Point {
        self.smoothed.unwrap_or(self.pos)
    }
}

/// A cellular trajectory: the tower observation sequence of one trip.
#[derive(Clone, Debug, Default)]
pub struct CellularTrajectory {
    /// Observations in time order.
    pub points: Vec<CellularPoint>,
}

impl CellularTrajectory {
    /// Number of observations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no observation exists.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Recorded (tower) positions.
    pub fn positions(&self) -> Vec<Point> {
        self.points.iter().map(|p| p.pos).collect()
    }

    /// Positions matchers should use (smoothed when available).
    pub fn effective_positions(&self) -> Vec<Point> {
        self.points.iter().map(|p| p.effective_pos()).collect()
    }

    /// Tower id sequence.
    pub fn towers(&self) -> Vec<TowerId> {
        self.points.iter().map(|p| p.tower).collect()
    }

    /// Total time span in seconds (0 for < 2 points).
    pub fn duration(&self) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some(a), Some(b)) => b.t - a.t,
            _ => 0.0,
        }
    }

    /// Mean interval between consecutive samples, seconds.
    pub fn mean_interval(&self) -> f64 {
        if self.points.len() < 2 {
            return 0.0;
        }
        self.duration() / (self.points.len() - 1) as f64
    }
}

/// One GPS observation of the same trip (used to derive ground truth in the
/// paper's pipeline; here the simulator knows the exact path, and GPS
/// samples serve the Table-I statistics and the classic-HMM reference).
#[derive(Clone, Copy, Debug)]
pub struct GpsPoint {
    /// Observed position (true position + small noise).
    pub pos: Point,
    /// Seconds since trip start.
    pub t: f64,
}

/// A complete simulated trip: the cellular view, the GPS view, and the
/// ground-truth traveled path.
#[derive(Clone, Debug)]
pub struct TrajectoryRecord {
    /// Cellular observation sequence (post-filter when filters ran).
    pub cellular: CellularTrajectory,
    /// GPS observation sequence.
    pub gps: Vec<GpsPoint>,
    /// Ground-truth traveled path.
    pub truth: Path,
    /// True positions at the cellular sampling instants (diagnostics:
    /// positioning-error distribution).
    pub true_positions: Vec<Point>,
}

impl TrajectoryRecord {
    /// Positioning error (tower position vs true position) per cellular
    /// sample, in meters. Empty when diagnostics were dropped by filtering.
    pub fn positioning_errors(&self) -> Vec<f64> {
        self.cellular
            .points
            .iter()
            .zip(&self.true_positions)
            .map(|(c, &truth)| c.pos.distance(truth))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj() -> CellularTrajectory {
        CellularTrajectory {
            points: vec![
                CellularPoint {
                    tower: TowerId(0),
                    pos: Point::new(0.0, 0.0),
                    t: 0.0,
                    smoothed: None,
                },
                CellularPoint {
                    tower: TowerId(1),
                    pos: Point::new(500.0, 0.0),
                    t: 60.0,
                    smoothed: Some(Point::new(450.0, 10.0)),
                },
                CellularPoint {
                    tower: TowerId(0),
                    pos: Point::new(0.0, 0.0),
                    t: 150.0,
                    smoothed: None,
                },
            ],
        }
    }

    #[test]
    fn durations_and_intervals() {
        let t = traj();
        assert_eq!(t.len(), 3);
        assert_eq!(t.duration(), 150.0);
        assert_eq!(t.mean_interval(), 75.0);
        assert_eq!(CellularTrajectory::default().duration(), 0.0);
    }

    #[test]
    fn effective_position_prefers_smoothed() {
        let t = traj();
        assert_eq!(t.points[0].effective_pos(), Point::new(0.0, 0.0));
        assert_eq!(t.points[1].effective_pos(), Point::new(450.0, 10.0));
        let eff = t.effective_positions();
        assert_eq!(eff[1], Point::new(450.0, 10.0));
        let raw = t.positions();
        assert_eq!(raw[1], Point::new(500.0, 0.0));
    }

    #[test]
    fn positioning_errors_pairwise() {
        let rec = TrajectoryRecord {
            cellular: traj(),
            gps: vec![],
            truth: Path::empty(),
            true_positions: vec![
                Point::new(100.0, 0.0),
                Point::new(500.0, 0.0),
                Point::new(0.0, 300.0),
            ],
        };
        let errs = rec.positioning_errors();
        assert_eq!(errs, vec![100.0, 0.0, 300.0]);
    }
}
