//! Dataset assembly: network + towers + train/val/test trajectories.

use crate::attach::AttachConfig;
use crate::filters::{apply_filters, FilterConfig};
use crate::placement::{place_towers, PlacementConfig};
use crate::sampling::{sample_cellular, sample_gps, SamplingConfig};
use crate::tower::TowerField;
use crate::traj::TrajectoryRecord;
use crate::trips::{generate_trip, TripConfig};
use lhmm_network::generators::{generate_city, GeneratorConfig};
use lhmm_network::graph::RoadNetwork;
use lhmm_network::spatial::SpatialIndex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Full configuration of one synthetic dataset.
#[derive(Clone, Debug)]
pub struct DatasetConfig {
    /// Human-readable dataset name ("hangzhou-like" etc.).
    pub name: String,
    /// Road-network generator parameters.
    pub network: GeneratorConfig,
    /// Tower placement parameters.
    pub placement: PlacementConfig,
    /// Radio model parameters.
    pub attach: AttachConfig,
    /// Sampling process parameters.
    pub sampling: SamplingConfig,
    /// Trip generator parameters (`min_od_distance` of 0 is auto-derived
    /// from the map extent at generation time).
    pub trips: TripConfig,
    /// Pre-filters; `None` disables filtering.
    pub filter: Option<FilterConfig>,
    /// Number of training trajectories.
    pub num_train: usize,
    /// Number of validation trajectories.
    pub num_val: usize,
    /// Number of test trajectories.
    pub num_test: usize,
    /// Master seed.
    pub seed: u64,
}

impl DatasetConfig {
    /// A Hangzhou-textured dataset. `scale` in `(0, 1]` scales the network
    /// size and trajectory counts together; 1.0 approaches Table I's scale
    /// (~93k segments, ~106k trajectories), 0.02 is a laptop-friendly slice.
    pub fn hangzhou_like(scale: f64, seed: u64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0);
        DatasetConfig {
            name: format!("hangzhou-like(x{scale})"),
            network: GeneratorConfig::hangzhou_like(scale, seed),
            // Tower spacing is tightened relative to the real deployments
            // for the same reason the sampling interval is (trips in the
            // scaled city are ~6x shorter): it keeps the positioning-error /
            // trip-length ratio in the paper's regime.
            placement: PlacementConfig {
                core_spacing: 430.0,
                fringe_spacing: 1100.0,
                seed: seed ^ 0xA5A5,
                ..Default::default()
            },
            attach: AttachConfig::default(),
            // The paper's Hangzhou data has a 67 s mean interval over ~25 km
            // trips (34 points/trajectory). Our scaled cities host shorter
            // trips, so the interval is scaled down to preserve the paper's
            // points-per-trajectory regime — the quantity that governs HMM
            // path-finding difficulty (see DESIGN.md §2).
            sampling: SamplingConfig {
                cell_interval_mean: 26.0,
                cell_interval_jitter: 0.45,
                gps_interval: 11.0,
                gps_noise_std: 8.0,
            },
            trips: TripConfig {
                min_od_distance: 0.0, // derived from map extent
                ..Default::default()
            },
            filter: Some(FilterConfig::default()),
            num_train: ((90_000.0 * scale) as usize).max(60),
            num_val: ((8_000.0 * scale) as usize).max(10),
            num_test: ((8_000.0 * scale) as usize).max(20),
            seed,
        }
    }

    /// A Xiamen-textured dataset (smaller city, faster sampling — Table I:
    /// 42 s mean interval, 40 points/trajectory).
    pub fn xiamen_like(scale: f64, seed: u64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0);
        DatasetConfig {
            name: format!("xiamen-like(x{scale})"),
            network: GeneratorConfig::xiamen_like(scale, seed),
            placement: PlacementConfig {
                core_spacing: 400.0,
                fringe_spacing: 950.0,
                seed: seed ^ 0x5A5A,
                ..Default::default()
            },
            attach: AttachConfig::default(),
            // Scaled from Xiamen's 42 s / 40 points-per-trajectory regime
            // (see the hangzhou_like note).
            sampling: SamplingConfig {
                cell_interval_mean: 17.0,
                cell_interval_jitter: 0.40,
                gps_interval: 7.5,
                gps_noise_std: 8.0,
            },
            trips: TripConfig {
                min_od_distance: 0.0,
                ..Default::default()
            },
            filter: Some(FilterConfig::default()),
            num_train: ((28_000.0 * scale) as usize).max(60),
            num_val: ((2_500.0 * scale) as usize).max(10),
            num_test: ((2_500.0 * scale) as usize).max(20),
            seed,
        }
    }

    /// A miniature dataset for unit/integration tests: a 16×16-block city,
    /// short trips, ~100 trajectories. Generates in well under a second.
    pub fn tiny_test(seed: u64) -> Self {
        DatasetConfig {
            name: format!("tiny-test({seed})"),
            network: GeneratorConfig {
                rows: 16,
                cols: 16,
                spacing: 250.0,
                jitter: 0.15,
                removal_prob: 0.06,
                fringe_removal_prob: 0.20,
                arterial_every: 4,
                diagonal_prob: 0.05,
                seed,
            },
            placement: PlacementConfig {
                core_spacing: 380.0,
                fringe_spacing: 750.0,
                seed: seed ^ 0x33,
                ..Default::default()
            },
            attach: AttachConfig {
                max_range: 2_000.0,
                ..Default::default()
            },
            sampling: SamplingConfig {
                cell_interval_mean: 20.0,
                cell_interval_jitter: 0.35,
                gps_interval: 8.0,
                gps_noise_std: 8.0,
            },
            trips: TripConfig {
                min_od_distance: 0.0,
                ..Default::default()
            },
            filter: Some(FilterConfig::default()),
            num_train: 60,
            num_val: 8,
            num_test: 16,
            seed,
        }
    }

    /// City variant A of the transfer-study triple: [`tiny_test`]'s
    /// geometry with **denser towers** — core spacing tightened and the
    /// core→fringe density gradient flattened, so positioning errors
    /// shrink and the observation distribution a model trains on shifts.
    ///
    /// The three `tiny_city_*` variants share trajectory counts and
    /// sampling cadence but differ in exactly one axis each (tower
    /// density, density gradient, road topology), so cross-city transfer
    /// gaps measured by `examples/transfer_eval.rs` are attributable.
    ///
    /// [`tiny_test`]: DatasetConfig::tiny_test
    pub fn tiny_city_dense(seed: u64) -> Self {
        let mut cfg = Self::tiny_test(seed);
        cfg.name = format!("tiny-city-dense({seed})");
        cfg.placement.core_spacing = 300.0;
        cfg.placement.fringe_spacing = 450.0;
        cfg
    }

    /// City variant B: [`tiny_test`]'s geometry with a **steep density
    /// gradient** — towers as dense as variant A downtown but sparse at
    /// the fringe, the deployment shape of a city with a concentrated
    /// business core. Fringe trips see much larger positioning errors
    /// than core trips.
    ///
    /// [`tiny_test`]: DatasetConfig::tiny_test
    pub fn tiny_city_gradient(seed: u64) -> Self {
        let mut cfg = Self::tiny_test(seed);
        cfg.name = format!("tiny-city-gradient({seed})");
        cfg.placement.core_spacing = 300.0;
        cfg.placement.fringe_spacing = 1_200.0;
        cfg
    }

    /// City variant C: [`tiny_test`]'s tower field over a **different
    /// road topology** — the network generator is reseeded and biased
    /// toward more diagonals and sparser arterials, so learned transition
    /// structure (shortcut priors, route shapes) transfers least here.
    ///
    /// [`tiny_test`]: DatasetConfig::tiny_test
    pub fn tiny_city_topology(seed: u64) -> Self {
        let mut cfg = Self::tiny_test(seed);
        cfg.name = format!("tiny-city-topology({seed})");
        cfg.network.seed = seed ^ 0xC17F;
        cfg.network.diagonal_prob = 0.15;
        cfg.network.arterial_every = 6;
        cfg.network.removal_prob = 0.10;
        cfg
    }
}

/// A generated dataset, ready for training and evaluation.
pub struct Dataset {
    /// Dataset name (from the config).
    pub name: String,
    /// The road network.
    pub network: RoadNetwork,
    /// The cell towers.
    pub towers: TowerField,
    /// Spatial index over road segments (shared by all matchers).
    pub index: SpatialIndex,
    /// Training trajectories (with ground truth, for learner fitting).
    pub train: Vec<TrajectoryRecord>,
    /// Validation trajectories (hyperparameter tuning).
    pub val: Vec<TrajectoryRecord>,
    /// Held-out test trajectories.
    pub test: Vec<TrajectoryRecord>,
    /// The configuration the dataset was generated from.
    pub config: DatasetConfig,
}

impl Dataset {
    /// Generates the dataset deterministically from its config.
    pub fn generate(config: &DatasetConfig) -> Self {
        let network = generate_city(&config.network);
        let towers = place_towers(network.bbox(), &config.placement);
        let index = SpatialIndex::build(&network, 250.0);

        let mut trips_cfg = config.trips.clone();
        if trips_cfg.min_od_distance <= 0.0 {
            // Trips should cross a substantial part of the city so each
            // trajectory carries enough observations to be matchable.
            let extent = network.bbox().width().max(network.bbox().height());
            trips_cfg.min_od_distance = (extent * 0.70).max(1_000.0);
        }

        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0x9E3779B9));
        let total = config.num_train + config.num_val + config.num_test;
        let mut records = Vec::with_capacity(total);
        let mut attempts = 0usize;
        let max_attempts = total * 20;
        while records.len() < total && attempts < max_attempts {
            attempts += 1;
            let Some(drive) = generate_trip(&network, &trips_cfg, &mut rng) else {
                continue;
            };
            let trip_seed: u64 = rng.gen();
            let (raw_traj, raw_truth) = sample_cellular(
                &network,
                &towers,
                &drive,
                &config.attach,
                &config.sampling,
                trip_seed,
                &mut rng,
            );
            let gps = sample_gps(&network, &drive, &config.sampling, &mut rng);
            let (cellular, true_positions) = match &config.filter {
                Some(f) => apply_filters(&raw_traj, &raw_truth, f),
                None => (raw_traj, raw_truth),
            };
            if cellular.len() < 4 {
                continue; // too short to match meaningfully
            }
            records.push(TrajectoryRecord {
                cellular,
                gps,
                truth: drive.path,
                true_positions,
            });
        }
        assert!(
            records.len() == total,
            "dataset generation exhausted attempts: got {} of {total} \
             (network too small or trips too constrained?)",
            records.len()
        );

        let val_split = config.num_train + config.num_val;
        let test = records.split_off(val_split);
        let val = records.split_off(config.num_train);
        Dataset {
            name: config.name.clone(),
            network,
            towers,
            index,
            train: records,
            val,
            test,
            config: config.clone(),
        }
    }

    /// All trajectory records across splits.
    pub fn all_records(&self) -> impl Iterator<Item = &TrajectoryRecord> {
        self.train.iter().chain(&self.val).chain(&self.test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_dataset_generates_with_exact_counts() {
        let cfg = DatasetConfig::tiny_test(1);
        let ds = Dataset::generate(&cfg);
        assert_eq!(ds.train.len(), cfg.num_train);
        assert_eq!(ds.val.len(), cfg.num_val);
        assert_eq!(ds.test.len(), cfg.num_test);
        assert!(ds.towers.len() > 5);
    }

    #[test]
    fn records_have_consistent_internals() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(2));
        for rec in ds.all_records() {
            assert!(rec.cellular.len() >= 4);
            assert_eq!(rec.cellular.len(), rec.true_positions.len());
            assert!(!rec.truth.is_empty());
            assert!(rec.truth.is_contiguous(&ds.network));
            assert!(rec.gps.len() >= rec.cellular.len());
            // Filters ran: smoothed positions exist.
            assert!(rec.cellular.points.iter().all(|p| p.smoothed.is_some()));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(&DatasetConfig::tiny_test(3));
        let b = Dataset::generate(&DatasetConfig::tiny_test(3));
        assert_eq!(a.train.len(), b.train.len());
        for (ra, rb) in a.train.iter().zip(&b.train) {
            assert_eq!(ra.truth.segments, rb.truth.segments);
            assert_eq!(ra.cellular.len(), rb.cellular.len());
            for (pa, pb) in ra.cellular.points.iter().zip(&rb.cellular.points) {
                assert_eq!(pa.tower, pb.tower);
                assert_eq!(pa.t, pb.t);
            }
        }
    }

    #[test]
    fn different_seeds_give_different_data() {
        let a = Dataset::generate(&DatasetConfig::tiny_test(4));
        let b = Dataset::generate(&DatasetConfig::tiny_test(5));
        let same = a
            .train
            .iter()
            .zip(&b.train)
            .all(|(x, y)| x.truth.segments == y.truth.segments);
        assert!(!same);
    }

    #[test]
    fn city_variants_differ_on_their_declared_axis() {
        let base = Dataset::generate(&DatasetConfig::tiny_test(7));
        let dense = Dataset::generate(&DatasetConfig::tiny_city_dense(7));
        let gradient = Dataset::generate(&DatasetConfig::tiny_city_gradient(7));
        let topo = Dataset::generate(&DatasetConfig::tiny_city_topology(7));

        // Denser deployment really places more towers; steepening the
        // gradient (same 300 m core, 4x sparser fringe) sheds fringe
        // towers relative to the flat-dense deployment.
        assert!(dense.towers.len() > base.towers.len());
        assert!(gradient.towers.len() < dense.towers.len());

        // The topology variant keeps the base deployment parameters but
        // grows a different road graph.
        assert_eq!(
            topo.config.placement.core_spacing,
            base.config.placement.core_spacing
        );
        assert_ne!(topo.network.num_segments(), base.network.num_segments());

        // All three still satisfy the generation contract.
        for ds in [&dense, &gradient, &topo] {
            assert_eq!(ds.train.len(), ds.config.num_train);
            assert_eq!(ds.test.len(), ds.config.num_test);
        }
    }

    #[test]
    fn positioning_error_distribution_matches_paper_regime() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(6));
        let mut errs: Vec<f64> = ds
            .all_records()
            .flat_map(|r| r.positioning_errors())
            .collect();
        errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = errs[errs.len() / 2];
        // Table I reports median sampling distances of ~455-493 m and
        // positioning errors of 0.1-3 km; the tiny config uses tighter tower
        // spacing but must stay in the cellular (not GPS) regime.
        assert!(median > 80.0, "median error {median} too small");
        assert!(median < 1_500.0, "median error {median} too large");
    }
}
