//! SnapNet-style trajectory pre-filters.
//!
//! The paper (§V-A1) filters every cellular trajectory before matching with
//! the SnapNet \[12\] pipeline: a speed filter, an α-trimmed mean filter, and
//! a direction filter. All matchers — LHMM and baselines — consume the
//! filtered trajectory.

use crate::traj::{CellularPoint, CellularTrajectory};
use lhmm_geo::Point;

/// Filter parameters.
#[derive(Clone, Debug)]
pub struct FilterConfig {
    /// Maximum plausible travel speed in m/s; hops implying more are noise.
    pub max_speed: f64,
    /// Fraction of extreme coordinates trimmed on each side by the
    /// α-trimmed mean filter.
    pub alpha: f64,
    /// Half-window (in points) of the α-trimmed mean filter.
    pub window: usize,
    /// Direction-reversal threshold in radians: an interior point whose
    /// in/out headings disagree by more than this *and* whose hops are both
    /// long is treated as a ping-pong handover artifact.
    pub reversal_angle: f64,
    /// Minimum hop length (meters) for the direction filter to act.
    pub min_hop: f64,
}

impl Default for FilterConfig {
    fn default() -> Self {
        FilterConfig {
            max_speed: 50.0,
            alpha: 0.2,
            window: 2,
            reversal_angle: 2.6, // ~150 degrees
            min_hop: 800.0,
        }
    }
}

/// Applies speed → direction → α-trimmed-mean filters in order, keeping the
/// paired true positions aligned. Returns the filtered pair.
pub fn apply_filters(
    traj: &CellularTrajectory,
    true_positions: &[Point],
    cfg: &FilterConfig,
) -> (CellularTrajectory, Vec<Point>) {
    assert_eq!(traj.points.len(), true_positions.len(), "length mismatch");
    let keep1 = speed_filter(&traj.points, cfg);
    let (pts1, truth1) = select(&traj.points, true_positions, &keep1);
    let keep2 = direction_filter(&pts1, cfg);
    let (mut pts2, truth2) = select(&pts1, &truth1, &keep2);
    alpha_trimmed_mean(&mut pts2, cfg);
    (CellularTrajectory { points: pts2 }, truth2)
}

fn select(
    pts: &[CellularPoint],
    truth: &[Point],
    keep: &[bool],
) -> (Vec<CellularPoint>, Vec<Point>) {
    let mut out_p = Vec::with_capacity(pts.len());
    let mut out_t = Vec::with_capacity(pts.len());
    for ((p, &t), &k) in pts.iter().zip(truth).zip(keep) {
        if k {
            out_p.push(*p);
            out_t.push(t);
        }
    }
    (out_p, out_t)
}

/// Marks points whose implied speed from the previously *kept* point is
/// plausible. The first point is always kept.
pub fn speed_filter(points: &[CellularPoint], cfg: &FilterConfig) -> Vec<bool> {
    let mut keep = vec![true; points.len()];
    let mut last_kept: Option<usize> = None;
    for i in 0..points.len() {
        if let Some(j) = last_kept {
            let dt = points[i].t - points[j].t;
            let dd = points[i].pos.distance(points[j].pos);
            // With tower-resolution positions a hop can look fast purely from
            // the tower offset, so allow a fixed slack on top of max speed.
            if dt > 0.0 && dd > cfg.max_speed * dt + 1_000.0 {
                keep[i] = false;
                continue;
            }
        }
        last_kept = Some(i);
    }
    keep
}

/// Marks interior points that form a long out-and-back spike (ping-pong
/// handover) for removal.
pub fn direction_filter(points: &[CellularPoint], cfg: &FilterConfig) -> Vec<bool> {
    let n = points.len();
    let mut keep = vec![true; n];
    if n < 3 {
        return keep;
    }
    for i in 1..n - 1 {
        let a = points[i - 1].pos;
        let b = points[i].pos;
        let c = points[i + 1].pos;
        let hop_in = a.distance(b);
        let hop_out = b.distance(c);
        if hop_in < cfg.min_hop || hop_out < cfg.min_hop {
            continue;
        }
        let h_in = a.bearing_to(b);
        let h_out = b.bearing_to(c);
        if lhmm_geo::angle::abs_diff(h_in, h_out) > cfg.reversal_angle {
            keep[i] = false;
        }
    }
    keep
}

/// Fills each point's `smoothed` position with the α-trimmed mean of the
/// positions in a `±window` neighborhood: the most extreme `alpha` fraction
/// of x and y coordinates are discarded before averaging.
pub fn alpha_trimmed_mean(points: &mut [CellularPoint], cfg: &FilterConfig) {
    let n = points.len();
    if n == 0 {
        return;
    }
    let raw: Vec<Point> = points.iter().map(|p| p.pos).collect();
    for (i, point) in points.iter_mut().enumerate() {
        let lo = i.saturating_sub(cfg.window);
        let hi = (i + cfg.window + 1).min(n);
        point.smoothed = Some(trimmed_mean(&raw[lo..hi], cfg.alpha));
    }
}

fn trimmed_mean(pts: &[Point], alpha: f64) -> Point {
    debug_assert!(!pts.is_empty());
    let trim = ((pts.len() as f64) * alpha).floor() as usize;
    let mean_axis = |vals: &mut Vec<f64>| -> f64 {
        vals.sort_by(|a, b| a.total_cmp(b));
        let slice = &vals[trim.min(vals.len() / 2)..vals.len() - trim.min(vals.len() / 2)];
        slice.iter().sum::<f64>() / slice.len() as f64
    };
    let mut xs: Vec<f64> = pts.iter().map(|p| p.x).collect();
    let mut ys: Vec<f64> = pts.iter().map(|p| p.y).collect();
    Point::new(mean_axis(&mut xs), mean_axis(&mut ys))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tower::TowerId;

    fn pt(x: f64, y: f64, t: f64) -> CellularPoint {
        CellularPoint {
            tower: TowerId(0),
            pos: Point::new(x, y),
            t,
            smoothed: None,
        }
    }

    #[test]
    fn speed_filter_drops_teleports() {
        let cfg = FilterConfig::default();
        let points = vec![
            pt(0.0, 0.0, 0.0),
            pt(500.0, 0.0, 30.0),
            pt(50_000.0, 0.0, 60.0), // 1650 m/s — impossible
            pt(1_000.0, 0.0, 90.0),
        ];
        let keep = speed_filter(&points, &cfg);
        assert_eq!(keep, vec![true, true, false, true]);
    }

    #[test]
    fn speed_filter_tolerates_tower_offsets() {
        let cfg = FilterConfig::default();
        // 900 m in 30 s = 30 m/s plus tower offset slack — plausible.
        let points = vec![pt(0.0, 0.0, 0.0), pt(900.0, 0.0, 30.0)];
        assert_eq!(speed_filter(&points, &cfg), vec![true, true]);
    }

    #[test]
    fn direction_filter_drops_ping_pong() {
        let cfg = FilterConfig::default();
        // Out-and-back spike of 2 km.
        let points = vec![
            pt(0.0, 0.0, 0.0),
            pt(2_000.0, 0.0, 60.0),
            pt(100.0, 0.0, 120.0),
            pt(500.0, 0.0, 180.0),
        ];
        let keep = direction_filter(&points, &cfg);
        assert_eq!(keep, vec![true, false, true, true]);
    }

    #[test]
    fn direction_filter_keeps_normal_turns() {
        let cfg = FilterConfig::default();
        // 90-degree turn with long hops: normal driving, kept.
        let points = vec![
            pt(0.0, 0.0, 0.0),
            pt(2_000.0, 0.0, 60.0),
            pt(2_000.0, 2_000.0, 120.0),
        ];
        assert_eq!(direction_filter(&points, &cfg), vec![true, true, true]);
    }

    #[test]
    fn trimmed_mean_rejects_outliers() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(20.0, 0.0),
            Point::new(10_000.0, 0.0), // outlier
            Point::new(30.0, 0.0),
        ];
        let m = trimmed_mean(&pts, 0.2);
        // One value trimmed per side: mean of {10, 20, 30} = 20.
        assert!((m.x - 20.0).abs() < 1e-9, "{m:?}");
    }

    #[test]
    fn alpha_trimmed_fills_smoothed() {
        let cfg = FilterConfig::default();
        let mut points = vec![pt(0.0, 0.0, 0.0), pt(100.0, 0.0, 60.0), pt(200.0, 0.0, 120.0)];
        alpha_trimmed_mean(&mut points, &cfg);
        assert!(points.iter().all(|p| p.smoothed.is_some()));
        // Middle point's window is all three: smoothed = centroid.
        assert!((points[1].smoothed.unwrap().x - 100.0).abs() < 1e-9);
    }

    #[test]
    fn apply_filters_keeps_pairs_aligned() {
        let cfg = FilterConfig::default();
        let traj = CellularTrajectory {
            points: vec![
                pt(0.0, 0.0, 0.0),
                pt(50_000.0, 0.0, 10.0), // dropped by speed filter
                pt(600.0, 0.0, 60.0),
                pt(1_200.0, 0.0, 120.0),
            ],
        };
        let truth = vec![
            Point::new(0.0, 0.0),
            Point::new(300.0, 0.0),
            Point::new(600.0, 0.0),
            Point::new(1_200.0, 0.0),
        ];
        let (filtered, kept_truth) = apply_filters(&traj, &truth, &cfg);
        assert_eq!(filtered.len(), 3);
        assert_eq!(kept_truth.len(), 3);
        assert_eq!(kept_truth[1], Point::new(600.0, 0.0));
        assert!(filtered.points.iter().all(|p| p.smoothed.is_some()));
    }

    #[test]
    fn empty_and_tiny_inputs_are_safe() {
        let cfg = FilterConfig::default();
        let empty = CellularTrajectory::default();
        let (f, t) = apply_filters(&empty, &[], &cfg);
        assert!(f.is_empty() && t.is_empty());
        let single = CellularTrajectory {
            points: vec![pt(0.0, 0.0, 0.0)],
        };
        let (f, _) = apply_filters(&single, &[Point::ORIGIN], &cfg);
        assert_eq!(f.len(), 1);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::tower::TowerId;
    use proptest::prelude::*;

    fn arb_traj(max_len: usize) -> impl Strategy<Value = (CellularTrajectory, Vec<Point>)> {
        proptest::collection::vec((0.0..5_000.0f64, 0.0..5_000.0f64, 1.0..90.0f64), 1..max_len)
            .prop_map(|raw| {
                let mut t = 0.0;
                let mut points = Vec::new();
                let mut truth = Vec::new();
                for (i, (x, y, dt)) in raw.into_iter().enumerate() {
                    t += dt;
                    points.push(CellularPoint {
                        tower: TowerId((i % 7) as u32),
                        pos: Point::new(x, y),
                        t,
                        smoothed: None,
                    });
                    truth.push(Point::new(x * 0.9, y * 0.9));
                }
                (CellularTrajectory { points }, truth)
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Filtering never adds points, keeps pairs aligned, preserves time
        /// order, and fills smoothed positions.
        #[test]
        fn filters_preserve_invariants((traj, truth) in arb_traj(20)) {
            let cfg = FilterConfig::default();
            let (out, out_truth) = apply_filters(&traj, &truth, &cfg);
            prop_assert!(out.len() <= traj.len());
            prop_assert_eq!(out.len(), out_truth.len());
            for w in out.points.windows(2) {
                prop_assert!(w[1].t > w[0].t);
            }
            prop_assert!(out.points.iter().all(|p| p.smoothed.is_some()));
            // The first point always survives the speed filter.
            if !traj.points.is_empty() {
                prop_assert!(!out.points.is_empty());
                prop_assert_eq!(out.points[0].t, traj.points[0].t);
            }
        }

        /// Filter masks are always exactly one flag per input point.
        #[test]
        fn filter_masks_match_input_length((traj, _) in arb_traj(24)) {
            let cfg = FilterConfig::default();
            prop_assert_eq!(speed_filter(&traj.points, &cfg).len(), traj.len());
            prop_assert_eq!(direction_filter(&traj.points, &cfg).len(), traj.len());
        }

        /// On a trajectory whose positions are all identical, the α-trimmed
        /// mean is a no-op: every smoothed position equals the raw position.
        #[test]
        fn alpha_trimmed_mean_is_noop_on_constant_positions(
            x in -1e4..1e4f64,
            y in -1e4..1e4f64,
            n in 1usize..16,
            alpha in 0.0..0.45f64,
            window in 0usize..5,
        ) {
            let cfg = FilterConfig { alpha, window, ..FilterConfig::default() };
            let mut points: Vec<CellularPoint> = (0..n)
                .map(|i| CellularPoint {
                    tower: TowerId(0),
                    pos: Point::new(x, y),
                    t: i as f64 * 30.0,
                    smoothed: None,
                })
                .collect();
            alpha_trimmed_mean(&mut points, &cfg);
            for p in &points {
                let s = p.smoothed.expect("filled");
                prop_assert!((s.x - x).abs() < 1e-9 && (s.y - y).abs() < 1e-9);
            }
        }

        /// The trimmed mean always lies within the window's bounding box.
        #[test]
        fn trimmed_mean_is_within_bounds(
            xs in proptest::collection::vec((-1e4..1e4f64, -1e4..1e4f64), 1..12),
            alpha in 0.0..0.45f64,
        ) {
            let pts: Vec<Point> = xs.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let m = trimmed_mean(&pts, alpha);
            let min_x = pts.iter().map(|p| p.x).fold(f64::INFINITY, f64::min);
            let max_x = pts.iter().map(|p| p.x).fold(f64::NEG_INFINITY, f64::max);
            let min_y = pts.iter().map(|p| p.y).fold(f64::INFINITY, f64::min);
            let max_y = pts.iter().map(|p| p.y).fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m.x >= min_x - 1e-9 && m.x <= max_x + 1e-9);
            prop_assert!(m.y >= min_y - 1e-9 && m.y <= max_y + 1e-9);
        }
    }
}
