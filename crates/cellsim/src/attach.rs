//! The tower attachment model.
//!
//! A phone attaches to the tower with the strongest received signal, not the
//! nearest mast. The received signal combines transmit power, log-distance
//! path loss, **directional antenna gain**, slow (per-trip) shadowing and
//! fast per-sample fading. The directional and shadowing terms are what give
//! cellular data its structured, *learnable* bias: the same tower serves a
//! consistent lobe of road segments trip after trip, while a distance-based
//! observation probability keeps looking directly under the mast.

use crate::randkit;
use crate::tower::{TowerField, TowerId};
use lhmm_geo::Point;
use rand::Rng;

/// Radio model parameters.
#[derive(Clone, Debug)]
pub struct AttachConfig {
    /// Maximum attachment radius in meters (beyond it a tower is invisible).
    pub max_range: f64,
    /// Path-loss exponent (free space = 2, dense urban ≈ 3–4).
    pub path_loss_exp: f64,
    /// Slow shadowing standard deviation per (trip, tower), dB.
    pub shadow_std_db: f64,
    /// Fast fading standard deviation per sample, dB.
    pub fade_std_db: f64,
}

impl Default for AttachConfig {
    fn default() -> Self {
        AttachConfig {
            max_range: 4_500.0,
            path_loss_exp: 3.0,
            shadow_std_db: 5.0,
            fade_std_db: 1.5,
        }
    }
}

/// Received signal strength (arbitrary dB origin) of `tower` at `pos` for
/// the trip identified by `trip_seed`, excluding fast fading.
pub fn mean_signal_db(
    field: &TowerField,
    tower: TowerId,
    pos: Point,
    trip_seed: u64,
    cfg: &AttachConfig,
) -> f64 {
    let t = field.tower(tower);
    let d = t.pos.distance(pos).max(10.0);
    let path_loss = 10.0 * cfg.path_loss_exp * d.log10();
    let bearing = t.pos.bearing_to(pos);
    let directional = t.gain_db * (bearing - t.azimuth).cos();
    let shadow =
        cfg.shadow_std_db * randkit::keyed_randn(randkit::mix64(trip_seed, tower.0 as u64));
    t.power_db + directional - path_loss + shadow
}

/// The serving tower at `pos`: argmax of signal over towers in range, with
/// per-sample fast fading drawn from `rng`. Falls back to the nearest tower
/// when nothing is in range (deep rural areas).
pub fn serving_tower(
    field: &TowerField,
    pos: Point,
    trip_seed: u64,
    cfg: &AttachConfig,
    rng: &mut impl Rng,
) -> TowerId {
    let candidates = field.towers_within(pos, cfg.max_range);
    if candidates.is_empty() {
        return field.nearest(pos);
    }
    candidates
        .into_iter()
        .map(|t| {
            let fade = cfg.fade_std_db * randkit::randn(rng);
            (t, mean_signal_db(field, t, pos, trip_seed, cfg) + fade)
        })
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(t, _)| t)
        // `candidates` starts with the nearest tower, so this is total.
        .unwrap_or(TowerId(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{place_towers, PlacementConfig};
    use crate::tower::CellTower;
    use lhmm_geo::BBox;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn field() -> TowerField {
        place_towers(
            BBox {
                min_x: 0.0,
                min_y: 0.0,
                max_x: 8_000.0,
                max_y: 8_000.0,
            },
            &PlacementConfig::default(),
        )
    }

    #[test]
    fn signal_decreases_with_distance() {
        let f = field();
        let t = TowerId(0);
        let base = f.tower(t).pos;
        let near = Point::new(base.x + 200.0, base.y);
        let far = Point::new(base.x + 3_000.0, base.y);
        let cfg = AttachConfig {
            shadow_std_db: 0.0,
            ..Default::default()
        };
        assert!(
            mean_signal_db(&f, t, near, 1, &cfg) > mean_signal_db(&f, t, far, 1, &cfg)
        );
    }

    #[test]
    fn directional_gain_favors_the_lobe() {
        // An isolated, strongly directional tower.
        let t = CellTower {
            id: TowerId(0),
            pos: Point::new(0.0, 0.0),
            azimuth: 0.0, // lobe points east
            gain_db: 9.0,
            power_db: 0.0,
        };
        let f = TowerField::new(vec![t], 1000.0);
        let cfg = AttachConfig {
            shadow_std_db: 0.0,
            ..Default::default()
        };
        let east = mean_signal_db(&f, TowerId(0), Point::new(1_000.0, 0.0), 1, &cfg);
        let west = mean_signal_db(&f, TowerId(0), Point::new(-1_000.0, 0.0), 1, &cfg);
        // Same distance, 18 dB swing from the antenna pattern.
        assert!((east - west - 18.0).abs() < 1e-9, "east {east} west {west}");
    }

    #[test]
    fn serving_tower_is_not_always_nearest() {
        let f = field();
        let cfg = AttachConfig::default();
        let mut rng = StdRng::seed_from_u64(11);
        let mut mismatches = 0;
        let mut total = 0;
        for i in 0..200 {
            let pos = Point::new(
                1_000.0 + (i as f64 * 37.0) % 6_000.0,
                1_000.0 + (i as f64 * 53.0) % 6_000.0,
            );
            let serving = serving_tower(&f, pos, i, &cfg, &mut rng);
            let nearest = f.nearest(pos);
            total += 1;
            if serving != nearest {
                mismatches += 1;
            }
        }
        let frac = mismatches as f64 / total as f64;
        // Anisotropy + shadowing must produce a substantial mismatch rate —
        // this is the learnable structure — but nearest should still win
        // often (signal does decay with distance).
        assert!(frac > 0.2, "mismatch fraction too low: {frac}");
        assert!(frac < 0.9, "mismatch fraction too high: {frac}");
    }

    #[test]
    fn shadowing_is_stable_within_a_trip() {
        let f = field();
        let cfg = AttachConfig::default();
        let pos = Point::new(3_000.0, 3_000.0);
        let a = mean_signal_db(&f, TowerId(3), pos, 42, &cfg);
        let b = mean_signal_db(&f, TowerId(3), pos, 42, &cfg);
        let c = mean_signal_db(&f, TowerId(3), pos, 43, &cfg);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn out_of_range_falls_back_to_nearest() {
        let t = CellTower {
            id: TowerId(0),
            pos: Point::new(0.0, 0.0),
            azimuth: 0.0,
            gain_db: 0.0,
            power_db: 0.0,
        };
        let f = TowerField::new(vec![t], 1000.0);
        let cfg = AttachConfig {
            max_range: 100.0,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let serving = serving_tower(&f, Point::new(50_000.0, 0.0), 1, &cfg, &mut rng);
        assert_eq!(serving, TowerId(0));
    }
}
