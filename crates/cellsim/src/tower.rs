//! Cell towers and the tower field.

use lhmm_geo::Point;

/// Identifier of a cell tower.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TowerId(pub u32);

impl TowerId {
    /// Index into tower-keyed arrays.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A cell tower with an anisotropic antenna pattern.
///
/// The serving decision in [`crate::attach`] uses
/// `power − path_loss(d) + gain·cos(θ − azimuth) + shadowing`, so a tower
/// with strong anisotropy covers a lobe rather than a disk. This is the
/// physical reason a trajectory point's *nearest* road is often not its
/// *actual* road — the effect LHMM's learned observation probability
/// exploits (paper §I).
#[derive(Clone, Copy, Debug)]
pub struct CellTower {
    /// Identifier (index into the field).
    pub id: TowerId,
    /// Mast position in the local frame.
    pub pos: Point,
    /// Main-lobe direction in radians.
    pub azimuth: f64,
    /// Directional gain amplitude in dB (0 = omnidirectional).
    pub gain_db: f64,
    /// Transmit power offset in dB relative to the fleet average.
    pub power_db: f64,
}

/// All towers of one dataset, with a coarse grid for range queries.
#[derive(Clone, Debug)]
pub struct TowerField {
    towers: Vec<CellTower>,
    cell_size: f64,
    origin: Point,
    cols: usize,
    rows: usize,
    cells: Vec<Vec<TowerId>>,
}

impl TowerField {
    /// Builds the field and its spatial grid. `cell_size` should be on the
    /// order of the maximum attachment radius.
    pub fn new(towers: Vec<CellTower>, cell_size: f64) -> Self {
        assert!(!towers.is_empty(), "tower field may not be empty");
        assert!(cell_size > 0.0);
        let pts: Vec<Point> = towers.iter().map(|t| t.pos).collect();
        let bbox = lhmm_geo::BBox::from_points(&pts)
            // `towers` was asserted non-empty above.
            .unwrap_or_else(|| lhmm_geo::BBox::from_point(Point::new(0.0, 0.0)))
            .inflated(cell_size);
        let cols = (bbox.width() / cell_size).ceil().max(1.0) as usize;
        let rows = (bbox.height() / cell_size).ceil().max(1.0) as usize;
        let mut field = TowerField {
            towers,
            cell_size,
            origin: Point::new(bbox.min_x, bbox.min_y),
            cols,
            rows,
            cells: vec![Vec::new(); cols * rows],
        };
        for i in 0..field.towers.len() {
            let (c, r) = field.cell_of(field.towers[i].pos);
            field.cells[r * cols + c].push(TowerId(i as u32));
        }
        field
    }

    #[inline]
    fn cell_of(&self, p: Point) -> (usize, usize) {
        let c = ((p.x - self.origin.x) / self.cell_size).floor();
        let r = ((p.y - self.origin.y) / self.cell_size).floor();
        (
            (c.max(0.0) as usize).min(self.cols - 1),
            (r.max(0.0) as usize).min(self.rows - 1),
        )
    }

    /// Number of towers.
    pub fn len(&self) -> usize {
        self.towers.len()
    }

    /// True when the field holds no towers (cannot happen post-construction).
    pub fn is_empty(&self) -> bool {
        self.towers.is_empty()
    }

    /// Tower record by id.
    #[inline]
    pub fn tower(&self, id: TowerId) -> &CellTower {
        &self.towers[id.idx()]
    }

    /// All towers.
    pub fn towers(&self) -> &[CellTower] {
        &self.towers
    }

    /// Towers within `radius` of `p`.
    pub fn towers_within(&self, p: Point, radius: f64) -> Vec<TowerId> {
        let lo = self.cell_of(Point::new(p.x - radius, p.y - radius));
        let hi = self.cell_of(Point::new(p.x + radius, p.y + radius));
        let mut out = Vec::new();
        for r in lo.1..=hi.1 {
            for c in lo.0..=hi.0 {
                for &t in &self.cells[r * self.cols + c] {
                    if self.towers[t.idx()].pos.distance(p) <= radius {
                        out.push(t);
                    }
                }
            }
        }
        out
    }

    /// The tower nearest to `p` (by mast distance).
    pub fn nearest(&self, p: Point) -> TowerId {
        // Expand the search radius until a hit is found.
        let mut radius = self.cell_size;
        loop {
            let hits = self.towers_within(p, radius);
            if let Some(best) = hits.into_iter().min_by(|&a, &b| {
                self.tower(a)
                    .pos
                    .distance(p)
                    .total_cmp(&self.tower(b).pos.distance(p))
            }) {
                return best;
            }
            radius *= 2.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_towers() -> TowerField {
        let towers = vec![
            CellTower {
                id: TowerId(0),
                pos: Point::new(0.0, 0.0),
                azimuth: 0.0,
                gain_db: 3.0,
                power_db: 0.0,
            },
            CellTower {
                id: TowerId(1),
                pos: Point::new(1000.0, 0.0),
                azimuth: 1.0,
                gain_db: 6.0,
                power_db: 1.0,
            },
            CellTower {
                id: TowerId(2),
                pos: Point::new(0.0, 1000.0),
                azimuth: 2.0,
                gain_db: 0.0,
                power_db: -1.0,
            },
        ];
        TowerField::new(towers, 500.0)
    }

    #[test]
    fn towers_within_radius() {
        let f = three_towers();
        let hits = f.towers_within(Point::new(0.0, 0.0), 1100.0);
        assert_eq!(hits.len(), 3);
        let hits = f.towers_within(Point::new(0.0, 0.0), 900.0);
        assert_eq!(hits, vec![TowerId(0)]);
    }

    #[test]
    fn nearest_tower() {
        let f = three_towers();
        assert_eq!(f.nearest(Point::new(900.0, 100.0)), TowerId(1));
        assert_eq!(f.nearest(Point::new(-50.0, -50.0)), TowerId(0));
        // Far away: search radius expansion still terminates.
        assert_eq!(f.nearest(Point::new(50_000.0, 50_000.0)), TowerId(1));
    }

    #[test]
    fn tower_lookup_matches_ids() {
        let f = three_towers();
        for i in 0..3u32 {
            assert_eq!(f.tower(TowerId(i)).id, TowerId(i));
        }
        assert_eq!(f.len(), 3);
    }
}
