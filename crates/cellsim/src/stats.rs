//! Dataset characteristic statistics (reproduces the paper's Table I).

use crate::dataset::Dataset;
use std::fmt;

/// The dataset characteristics the paper reports in Table I, plus
/// positioning-error diagnostics.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Directed road segments.
    pub road_segments: usize,
    /// Intersections.
    pub intersections: usize,
    /// Cell towers.
    pub towers: usize,
    /// Total cellular trajectory points across all splits.
    pub cellular_points: usize,
    /// Total GPS trajectory points across all splits.
    pub gps_points: usize,
    /// Mean cellular points per trajectory.
    pub cellular_points_per_traj: f64,
    /// Mean GPS points per trajectory.
    pub gps_points_per_traj: f64,
    /// Mean cellular sampling interval, seconds.
    pub avg_cell_interval_s: f64,
    /// Maximum cellular sampling interval, seconds.
    pub max_cell_interval_s: f64,
    /// Mean distance between consecutive cellular samples, meters.
    pub avg_sampling_distance_m: f64,
    /// Median distance between consecutive cellular samples, meters.
    pub median_sampling_distance_m: f64,
    /// Mean positioning error (tower vs true position), meters.
    pub avg_positioning_error_m: f64,
    /// Median positioning error, meters.
    pub median_positioning_error_m: f64,
}

/// Computes Table-I statistics over every split of the dataset.
pub fn compute(ds: &Dataset) -> DatasetStats {
    let mut cellular_points = 0usize;
    let mut gps_points = 0usize;
    let mut trajs = 0usize;
    let mut intervals: Vec<f64> = Vec::new();
    let mut hop_dists: Vec<f64> = Vec::new();
    let mut errors: Vec<f64> = Vec::new();

    for rec in ds.all_records() {
        trajs += 1;
        cellular_points += rec.cellular.len();
        gps_points += rec.gps.len();
        for w in rec.cellular.points.windows(2) {
            intervals.push(w[1].t - w[0].t);
            hop_dists.push(w[0].pos.distance(w[1].pos));
        }
        errors.extend(rec.positioning_errors());
    }

    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let median = |v: &mut Vec<f64>| -> f64 {
        if v.is_empty() {
            return 0.0;
        }
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    };

    let mut hop_sorted = hop_dists.clone();
    let mut err_sorted = errors.clone();
    DatasetStats {
        name: ds.name.clone(),
        road_segments: ds.network.num_segments(),
        intersections: ds.network.num_nodes(),
        towers: ds.towers.len(),
        cellular_points,
        gps_points,
        cellular_points_per_traj: cellular_points as f64 / trajs.max(1) as f64,
        gps_points_per_traj: gps_points as f64 / trajs.max(1) as f64,
        avg_cell_interval_s: mean(&intervals),
        max_cell_interval_s: intervals.iter().cloned().fold(0.0, f64::max),
        avg_sampling_distance_m: mean(&hop_dists),
        median_sampling_distance_m: median(&mut hop_sorted),
        avg_positioning_error_m: mean(&errors),
        median_positioning_error_m: median(&mut err_sorted),
    }
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "dataset: {}", self.name)?;
        writeln!(f, "  road segments                 {:>12}", self.road_segments)?;
        writeln!(f, "  intersections                 {:>12}", self.intersections)?;
        writeln!(f, "  cell towers                   {:>12}", self.towers)?;
        writeln!(f, "  cellular trajectory points    {:>12}", self.cellular_points)?;
        writeln!(f, "  GPS trajectory points         {:>12}", self.gps_points)?;
        writeln!(
            f,
            "  cellular points / trajectory  {:>12.1}",
            self.cellular_points_per_traj
        )?;
        writeln!(
            f,
            "  GPS points / trajectory       {:>12.1}",
            self.gps_points_per_traj
        )?;
        writeln!(
            f,
            "  avg cellular interval (s)     {:>12.1}",
            self.avg_cell_interval_s
        )?;
        writeln!(
            f,
            "  max cellular interval (s)     {:>12.1}",
            self.max_cell_interval_s
        )?;
        writeln!(
            f,
            "  avg sampling distance (m)     {:>12.1}",
            self.avg_sampling_distance_m
        )?;
        writeln!(
            f,
            "  median sampling distance (m)  {:>12.1}",
            self.median_sampling_distance_m
        )?;
        writeln!(
            f,
            "  avg positioning error (m)     {:>12.1}",
            self.avg_positioning_error_m
        )?;
        write!(
            f,
            "  median positioning error (m)  {:>12.1}",
            self.median_positioning_error_m
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetConfig;

    #[test]
    fn stats_are_internally_consistent() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(7));
        let s = compute(&ds);
        assert_eq!(s.road_segments, ds.network.num_segments());
        assert_eq!(s.intersections, ds.network.num_nodes());
        let total_trajs = ds.train.len() + ds.val.len() + ds.test.len();
        assert!(
            (s.cellular_points_per_traj - s.cellular_points as f64 / total_trajs as f64).abs()
                < 1e-9
        );
        // GPS is denser than cellular (Table I shape).
        assert!(s.gps_points > s.cellular_points);
        assert!(s.max_cell_interval_s >= s.avg_cell_interval_s);
        assert!(s.avg_sampling_distance_m > 0.0);
        assert!(s.median_positioning_error_m > 0.0);
    }

    #[test]
    fn display_renders_all_rows() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(8));
        let text = compute(&ds).to_string();
        for needle in [
            "road segments",
            "intersections",
            "cellular trajectory points",
            "median sampling distance",
            "positioning error",
        ] {
            assert!(text.contains(needle), "missing row: {needle}");
        }
    }

    #[test]
    fn interval_statistics_match_config_scale() {
        let cfg = DatasetConfig::tiny_test(9);
        let ds = Dataset::generate(&cfg);
        let s = compute(&ds);
        // Mean interval should be near the configured mean (filters may
        // stretch it slightly by dropping points).
        let target = cfg.sampling.cell_interval_mean;
        assert!(
            s.avg_cell_interval_s > target * 0.7 && s.avg_cell_interval_s < target * 2.0,
            "avg interval {} vs target {target}",
            s.avg_cell_interval_s
        );
    }
}
