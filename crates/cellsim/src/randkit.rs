//! Small distribution toolkit.
//!
//! The allowed dependency set includes `rand` but not `rand_distr`, so the
//! few distributions the simulator needs are implemented here.

use rand::Rng;

/// Standard normal sample via the Box–Muller transform.
pub fn randn(rng: &mut impl Rng) -> f64 {
    // u1 in (0, 1] to keep ln finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal sample with the given mean and standard deviation.
pub fn normal(rng: &mut impl Rng, mean: f64, std: f64) -> f64 {
    mean + std * randn(rng)
}

/// Log-normal sample: `exp(N(mu, sigma))`.
pub fn lognormal(rng: &mut impl Rng, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Exponential sample with the given mean.
pub fn exponential(rng: &mut impl Rng, mean: f64) -> f64 {
    let u: f64 = 1.0 - rng.gen::<f64>();
    -mean * u.ln()
}

/// A deterministic 64-bit mix of two ids, used to derive per-(trip, tower)
/// shadowing values without storing a map.
pub fn mix64(a: u64, b: u64) -> u64 {
    // SplitMix64 finalizer over the combined word.
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Standard normal derived deterministically from a 64-bit key (one sample).
pub fn keyed_randn(key: u64) -> f64 {
    // Two independent uniforms from the key via different mixes.
    let u1 = (mix64(key, 0x1234_5678) >> 11) as f64 / (1u64 << 53) as f64;
    let u2 = (mix64(key, 0x8765_4321) >> 11) as f64 / (1u64 << 53) as f64;
    let u1 = (1.0 - u1).max(1e-12);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn randn_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| randn(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mean = (0..n).map(|_| exponential(&mut rng, 3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        // Exponential samples are non-negative.
        assert!((0..100).all(|_| exponential(&mut rng, 1.0) >= 0.0));
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = StdRng::seed_from_u64(8);
        assert!((0..1000).all(|_| lognormal(&mut rng, 0.0, 0.5) > 0.0));
    }

    #[test]
    fn mix64_is_deterministic_and_spreads() {
        assert_eq!(mix64(1, 2), mix64(1, 2));
        assert_ne!(mix64(1, 2), mix64(2, 1));
        assert_ne!(mix64(0, 0), mix64(0, 1));
    }

    #[test]
    fn keyed_randn_is_roughly_standard_normal() {
        let n = 20_000u64;
        let samples: Vec<f64> = (0..n).map(keyed_randn).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
