//! Tower placement with an urban density gradient.

use crate::randkit;
use crate::tower::{CellTower, TowerField, TowerId};
use lhmm_geo::{BBox, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`place_towers`].
#[derive(Clone, Debug)]
pub struct PlacementConfig {
    /// Inter-tower spacing at the city center, meters.
    pub core_spacing: f64,
    /// Inter-tower spacing at the map fringe, meters.
    pub fringe_spacing: f64,
    /// Positional jitter as a fraction of the local spacing.
    pub jitter: f64,
    /// Standard deviation of per-tower transmit power offsets, dB.
    pub power_std_db: f64,
    /// Maximum directional gain amplitude, dB (sampled uniformly in
    /// `[0, max]`; larger = more anisotropic coverage).
    pub max_gain_db: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PlacementConfig {
    fn default() -> Self {
        PlacementConfig {
            core_spacing: 550.0,
            fringe_spacing: 1600.0,
            jitter: 0.30,
            power_std_db: 3.0,
            max_gain_db: 9.0,
            seed: 0,
        }
    }
}

/// Places towers over `area` with spacing that widens from the center to
/// the fringe, mirroring real deployments (dense urban micro-cells, sparse
/// rural macro-cells — the effect behind the paper's Fig. 7a).
///
/// Placement walks a virtual grid at core spacing and thins sites by a
/// keep-probability `(core/local)²` so the realized local density matches
/// the target spacing.
pub fn place_towers(area: BBox, cfg: &PlacementConfig) -> TowerField {
    assert!(cfg.core_spacing > 0.0 && cfg.fringe_spacing >= cfg.core_spacing);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let center = area.center();
    let max_r = (area.width().powi(2) + area.height().powi(2)).sqrt() * 0.5;

    let mut towers = Vec::new();
    let step = cfg.core_spacing;
    let nx = (area.width() / step).ceil() as usize + 1;
    let ny = (area.height() / step).ceil() as usize + 1;
    for iy in 0..ny {
        for ix in 0..nx {
            let base = Point::new(area.min_x + ix as f64 * step, area.min_y + iy as f64 * step);
            let r = base.distance(center) / max_r;
            let local_spacing =
                cfg.core_spacing + (cfg.fringe_spacing - cfg.core_spacing) * r.min(1.0);
            let keep = (cfg.core_spacing / local_spacing).powi(2);
            if rng.gen::<f64>() >= keep {
                continue;
            }
            let jx = randkit::normal(&mut rng, 0.0, cfg.jitter * local_spacing);
            let jy = randkit::normal(&mut rng, 0.0, cfg.jitter * local_spacing);
            let id = TowerId(towers.len() as u32);
            towers.push(CellTower {
                id,
                pos: Point::new(base.x + jx, base.y + jy),
                azimuth: rng.gen::<f64>() * 2.0 * std::f64::consts::PI - std::f64::consts::PI,
                gain_db: rng.gen::<f64>() * cfg.max_gain_db,
                power_db: randkit::normal(&mut rng, 0.0, cfg.power_std_db),
            });
        }
    }
    // Re-number after thinning so ids are contiguous.
    for (i, t) in towers.iter_mut().enumerate() {
        t.id = TowerId(i as u32);
    }
    TowerField::new(towers, cfg.fringe_spacing.max(1000.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn area() -> BBox {
        BBox {
            min_x: 0.0,
            min_y: 0.0,
            max_x: 10_000.0,
            max_y: 10_000.0,
        }
    }

    #[test]
    fn placement_is_deterministic() {
        let a = place_towers(area(), &PlacementConfig::default());
        let b = place_towers(area(), &PlacementConfig::default());
        assert_eq!(a.len(), b.len());
        for (ta, tb) in a.towers().iter().zip(b.towers()) {
            assert_eq!(ta.pos, tb.pos);
        }
    }

    #[test]
    fn density_decreases_toward_fringe() {
        let field = place_towers(area(), &PlacementConfig::default());
        let center = Point::new(5000.0, 5000.0);
        let corner = Point::new(1000.0, 1000.0);
        let near_center = field.towers_within(center, 2000.0).len();
        let near_corner = field.towers_within(corner, 2000.0).len();
        assert!(
            near_center > near_corner,
            "center {near_center} corner {near_corner}"
        );
    }

    #[test]
    fn tower_count_tracks_core_spacing() {
        let dense = place_towers(
            area(),
            &PlacementConfig {
                core_spacing: 400.0,
                ..Default::default()
            },
        );
        let sparse = place_towers(
            area(),
            &PlacementConfig {
                core_spacing: 900.0,
                fringe_spacing: 1800.0,
                ..Default::default()
            },
        );
        assert!(dense.len() > sparse.len());
    }

    #[test]
    fn ids_are_contiguous() {
        let field = place_towers(area(), &PlacementConfig::default());
        for (i, t) in field.towers().iter().enumerate() {
            assert_eq!(t.id, TowerId(i as u32));
        }
    }

    #[test]
    fn anisotropy_is_bounded() {
        let cfg = PlacementConfig::default();
        let field = place_towers(area(), &cfg);
        for t in field.towers() {
            assert!(t.gain_db >= 0.0 && t.gain_db <= cfg.max_gain_db);
            assert!(t.azimuth > -std::f64::consts::PI - 1e-9);
            assert!(t.azimuth <= std::f64::consts::PI + 1e-9);
        }
    }
}
