//! CSV import/export of cellular trajectories.
//!
//! The adoption path for real data: a telecom operator exports its
//! (anonymized) records as CSV and matches them against a network loaded
//! via `lhmm_network::io`. The format is headerless
//! `traj_id,tower_id,x,y,t` rows, one observation per line, grouped by
//! ascending `traj_id` with ascending timestamps inside each trajectory.
//! `x,y` is the tower position in the same planar frame as the network.

use crate::tower::TowerId;
use crate::traj::{CellularPoint, CellularTrajectory};
use lhmm_geo::Point;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// Errors raised while reading trajectory CSV data.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line (1-based line number and reason).
    Parse(usize, String),
    /// Timestamps within a trajectory are not strictly increasing.
    UnorderedTimestamps(usize),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse(line, msg) => write!(f, "line {line}: {msg}"),
            IoError::UnorderedTimestamps(line) => {
                write!(f, "line {line}: timestamps must strictly increase")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Reads trajectories from a CSV stream. Rows with the same `traj_id` must
/// be contiguous; trajectories are returned in file order.
pub fn read_trajectories<R: Read>(reader: R) -> Result<Vec<CellularTrajectory>, IoError> {
    let mut out: Vec<CellularTrajectory> = Vec::new();
    let mut current_id: Option<u64> = None;
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split(',');
        let mut field = |name: &str| -> Result<&str, IoError> {
            parts
                .next()
                .ok_or_else(|| IoError::Parse(lineno + 1, format!("missing {name}")))
        };
        let traj_id: u64 = field("traj_id")?
            .trim()
            .parse()
            .map_err(|_| IoError::Parse(lineno + 1, "bad traj_id".into()))?;
        let tower: u32 = field("tower_id")?
            .trim()
            .parse()
            .map_err(|_| IoError::Parse(lineno + 1, "bad tower_id".into()))?;
        let x: f64 = field("x")?
            .trim()
            .parse()
            .map_err(|_| IoError::Parse(lineno + 1, "bad x".into()))?;
        let y: f64 = field("y")?
            .trim()
            .parse()
            .map_err(|_| IoError::Parse(lineno + 1, "bad y".into()))?;
        let t: f64 = field("t")?
            .trim()
            .parse()
            .map_err(|_| IoError::Parse(lineno + 1, "bad t".into()))?;
        if !(x.is_finite() && y.is_finite() && t.is_finite()) {
            return Err(IoError::Parse(lineno + 1, "non-finite value".into()));
        }

        if current_id != Some(traj_id) {
            out.push(CellularTrajectory::default());
            current_id = Some(traj_id);
        }
        let Some(traj) = out.last_mut() else {
            continue; // unreachable: a trajectory was pushed above
        };
        if let Some(last) = traj.points.last() {
            if t <= last.t {
                return Err(IoError::UnorderedTimestamps(lineno + 1));
            }
        }
        traj.points.push(CellularPoint {
            tower: TowerId(tower),
            pos: Point::new(x, y),
            t,
            smoothed: None,
        });
    }
    Ok(out)
}

/// Writes trajectories as CSV (the inverse of [`read_trajectories`]).
pub fn write_trajectories<W: Write>(
    trajectories: &[CellularTrajectory],
    mut writer: W,
) -> std::io::Result<()> {
    for (id, traj) in trajectories.iter().enumerate() {
        for p in &traj.points {
            writeln!(
                writer,
                "{},{},{:.3},{:.3},{:.3}",
                id, p.tower.0, p.pos.x, p.pos.y, p.t
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, DatasetConfig};

    #[test]
    fn roundtrip_preserves_trajectories() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(401));
        let original: Vec<CellularTrajectory> =
            ds.test.iter().map(|r| r.cellular.clone()).collect();
        let mut buf = Vec::new();
        write_trajectories(&original, &mut buf).unwrap();
        let loaded = read_trajectories(buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), original.len());
        for (a, b) in original.iter().zip(&loaded) {
            assert_eq!(a.len(), b.len());
            for (pa, pb) in a.points.iter().zip(&b.points) {
                assert_eq!(pa.tower, pb.tower);
                assert!((pa.t - pb.t).abs() < 1e-3);
                assert!(pa.pos.distance(pb.pos) < 0.01);
            }
        }
    }

    #[test]
    fn read_accepts_comments_and_groups_by_id() {
        let csv = "# id,tower,x,y,t\n0,3,100.0,200.0,0.0\n0,4,150.0,210.0,30.0\n7,1,0.0,0.0,5.0\n";
        let trajs = read_trajectories(csv.as_bytes()).unwrap();
        assert_eq!(trajs.len(), 2);
        assert_eq!(trajs[0].len(), 2);
        assert_eq!(trajs[1].len(), 1);
        assert_eq!(trajs[0].points[1].tower, TowerId(4));
    }

    #[test]
    fn read_rejects_malformed_rows() {
        assert!(matches!(
            read_trajectories("0,1,2".as_bytes()),
            Err(IoError::Parse(1, _))
        ));
        assert!(matches!(
            read_trajectories("0,x,0,0,0".as_bytes()),
            Err(IoError::Parse(1, _))
        ));
        assert!(matches!(
            read_trajectories("0,1,NaN,0,0".as_bytes()),
            Err(IoError::Parse(1, _))
        ));
    }

    #[test]
    fn read_rejects_unordered_timestamps() {
        let csv = "0,1,0,0,10.0\n0,1,5,5,10.0\n";
        assert!(matches!(
            read_trajectories(csv.as_bytes()),
            Err(IoError::UnorderedTimestamps(2))
        ));
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(read_trajectories("".as_bytes()).unwrap().is_empty());
        assert!(read_trajectories("# only comments\n".as_bytes())
            .unwrap()
            .is_empty());
    }
}
