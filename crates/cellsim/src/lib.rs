//! Cellular-positioning data simulator.
//!
//! The paper evaluates on two proprietary operator datasets (Hangzhou,
//! Xiamen) consisting of paired cellular + GPS trajectories. This crate is
//! the documented substitution (see DESIGN.md §2): a full simulator that
//! reproduces every property the LHMM method actually consumes:
//!
//! * a road network with urban core and rural fringe ([`lhmm_network`]),
//! * cell towers with **anisotropic coverage** ([`tower`], [`placement`]) —
//!   directional antenna gain plus log-distance path loss and per-trip
//!   shadowing make the *serving* tower systematically different from the
//!   *nearest* tower, which is exactly the real-world failure mode that
//!   breaks distance-based observation probabilities,
//! * trips driven over the network with realistic route choice and speeds
//!   ([`trips`]),
//! * cellular and GPS sampling of those drives ([`sampling`], [`attach`]),
//! * the SnapNet pre-filters the paper applies before matching
//!   ([`filters`]),
//! * seeded fault injectors and the reproducible adversarial corpus used
//!   to harden the matching pipeline ([`faults`]),
//! * assembled datasets with train/val/test splits and Table-I statistics
//!   ([`dataset`], [`stats`]).
//!
//! ```no_run
//! use lhmm_cellsim::dataset::{Dataset, DatasetConfig};
//!
//! let ds = Dataset::generate(&DatasetConfig::hangzhou_like(0.02, 42));
//! println!("{}", lhmm_cellsim::stats::compute(&ds));
//! ```

#![forbid(unsafe_code)]

pub mod attach;
pub mod dataset;
pub mod faults;
pub mod filters;
pub mod io;
pub mod placement;
pub mod randkit;
pub mod sampling;
pub mod stats;
pub mod tower;
pub mod traj;
pub mod trips;

pub use dataset::{Dataset, DatasetConfig};
pub use tower::{CellTower, TowerField, TowerId};
pub use traj::{CellularPoint, CellularTrajectory, GpsPoint, TrajectoryRecord};
