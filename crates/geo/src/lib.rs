//! Planar geometry primitives shared by the LHMM map-matching workspace.
//!
//! All coordinates live in a local planar frame measured in **meters**.
//! The datasets produced by `lhmm-cellsim` are synthetic city extents of a few
//! tens of kilometers, so a flat-earth approximation is exact by construction
//! and no geodesic math is needed.
//!
//! The crate provides:
//! * [`Point`] — a 2-D point with distance/bearing helpers,
//! * [`BBox`] — axis-aligned bounding boxes used by spatial indexes,
//! * [`segment`] — projection of points onto segments (the core primitive of
//!   observation-probability features),
//! * [`polyline`] — length, resampling, turn-angle accumulation and corridor
//!   coverage used by transition features and the CMF metric,
//! * [`angle`] — angle normalization utilities.
//!
//! ```
//! use lhmm_geo::{project_onto_segment, Point};
//!
//! let p = Point::new(5.0, 3.0);
//! let proj = project_onto_segment(p, Point::new(0.0, 0.0), Point::new(10.0, 0.0));
//! assert_eq!(proj.point, Point::new(5.0, 0.0));
//! assert_eq!(proj.distance, 3.0);
//! assert_eq!(proj.t, 0.5);
//! ```

#![forbid(unsafe_code)]

pub mod angle;
pub mod bbox;
pub mod frechet;
pub mod point;
pub mod polyline;
pub mod segment;

pub use bbox::BBox;
pub use point::Point;
pub use segment::{project_onto_segment, Projection};

/// True exactly when `x == ±0.0` — the degenerate-geometry guard used in
/// place of a float `==` (which `lhmm-lint` bans in the inference zone,
/// rule `float-cmp`). Bit-for-bit equivalent to `x == 0.0` for every
/// input: `-0.0` is zero, NaN is not.
#[inline]
pub fn exactly_zero(x: f64) -> bool {
    x.abs().to_bits() == 0
}

/// [`exactly_zero`] for `f32` values (the neural crates run in single
/// precision).
#[inline]
pub fn exactly_zero_f32(x: f32) -> bool {
    x.abs().to_bits() == 0
}
