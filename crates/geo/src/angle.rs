//! Angle utilities for headings and turn computation.

use std::f64::consts::PI;

/// Normalizes an angle to `(-pi, pi]`.
#[inline]
pub fn normalize(mut a: f64) -> f64 {
    // Fast path for already-normalized values (the common case).
    if a > -PI && a <= PI {
        return a;
    }
    a = a.rem_euclid(2.0 * PI);
    if a > PI {
        a -= 2.0 * PI;
    }
    a
}

/// Smallest absolute difference between two angles, in `[0, pi]`.
#[inline]
pub fn abs_diff(a: f64, b: f64) -> f64 {
    normalize(a - b).abs()
}

/// Signed turn from heading `from` to heading `to`, in `(-pi, pi]`.
/// Positive is a left (counter-clockwise) turn.
#[inline]
pub fn signed_turn(from: f64, to: f64) -> f64 {
    normalize(to - from)
}

/// Converts degrees to radians.
#[inline]
pub fn deg_to_rad(deg: f64) -> f64 {
    deg * PI / 180.0
}

/// Converts radians to degrees.
#[inline]
pub fn rad_to_deg(rad: f64) -> f64 {
    rad * 180.0 / PI
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_wraps_into_range() {
        assert!((normalize(3.0 * PI) - PI).abs() < 1e-12);
        assert!((normalize(-3.0 * PI) - PI).abs() < 1e-12);
        assert!((normalize(0.5) - 0.5).abs() < 1e-12);
        let n = normalize(2.0 * PI + 0.1);
        assert!((n - 0.1).abs() < 1e-12);
    }

    #[test]
    fn normalize_is_idempotent() {
        for k in -10..10 {
            let a = k as f64 * 0.7;
            let n = normalize(a);
            assert!((normalize(n) - n).abs() < 1e-12);
            assert!(n > -PI - 1e-12 && n <= PI + 1e-12);
        }
    }

    #[test]
    fn abs_diff_handles_wraparound() {
        // 179 deg vs -179 deg differ by 2 deg, not 358.
        let a = deg_to_rad(179.0);
        let b = deg_to_rad(-179.0);
        assert!((abs_diff(a, b) - deg_to_rad(2.0)).abs() < 1e-9);
    }

    #[test]
    fn signed_turn_direction() {
        assert!(signed_turn(0.0, 0.5) > 0.0);
        assert!(signed_turn(0.5, 0.0) < 0.0);
        // Turning across the branch cut.
        assert!(signed_turn(deg_to_rad(170.0), deg_to_rad(-170.0)) > 0.0);
    }

    #[test]
    fn deg_rad_roundtrip() {
        for d in [-720.0, -90.0, 0.0, 45.0, 360.0] {
            assert!((rad_to_deg(deg_to_rad(d)) - d).abs() < 1e-9);
        }
    }
}
