//! 2-D points in a local planar frame (meters).

use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

/// A point in the local planar frame. Units are meters.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Easting in meters.
    pub x: f64,
    /// Northing in meters.
    pub y: f64,
}

impl Point {
    /// Creates a point at `(x, y)` meters.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin of the local frame.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Euclidean distance to `other` in meters.
    #[inline]
    pub fn distance(&self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance; cheaper when only comparisons are needed.
    #[inline]
    pub fn distance_sq(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Vector length when the point is interpreted as a vector from the origin.
    #[inline]
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Dot product with `other` (vector interpretation).
    #[inline]
    pub fn dot(&self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z component), positive when `other` is counter
    /// clockwise of `self`.
    #[inline]
    pub fn cross(&self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(&self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: Point) -> Point {
        self.lerp(other, 0.5)
    }

    /// Bearing of the vector from `self` to `other` in radians in
    /// `(-pi, pi]`, measured counter-clockwise from the +x axis.
    ///
    /// Returns `0.0` for coincident points.
    #[inline]
    pub fn bearing_to(&self, other: Point) -> f64 {
        let dy = other.y - self.y;
        let dx = other.x - self.x;
        if crate::exactly_zero(dx) && crate::exactly_zero(dy) {
            0.0
        } else {
            dy.atan2(dx)
        }
    }

    /// Returns a unit vector pointing from `self` to `other`, or `None` when
    /// the points coincide.
    pub fn direction_to(&self, other: Point) -> Option<Point> {
        let d = self.distance(other);
        if crate::exactly_zero(d) {
            None
        } else {
            Some(Point::new((other.x - self.x) / d, (other.y - self.y) / d))
        }
    }

    /// True when both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

/// Arithmetic mean of a non-empty point set; `None` for an empty slice.
pub fn centroid(points: &[Point]) -> Option<Point> {
    if points.is_empty() {
        return None;
    }
    let mut sum = Point::ORIGIN;
    for p in points {
        sum = sum + *p;
    }
    Some(sum / points.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(-2.5, 7.0);
        let b = Point::new(10.0, -3.0);
        assert_eq!(a.distance(b), b.distance(a));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.midpoint(b), Point::new(5.0, -3.0));
    }

    #[test]
    fn bearing_cardinal_directions() {
        let o = Point::ORIGIN;
        assert!((o.bearing_to(Point::new(1.0, 0.0)) - 0.0).abs() < 1e-12);
        assert!((o.bearing_to(Point::new(0.0, 1.0)) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((o.bearing_to(Point::new(-1.0, 0.0)) - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn bearing_of_coincident_points_is_zero() {
        let p = Point::new(4.0, 4.0);
        assert_eq!(p.bearing_to(p), 0.0);
    }

    #[test]
    fn direction_is_unit_length() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-5.0, 9.0);
        let d = a.direction_to(b).unwrap();
        assert!((d.norm() - 1.0).abs() < 1e-12);
        assert!(a.direction_to(a).is_none());
    }

    #[test]
    fn centroid_of_points() {
        assert_eq!(centroid(&[]), None);
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(1.0, 3.0),
        ];
        assert_eq!(centroid(&pts), Some(Point::new(1.0, 1.0)));
    }

    #[test]
    fn cross_sign_indicates_orientation() {
        let east = Point::new(1.0, 0.0);
        let north = Point::new(0.0, 1.0);
        assert!(east.cross(north) > 0.0);
        assert!(north.cross(east) < 0.0);
    }
}
