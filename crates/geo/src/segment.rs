//! Point-to-segment projection — the geometric core of observation features.

use crate::point::Point;

/// Result of projecting a point onto a segment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Projection {
    /// Closest point on the segment.
    pub point: Point,
    /// Distance from the query point to `point`, in meters.
    pub distance: f64,
    /// Normalized position along the segment in `[0, 1]`
    /// (0 = segment start, 1 = segment end).
    pub t: f64,
}

/// Projects `p` onto the segment `(a, b)`.
///
/// Degenerate segments (`a == b`) project everything onto `a` with `t = 0`.
pub fn project_onto_segment(p: Point, a: Point, b: Point) -> Projection {
    let ab = b - a;
    let len_sq = ab.dot(ab);
    if crate::exactly_zero(len_sq) {
        return Projection {
            point: a,
            distance: p.distance(a),
            t: 0.0,
        };
    }
    let t = ((p - a).dot(ab) / len_sq).clamp(0.0, 1.0);
    let q = a.lerp(b, t);
    Projection {
        point: q,
        distance: p.distance(q),
        t,
    }
}

/// Distance from `p` to the segment `(a, b)`.
#[inline]
pub fn distance_to_segment(p: Point, a: Point, b: Point) -> f64 {
    project_onto_segment(p, a, b).distance
}

/// Minimum distance between two segments `(a1, b1)` and `(a2, b2)`.
///
/// Zero when the segments intersect.
pub fn segment_distance(a1: Point, b1: Point, a2: Point, b2: Point) -> f64 {
    if segments_intersect(a1, b1, a2, b2) {
        return 0.0;
    }
    distance_to_segment(a1, a2, b2)
        .min(distance_to_segment(b1, a2, b2))
        .min(distance_to_segment(a2, a1, b1))
        .min(distance_to_segment(b2, a1, b1))
}

/// True when the closed segments `(a1, b1)` and `(a2, b2)` intersect.
pub fn segments_intersect(a1: Point, b1: Point, a2: Point, b2: Point) -> bool {
    let d1 = orient(a2, b2, a1);
    let d2 = orient(a2, b2, b1);
    let d3 = orient(a1, b1, a2);
    let d4 = orient(a1, b1, b2);
    if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
    {
        return true;
    }
    (crate::exactly_zero(d1) && on_segment(a2, b2, a1))
        || (crate::exactly_zero(d2) && on_segment(a2, b2, b1))
        || (crate::exactly_zero(d3) && on_segment(a1, b1, a2))
        || (crate::exactly_zero(d4) && on_segment(a1, b1, b2))
}

#[inline]
fn orient(a: Point, b: Point, c: Point) -> f64 {
    (b - a).cross(c - a)
}

#[inline]
fn on_segment(a: Point, b: Point, p: Point) -> bool {
    p.x >= a.x.min(b.x) && p.x <= a.x.max(b.x) && p.y >= a.y.min(b.y) && p.y <= a.y.max(b.y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_interior() {
        let pr = project_onto_segment(
            Point::new(5.0, 3.0),
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
        );
        assert_eq!(pr.point, Point::new(5.0, 0.0));
        assert_eq!(pr.distance, 3.0);
        assert_eq!(pr.t, 0.5);
    }

    #[test]
    fn projection_clamps_to_endpoints() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        let before = project_onto_segment(Point::new(-4.0, 3.0), a, b);
        assert_eq!(before.point, a);
        assert_eq!(before.distance, 5.0);
        assert_eq!(before.t, 0.0);
        let after = project_onto_segment(Point::new(14.0, -3.0), a, b);
        assert_eq!(after.point, b);
        assert_eq!(after.t, 1.0);
    }

    #[test]
    fn degenerate_segment() {
        let a = Point::new(2.0, 2.0);
        let pr = project_onto_segment(Point::new(5.0, 6.0), a, a);
        assert_eq!(pr.point, a);
        assert_eq!(pr.distance, 5.0);
    }

    #[test]
    fn intersecting_segments_have_zero_distance() {
        let d = segment_distance(
            Point::new(0.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
            Point::new(10.0, 0.0),
        );
        assert_eq!(d, 0.0);
    }

    #[test]
    fn parallel_segment_distance() {
        let d = segment_distance(
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(0.0, 4.0),
            Point::new(10.0, 4.0),
        );
        assert_eq!(d, 4.0);
    }

    #[test]
    fn collinear_touching_segments_intersect() {
        assert!(segments_intersect(
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(9.0, 0.0),
        ));
        assert!(!segments_intersect(
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(5.1, 0.0),
            Point::new(9.0, 0.0),
        ));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn pt() -> impl Strategy<Value = Point> {
        (-1e4..1e4f64, -1e4..1e4f64).prop_map(|(x, y)| Point::new(x, y))
    }

    proptest! {
        /// The projection must be at least as close as both endpoints and any
        /// sampled interior point.
        #[test]
        fn projection_is_nearest(p in pt(), a in pt(), b in pt(), t in 0.0..1.0f64) {
            let pr = project_onto_segment(p, a, b);
            prop_assert!(pr.distance <= p.distance(a) + 1e-9);
            prop_assert!(pr.distance <= p.distance(b) + 1e-9);
            let interior = a.lerp(b, t);
            prop_assert!(pr.distance <= p.distance(interior) + 1e-9);
        }

        /// The projected point always lies on the segment (within fp noise).
        #[test]
        fn projection_lies_on_segment(p in pt(), a in pt(), b in pt()) {
            let pr = project_onto_segment(p, a, b);
            let reconstructed = a.lerp(b, pr.t);
            prop_assert!(pr.point.distance(reconstructed) < 1e-6);
            prop_assert!((0.0..=1.0).contains(&pr.t));
        }

        /// Segment distance is symmetric in its two segments.
        #[test]
        fn segment_distance_symmetric(a1 in pt(), b1 in pt(), a2 in pt(), b2 in pt()) {
            let d1 = segment_distance(a1, b1, a2, b2);
            let d2 = segment_distance(a2, b2, a1, b1);
            prop_assert!((d1 - d2).abs() < 1e-9);
        }
    }
}
