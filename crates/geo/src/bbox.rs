//! Axis-aligned bounding boxes.

use crate::point::Point;

/// An axis-aligned bounding box, used by the uniform-grid spatial index in
/// `lhmm-network` and by dataset extent computations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BBox {
    /// Minimum x (west edge).
    pub min_x: f64,
    /// Minimum y (south edge).
    pub min_y: f64,
    /// Maximum x (east edge).
    pub max_x: f64,
    /// Maximum y (north edge).
    pub max_y: f64,
}

impl BBox {
    /// A degenerate box around a single point.
    pub fn from_point(p: Point) -> Self {
        BBox {
            min_x: p.x,
            min_y: p.y,
            max_x: p.x,
            max_y: p.y,
        }
    }

    /// The smallest box covering both endpoints of a segment.
    pub fn from_segment(a: Point, b: Point) -> Self {
        BBox {
            min_x: a.x.min(b.x),
            min_y: a.y.min(b.y),
            max_x: a.x.max(b.x),
            max_y: a.y.max(b.y),
        }
    }

    /// The smallest box covering every point; `None` for an empty slice.
    pub fn from_points(points: &[Point]) -> Option<Self> {
        let mut it = points.iter();
        let first = it.next()?;
        let mut b = BBox::from_point(*first);
        for p in it {
            b.expand_to(*p);
        }
        Some(b)
    }

    /// Grows the box in place so that `p` is covered.
    pub fn expand_to(&mut self, p: Point) {
        self.min_x = self.min_x.min(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_x = self.max_x.max(p.x);
        self.max_y = self.max_y.max(p.y);
    }

    /// Returns a copy inflated by `margin` meters on every side.
    pub fn inflated(&self, margin: f64) -> BBox {
        BBox {
            min_x: self.min_x - margin,
            min_y: self.min_y - margin,
            max_x: self.max_x + margin,
            max_y: self.max_y + margin,
        }
    }

    /// Box width in meters.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Box height in meters.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Center point of the box.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) * 0.5,
            (self.min_y + self.max_y) * 0.5,
        )
    }

    /// True when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// True when the two boxes overlap (sharing a boundary counts).
    #[inline]
    pub fn intersects(&self, other: &BBox) -> bool {
        self.min_x <= other.max_x
            && self.max_x >= other.min_x
            && self.min_y <= other.max_y
            && self.max_y >= other.min_y
    }

    /// Minimum distance from `p` to the box (zero when inside).
    pub fn distance_to_point(&self, p: Point) -> f64 {
        let dx = (self.min_x - p.x).max(0.0).max(p.x - self.max_x);
        let dy = (self.min_y - p.y).max(0.0).max(p.y - self.max_y);
        (dx * dx + dy * dy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_points_covers_all() {
        let pts = [
            Point::new(1.0, 5.0),
            Point::new(-2.0, 3.0),
            Point::new(4.0, -1.0),
        ];
        let b = BBox::from_points(&pts).unwrap();
        assert_eq!(b.min_x, -2.0);
        assert_eq!(b.max_x, 4.0);
        assert_eq!(b.min_y, -1.0);
        assert_eq!(b.max_y, 5.0);
        for p in pts {
            assert!(b.contains(p));
        }
        assert!(BBox::from_points(&[]).is_none());
    }

    #[test]
    fn contains_boundary() {
        let b = BBox::from_segment(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        assert!(b.contains(Point::new(0.0, 5.0)));
        assert!(b.contains(Point::new(10.0, 10.0)));
        assert!(!b.contains(Point::new(10.01, 10.0)));
    }

    #[test]
    fn intersects_cases() {
        let a = BBox::from_segment(Point::new(0.0, 0.0), Point::new(4.0, 4.0));
        let b = BBox::from_segment(Point::new(4.0, 4.0), Point::new(8.0, 8.0));
        let c = BBox::from_segment(Point::new(5.0, 0.0), Point::new(9.0, 3.0));
        assert!(a.intersects(&b)); // touching corner
        assert!(!a.intersects(&c));
        // c spans y in [0, 3]; b starts at y = 4 — no overlap.
        assert!(!c.intersects(&b));
    }

    #[test]
    fn distance_to_point_inside_is_zero() {
        let b = BBox::from_segment(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        assert_eq!(b.distance_to_point(Point::new(5.0, 5.0)), 0.0);
        assert_eq!(b.distance_to_point(Point::new(13.0, 14.0)), 5.0);
        assert_eq!(b.distance_to_point(Point::new(-3.0, 5.0)), 3.0);
    }

    #[test]
    fn inflated_grows_every_side() {
        let b = BBox::from_point(Point::new(1.0, 1.0)).inflated(2.0);
        assert_eq!(b.width(), 4.0);
        assert_eq!(b.height(), 4.0);
        assert_eq!(b.center(), Point::new(1.0, 1.0));
    }
}
