//! Polyline operations: length, resampling, turn accumulation and corridor
//! coverage.
//!
//! Matching paths and ground-truth paths are compared as polylines by the
//! CMF metric ([`covered_length`]); transition features use the accumulated
//! turn angle ([`total_turn`]).

use crate::angle;
use crate::point::Point;
use crate::segment::distance_to_segment;

/// Total length of a polyline in meters. Zero for fewer than two points.
pub fn length(points: &[Point]) -> f64 {
    points.windows(2).map(|w| w[0].distance(w[1])).sum()
}

/// Sum of absolute turn angles along the polyline, in radians.
///
/// This is the explicit "number of turns" feature `D_T` of the paper
/// (Section IV-D): the sum of heading changes at every interior vertex.
pub fn total_turn(points: &[Point]) -> f64 {
    if points.len() < 3 {
        return 0.0;
    }
    let mut sum = 0.0;
    let mut prev_heading: Option<f64> = None;
    for w in points.windows(2) {
        if w[0] == w[1] {
            continue; // skip zero-length edges, heading undefined
        }
        let h = w[0].bearing_to(w[1]);
        if let Some(ph) = prev_heading {
            sum += angle::abs_diff(ph, h);
        }
        prev_heading = Some(h);
    }
    sum
}

/// Streaming form of [`total_turn`]: feed vertices one at a time instead of
/// materializing a polyline `Vec`. Pushing a vertex equal to the previous
/// one is a no-op (the zero-length-edge skip of [`total_turn`]), so callers
/// need not deduplicate. For any point sequence, `total()` is bit-identical
/// to `total_turn` over the same sequence.
#[derive(Clone, Debug, Default)]
pub struct TurnAccumulator {
    sum: f64,
    prev_heading: Option<f64>,
    last: Option<Point>,
}

impl TurnAccumulator {
    /// Appends the next polyline vertex.
    pub fn push(&mut self, p: Point) {
        if let Some(lp) = self.last {
            if lp != p {
                let h = lp.bearing_to(p);
                if let Some(ph) = self.prev_heading {
                    self.sum += angle::abs_diff(ph, h);
                }
                self.prev_heading = Some(h);
            }
        }
        self.last = Some(p);
    }

    /// Accumulated turn in radians.
    pub fn total(&self) -> f64 {
        self.sum
    }
}

/// Resamples the polyline so that consecutive points are at most `step`
/// meters apart.
///
/// Every original vertex is retained (the geometry — and therefore the
/// length — is preserved exactly); interpolated points are inserted between
/// vertices at `step` spacing.
pub fn resample(points: &[Point], step: f64) -> Vec<Point> {
    assert!(step > 0.0, "resample step must be positive");
    if points.len() < 2 {
        return points.to_vec();
    }
    let mut out = Vec::with_capacity(points.len());
    out.push(points[0]);
    for w in points.windows(2) {
        let seg_len = w[0].distance(w[1]);
        if crate::exactly_zero(seg_len) {
            continue;
        }
        let n = (seg_len / step).ceil() as usize;
        for i in 1..n {
            out.push(w[0].lerp(w[1], i as f64 / n as f64));
        }
        out.push(w[1]);
    }
    out
}

/// Length of `truth` covered by a corridor of half-width `radius` around
/// `path` (the CMF corridor of Section V-A3).
///
/// `truth` is walked at `sample_step` resolution; a sampled slice of the
/// ground truth counts as covered when its midpoint lies within `radius` of
/// any segment of `path`.
pub fn covered_length(truth: &[Point], path: &[Point], radius: f64, sample_step: f64) -> f64 {
    if truth.len() < 2 {
        return 0.0;
    }
    if path.len() < 2 {
        return 0.0;
    }
    let samples = resample(truth, sample_step);
    let mut covered = 0.0;
    for w in samples.windows(2) {
        let mid = w[0].midpoint(w[1]);
        let seg_len = w[0].distance(w[1]);
        let near = path
            .windows(2)
            .any(|pw| distance_to_segment(mid, pw[0], pw[1]) <= radius);
        if near {
            covered += seg_len;
        }
    }
    covered
}

/// Minimum distance from a point to a polyline; `f64::INFINITY` for polylines
/// with fewer than two points.
pub fn distance_to_polyline(p: Point, points: &[Point]) -> f64 {
    points
        .windows(2)
        .map(|w| distance_to_segment(p, w[0], w[1]))
        .fold(f64::INFINITY, f64::min)
}

/// Walks `dist` meters along the polyline and returns the interpolated point.
///
/// Clamps to the endpoints when `dist` is outside `[0, length]`.
pub fn point_at_distance(points: &[Point], dist: f64) -> Option<Point> {
    if points.is_empty() {
        return None;
    }
    if points.len() == 1 || dist <= 0.0 {
        return Some(points[0]);
    }
    let mut remaining = dist;
    for w in points.windows(2) {
        let seg_len = w[0].distance(w[1]);
        if remaining <= seg_len {
            if crate::exactly_zero(seg_len) {
                return Some(w[0]);
            }
            return Some(w[0].lerp(w[1], remaining / seg_len));
        }
        remaining -= seg_len;
    }
    Some(points[points.len() - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shape() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
        ]
    }

    #[test]
    fn length_of_l_shape() {
        assert_eq!(length(&l_shape()), 20.0);
        assert_eq!(length(&[Point::ORIGIN]), 0.0);
        assert_eq!(length(&[]), 0.0);
    }

    #[test]
    fn total_turn_right_angle() {
        let t = total_turn(&l_shape());
        assert!((t - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        // Straight line has no turn.
        let straight = [
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(9.0, 0.0),
        ];
        assert_eq!(total_turn(&straight), 0.0);
    }

    #[test]
    fn total_turn_skips_duplicate_vertices() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(10.0, 0.0),
        ];
        assert_eq!(total_turn(&pts), 0.0);
    }

    #[test]
    fn turn_accumulator_matches_total_turn() {
        let cases: [&[Point]; 4] = [
            &l_shape(),
            &[
                Point::new(0.0, 0.0),
                Point::new(5.0, 0.0),
                Point::new(5.0, 0.0), // duplicate vertex
                Point::new(5.0, 7.0),
                Point::new(1.0, 7.0),
            ],
            &[Point::new(1.0, 2.0)],
            &[],
        ];
        for pts in cases {
            let mut acc = TurnAccumulator::default();
            for &p in pts {
                acc.push(p);
            }
            assert_eq!(acc.total().to_bits(), total_turn(pts).to_bits());
        }
    }

    #[test]
    fn resample_preserves_endpoints_and_length() {
        let pts = l_shape();
        let rs = resample(&pts, 3.0);
        assert_eq!(rs[0], pts[0]);
        assert_eq!(*rs.last().unwrap(), *pts.last().unwrap());
        assert!((length(&rs) - 20.0).abs() < 1e-9);
        // Spacing is near-uniform.
        for w in rs.windows(2) {
            let d = w[0].distance(w[1]);
            assert!(d <= 3.0 + 1e-9, "spacing {d} exceeds step");
        }
    }

    #[test]
    fn covered_length_full_and_none() {
        let truth = l_shape();
        let full = covered_length(&truth, &truth, 1.0, 1.0);
        assert!((full - 20.0).abs() < 1e-6);
        let far = [Point::new(1000.0, 1000.0), Point::new(1010.0, 1000.0)];
        assert_eq!(covered_length(&truth, &far, 50.0, 1.0), 0.0);
    }

    #[test]
    fn covered_length_partial() {
        let truth = vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)];
        // Path only parallels the first half of the truth.
        let path = vec![Point::new(0.0, 10.0), Point::new(50.0, 10.0)];
        // Corridor of radius 20 around the path covers the truth up to
        // x = 50 + sqrt(20^2 - 10^2) ~= 67.3.
        let c = covered_length(&truth, &path, 20.0, 1.0);
        assert!(c > 55.0 && c < 75.0, "covered = {c}");
    }

    #[test]
    fn point_at_distance_walks_correctly() {
        let pts = l_shape();
        assert_eq!(point_at_distance(&pts, 0.0), Some(Point::new(0.0, 0.0)));
        assert_eq!(point_at_distance(&pts, 5.0), Some(Point::new(5.0, 0.0)));
        assert_eq!(point_at_distance(&pts, 15.0), Some(Point::new(10.0, 5.0)));
        assert_eq!(point_at_distance(&pts, 99.0), Some(Point::new(10.0, 10.0)));
        assert_eq!(point_at_distance(&[], 1.0), None);
    }

    #[test]
    fn distance_to_polyline_min_over_segments() {
        let pts = l_shape();
        assert_eq!(distance_to_polyline(Point::new(5.0, 2.0), &pts), 2.0);
        assert_eq!(distance_to_polyline(Point::new(12.0, 5.0), &pts), 2.0);
        assert_eq!(distance_to_polyline(Point::ORIGIN, &[]), f64::INFINITY);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn polyline(max_len: usize) -> impl Strategy<Value = Vec<Point>> {
        proptest::collection::vec((-1e3..1e3f64, -1e3..1e3f64), 2..max_len)
            .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
    }

    proptest! {
        /// Resampling never changes total length (within fp noise).
        #[test]
        fn resample_preserves_length(pts in polyline(12), step in 1.0..200.0f64) {
            let rs = resample(&pts, step);
            prop_assert!((length(&rs) - length(&pts)).abs() < 1e-6 * (1.0 + length(&pts)));
        }

        /// A path always fully covers itself at any positive radius.
        #[test]
        fn path_covers_itself(pts in polyline(8), radius in 0.5..100.0f64) {
            let c = covered_length(&pts, &pts, radius, 25.0);
            let l = length(&pts);
            prop_assert!(c >= l - 1e-6, "covered {c} < length {l}");
        }

        /// Covered length never exceeds ground-truth length.
        #[test]
        fn covered_at_most_total(truth in polyline(8), path in polyline(8)) {
            let c = covered_length(&truth, &path, 50.0, 10.0);
            prop_assert!(c <= length(&truth) + 1e-6);
        }

        /// Turn total is non-negative and bounded by pi per interior vertex.
        #[test]
        fn turn_bounds(pts in polyline(10)) {
            let t = total_turn(&pts);
            prop_assert!(t >= 0.0);
            prop_assert!(t <= std::f64::consts::PI * (pts.len() as f64));
        }
    }
}
