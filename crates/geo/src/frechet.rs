//! Discrete Fréchet distance between polylines.
//!
//! A classical curve-similarity measure used throughout the map-matching
//! literature (e.g. Mosig & Clausen, cited by the paper's related work) and
//! exposed by `lhmm-eval` as a supplementary path-quality diagnostic: it
//! captures the *worst* pointwise deviation between the matched path and
//! the ground truth under monotone traversal, where the corridor-based CMF
//! captures coverage.

use crate::point::Point;

/// Discrete Fréchet distance between two non-empty polylines.
///
/// O(|a|·|b|) time and O(|b|) memory. Returns `f64::INFINITY` when either
/// polyline is empty.
pub fn discrete_frechet(a: &[Point], b: &[Point]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return f64::INFINITY;
    }
    // Rolling-row dynamic program over the coupling lattice:
    // ca[i][j] = max(d(a_i, b_j), min(ca[i-1][j], ca[i-1][j-1], ca[i][j-1])).
    let mut prev = vec![0.0f64; b.len()];
    let mut cur = vec![0.0f64; b.len()];
    for (i, &pa) in a.iter().enumerate() {
        for (j, &pb) in b.iter().enumerate() {
            let d = pa.distance(pb);
            let reach = if i == 0 && j == 0 {
                d
            } else if i == 0 {
                cur[j - 1].max(d)
            } else if j == 0 {
                prev[j].max(d)
            } else {
                prev[j].min(prev[j - 1]).min(cur[j - 1]).max(d)
            };
            cur[j] = reach;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len() - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(points: &[(f64, f64)]) -> Vec<Point> {
        points.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn identical_curves_have_zero_distance() {
        let a = line(&[(0.0, 0.0), (10.0, 0.0), (20.0, 5.0)]);
        assert_eq!(discrete_frechet(&a, &a), 0.0);
    }

    #[test]
    fn parallel_lines_distance_is_offset() {
        let a = line(&[(0.0, 0.0), (10.0, 0.0), (20.0, 0.0)]);
        let b = line(&[(0.0, 3.0), (10.0, 3.0), (20.0, 3.0)]);
        assert_eq!(discrete_frechet(&a, &b), 3.0);
    }

    #[test]
    fn is_symmetric() {
        let a = line(&[(0.0, 0.0), (5.0, 8.0), (10.0, 0.0)]);
        let b = line(&[(0.0, 1.0), (10.0, 1.0)]);
        assert_eq!(discrete_frechet(&a, &b), discrete_frechet(&b, &a));
    }

    #[test]
    fn monotonicity_beats_hausdorff_on_backtracking() {
        // The classic case: a curve that doubles back. Every point of `b`
        // is close to *some* point of `a` (small Hausdorff), but a monotone
        // traversal must pay for the detour.
        let a = line(&[(0.0, 0.0), (10.0, 0.0)]);
        let b = line(&[(0.0, 0.0), (10.0, 0.0), (0.0, 1.0), (10.0, 1.0)]);
        let d = discrete_frechet(&a, &b);
        assert!(d >= 9.0, "frechet {d} failed to punish the double-back");
    }

    #[test]
    fn empty_inputs_are_infinite() {
        let a = line(&[(0.0, 0.0)]);
        assert_eq!(discrete_frechet(&a, &[]), f64::INFINITY);
        assert_eq!(discrete_frechet(&[], &a), f64::INFINITY);
    }

    #[test]
    fn single_points() {
        let a = line(&[(0.0, 0.0)]);
        let b = line(&[(3.0, 4.0)]);
        assert_eq!(discrete_frechet(&a, &b), 5.0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn polyline(max_len: usize) -> impl Strategy<Value = Vec<Point>> {
        proptest::collection::vec((-1e3..1e3f64, -1e3..1e3f64), 1..max_len)
            .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
    }

    proptest! {
        /// Fréchet is symmetric and bounded below by endpoint distances.
        #[test]
        fn symmetry_and_endpoint_bounds(a in polyline(10), b in polyline(10)) {
            let d1 = discrete_frechet(&a, &b);
            let d2 = discrete_frechet(&b, &a);
            prop_assert!((d1 - d2).abs() < 1e-9);
            // Couplings start at the first points and end at the last.
            let start = a[0].distance(b[0]);
            let end = a[a.len() - 1].distance(b[b.len() - 1]);
            prop_assert!(d1 >= start.max(end) - 1e-9);
        }

        /// Zero distance to itself; triangle-like upper bound vs a third
        /// curve of the same length (Fréchet is a metric on curves).
        #[test]
        fn self_distance_is_zero(a in polyline(10)) {
            prop_assert_eq!(discrete_frechet(&a, &a), 0.0);
        }
    }
}
