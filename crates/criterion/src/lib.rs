//! Offline shim for the subset of the `criterion` 0.5 API used by this
//! workspace's `harness = false` bench targets.
//!
//! The build sandbox has no registry access, so the canonical crate cannot
//! be fetched. This shim measures wall-clock time with `std::time::Instant`:
//! each benchmark gets a short warmup to calibrate how many iterations fit
//! in one sample, then `sample_size` samples are timed and reported as
//! min / mean / max per iteration (plus throughput when configured).
//! There is no outlier analysis, no plotting, and no saved baselines.

#![forbid(unsafe_code)]

pub use std::hint::black_box;

use std::fmt;
use std::time::{Duration, Instant};

/// Target wall-clock duration of one measured sample.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(25);
/// Warmup duration used to calibrate iterations per sample.
const WARMUP_TIME: Duration = Duration::from_millis(300);

/// The benchmark manager handed to `criterion_group!` target functions.
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` narrows which benchmarks run; cargo's own
        // `--bench` flag and criterion CLI options are accepted and ignored.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        Criterion { filter, default_sample_size: 10 }
    }
}

impl Criterion {
    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id, self.filter.as_deref(), self.default_sample_size, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }
}

/// A named set of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples to collect per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Declares per-iteration throughput so rates are reported.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(
            &full,
            self.criterion.filter.as_deref(),
            self.sample_size.unwrap_or(self.criterion.default_sample_size),
            self.throughput,
            f,
        );
        self
    }

    /// Runs one benchmark with an input value passed to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (a no-op beyond dropping the settings).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Conversion used by `bench_function`-style methods that accept either a
/// string or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The display form of the id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

/// Work-per-iteration declaration, used to report rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Each iteration processes this many logical elements.
    Elements(u64),
    /// Each iteration processes this many bytes.
    Bytes(u64),
}

/// Times closures; handed to the benchmark function.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the calibrated number of iterations, timing the batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(
    id: &str,
    filter: Option<&str>,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    if let Some(filter) = filter {
        if !id.contains(filter) {
            return;
        }
    }

    // Warmup and calibration: run single iterations until the warmup budget
    // is spent, then size each sample to roughly TARGET_SAMPLE_TIME.
    let warmup_start = Instant::now();
    let mut warmup_iters: u64 = 0;
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    while warmup_start.elapsed() < WARMUP_TIME {
        f(&mut b);
        warmup_iters += 1;
    }
    let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters.max(1) as f64;
    let iters_per_sample = ((TARGET_SAMPLE_TIME.as_secs_f64() / per_iter.max(1e-9)) as u64).max(1);

    let mut times = Vec::with_capacity(sample_size);
    for _ in 0..sample_size.max(1) {
        b.iters = iters_per_sample;
        f(&mut b);
        times.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
    }
    times.sort_by(|a, b| a.total_cmp(b));
    let min = times[0];
    let max = *times.last().unwrap();
    let mean = times.iter().sum::<f64>() / times.len() as f64;

    print!(
        "{id:<40} time: [{} {} {}]",
        format_time(min),
        format_time(mean),
        format_time(max)
    );
    match throughput {
        Some(Throughput::Elements(n)) => {
            print!("  thrpt: [{} elem/s]", format_rate(n as f64 / mean));
        }
        Some(Throughput::Bytes(n)) => {
            print!("  thrpt: [{} B/s]", format_rate(n as f64 / mean));
        }
        None => {}
    }
    println!();
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn format_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.3} G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.3} M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.3} K", per_sec / 1e3)
    } else {
        format!("{per_sec:.2}")
    }
}

/// Declares a group of benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 4).into_benchmark_id(), "f/4");
        assert_eq!(BenchmarkId::from_parameter("serial").into_benchmark_id(), "serial");
    }

    #[test]
    fn time_formatting() {
        assert_eq!(format_time(2.5e-9), "2.50 ns");
        assert_eq!(format_time(3.0e-3), "3.00 ms");
        assert_eq!(format_rate(2_000_000.0), "2.000 M");
    }
}
