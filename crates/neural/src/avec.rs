//! 32-byte-aligned `f32` storage backing [`crate::matrix::Matrix`].
//!
//! The SIMD kernels in [`crate::kernel`] want 32-byte-aligned base
//! pointers so 256-bit aligned loads are legal whenever a row stride is a
//! multiple of the vector width. `Vec<f32>` only guarantees 4-byte
//! alignment, so matrices (and the [`crate::scratch::Scratch`] arena that
//! recycles their buffers) store their data in an [`AVec`]: a thin wrapper
//! over a `Vec` of 32-byte-aligned 8-float chunks, exposed as a plain
//! `&[f32]` slice.
//!
//! The wrapper keeps two invariants that make the slice view sound:
//!
//! 1. `len <= chunks.len() * LANES` — the logical prefix is always backed
//!    by allocated storage, and
//! 2. every allocated chunk is fully initialized (construction and growth
//!    always write whole chunks, padding lanes included).
//!
//! This is the only module besides [`crate::kernel`] that is allowed to
//! use `unsafe` (two audited slice casts below); the rest of the crate
//! stays `deny(unsafe_code)`.

/// Alignment of the backing storage, in bytes.
pub const ALIGN: usize = 32;

/// f32 lanes per aligned chunk (`ALIGN / size_of::<f32>()`).
const LANES: usize = ALIGN / std::mem::size_of::<f32>();

/// One 32-byte-aligned block of eight `f32` lanes. `repr(C)` pins the
/// layout to exactly the inner array (plus alignment), so a pointer to a
/// run of `Chunk`s is a valid pointer to a run of `f32`s.
#[repr(C, align(32))]
#[derive(Clone, Copy, Debug, Default)]
struct Chunk([f32; LANES]);

/// A growable `f32` buffer whose base pointer is always 32-byte aligned.
///
/// Supports the small surface [`crate::matrix::Matrix`] and
/// [`crate::scratch::Scratch`] need: construction, zero/value resize,
/// slice views, and capacity inspection for the arena's best-fit reuse.
#[derive(Clone, Default)]
pub struct AVec {
    chunks: Vec<Chunk>,
    len: usize,
}

fn chunks_for(len: usize) -> usize {
    len.div_ceil(LANES)
}

impl AVec {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        AVec::default()
    }

    /// A buffer of `len` zeros.
    pub fn zeroed(len: usize) -> Self {
        AVec {
            chunks: vec![Chunk::default(); chunks_for(len)],
            len,
        }
    }

    /// A buffer of `len` copies of `v`.
    pub fn filled(len: usize, v: f32) -> Self {
        AVec {
            chunks: vec![Chunk([v; LANES]); chunks_for(len)],
            len,
        }
    }

    /// Copies a slice into fresh aligned storage.
    pub fn from_slice(data: &[f32]) -> Self {
        let mut out = AVec::zeroed(data.len());
        out.as_mut_slice().copy_from_slice(data);
        out
    }

    /// Number of logical `f32` elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Allocated capacity in `f32` units (always a multiple of 8).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.chunks.capacity() * LANES
    }

    /// Drops the logical contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.chunks.clear();
        self.len = 0;
    }

    /// Resizes to `len` elements, filling every slot with `v` (the arena
    /// hands out cleared buffers, so growth and reuse both rewrite the
    /// whole prefix; chunk padding lanes are set to `v` as well, keeping
    /// the full-initialization invariant).
    pub fn resize_filled(&mut self, len: usize, v: f32) {
        self.chunks.clear();
        self.chunks.resize(chunks_for(len), Chunk([v; LANES]));
        self.len = len;
    }

    /// Sets every logical element to `v`.
    pub fn fill(&mut self, v: f32) {
        self.as_mut_slice().fill(v);
    }

    /// Read view of the logical prefix.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        // SAFETY: `chunks` is a contiguous, fully initialized run of
        // `repr(C)` 8-float blocks, so its base pointer is valid for
        // `chunks.len() * LANES >= self.len` f32 reads (invariants 1 and 2
        // in the module docs); `f32` has no invalid bit patterns and the
        // 32-byte chunk alignment trivially satisfies f32's. An empty
        // `Vec<Chunk>` hands out a dangling-but-aligned pointer, which is
        // valid for a zero-length slice.
        unsafe { std::slice::from_raw_parts(self.chunks.as_ptr().cast::<f32>(), self.len) }
    }

    /// Write view of the logical prefix.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        // SAFETY: as in `as_slice`; the `&mut self` borrow makes the view
        // unique.
        unsafe { std::slice::from_raw_parts_mut(self.chunks.as_mut_ptr().cast::<f32>(), self.len) }
    }

    /// Copies the logical contents out into a plain `Vec`.
    pub fn to_vec(&self) -> Vec<f32> {
        self.as_slice().to_vec()
    }
}

impl PartialEq for AVec {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::fmt::Debug for AVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl std::ops::Deref for AVec {
    type Target = [f32];
    #[inline]
    fn deref(&self) -> &[f32] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for AVec {
    #[inline]
    fn deref_mut(&mut self) -> &mut [f32] {
        self.as_mut_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_aligned(v: &AVec) {
        assert_eq!(
            v.as_slice().as_ptr() as usize % ALIGN,
            0,
            "AVec base pointer must be {ALIGN}-byte aligned"
        );
    }

    #[test]
    fn construction_is_aligned_and_sized() {
        for len in [0usize, 1, 7, 8, 9, 31, 32, 33, 1000] {
            let v = AVec::zeroed(len);
            assert_aligned(&v);
            assert_eq!(v.len(), len);
            assert!(v.capacity() >= len);
            assert_eq!(v.capacity() % LANES, 0);
            assert!(v.as_slice().iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn from_slice_round_trips() {
        let data: Vec<f32> = (0..13).map(|i| i as f32 * 0.5).collect();
        let v = AVec::from_slice(&data);
        assert_aligned(&v);
        assert_eq!(v.as_slice(), &data[..]);
        assert_eq!(v.to_vec(), data);
    }

    #[test]
    fn resize_filled_rewrites_and_keeps_alignment() {
        let mut v = AVec::from_slice(&[1.0, 2.0, 3.0]);
        v.resize_filled(10, 0.0);
        assert_aligned(&v);
        assert_eq!(v.len(), 10);
        assert!(v.as_slice().iter().all(|&x| x == 0.0));
        let cap = v.capacity();
        v.resize_filled(4, 7.0);
        assert_eq!(v.capacity(), cap, "shrinking keeps the allocation");
        assert_eq!(v.as_slice(), &[7.0; 4]);
    }

    #[test]
    fn equality_ignores_padding() {
        let a = AVec::from_slice(&[1.0, 2.0]);
        let mut b = AVec::zeroed(16);
        b.resize_filled(2, 0.0);
        b.as_mut_slice().copy_from_slice(&[1.0, 2.0]);
        assert_eq!(a, b);
    }
}
