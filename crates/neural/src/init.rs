//! Seeded weight initialization.

use crate::matrix::Matrix;
use rand::Rng;

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. Appropriate for tanh/sigmoid layers.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    let data = (0..rows * cols).map(|_| rng.gen_range(-a..a)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// He (Kaiming) uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / fan_in)`. Appropriate for ReLU layers.
pub fn he_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let a = (6.0 / rows as f32).sqrt();
    let data = (0..rows * cols).map(|_| rng.gen_range(-a..a)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// Zero initialization (biases).
pub fn zeros(rows: usize, cols: usize) -> Matrix {
    Matrix::zeros(rows, cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_is_bounded_and_seeded() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = xavier_uniform(64, 64, &mut rng);
        let bound = (6.0 / 128.0f32).sqrt();
        assert!(m.data().iter().all(|v| v.abs() <= bound));
        let mut rng2 = StdRng::seed_from_u64(1);
        let m2 = xavier_uniform(64, 64, &mut rng2);
        assert_eq!(m, m2);
    }

    #[test]
    fn he_bound_depends_on_fan_in() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = he_uniform(24, 8, &mut rng);
        let bound = (6.0 / 24.0f32).sqrt();
        assert!(m.data().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn init_is_not_degenerate() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = xavier_uniform(16, 16, &mut rng);
        assert!(m.frobenius_norm() > 0.0);
        // Mean is near zero for a symmetric distribution. The Xavier bound
        // for 16x16 is ~0.43, so with 256 samples the standard error of the
        // mean is ~0.016; 4 sigma gives a robust bound.
        let mean = m.sum() / 256.0;
        assert!(mean.abs() < 0.07, "mean {mean}");
    }
}
