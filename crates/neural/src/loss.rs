//! Loss functions.
//!
//! Losses consume raw logits recorded on the tape and return the scalar loss
//! together with the gradient to seed `Tape::backward` with. Computing the
//! softmax/sigmoid inside the loss keeps the backward rule exact and
//! numerically stable (the classic `p - t` form).

use crate::matrix::Matrix;

/// Softmax cross-entropy over one row of logits against a one-hot target,
/// with label smoothing `eps` (paper §IV-D uses 0.1 following Müller et al.).
///
/// Returns `(loss, grad)` where `grad` has the logits' shape.
pub fn softmax_cross_entropy(
    logits: &Matrix,
    target: usize,
    eps: f32,
) -> (f32, Matrix) {
    assert_eq!(logits.rows(), 1, "expects a single row of logits");
    let n = logits.cols();
    assert!(target < n, "target {target} out of {n} classes");
    assert!((0.0..1.0).contains(&eps), "label smoothing in [0,1)");

    // Stable log-softmax.
    let row = logits.row(0);
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut exp_sum = 0.0f32;
    for &x in row {
        exp_sum += (x - max).exp();
    }
    let log_z = max + exp_sum.ln();

    // Smoothed target distribution: (1 - eps) on the target, eps/n uniform.
    let uniform = eps / n as f32;
    let mut loss = 0.0f32;
    let mut grad = Matrix::zeros(1, n);
    for (i, &x) in row.iter().enumerate() {
        let p = (x - log_z).exp();
        let t = if i == target {
            1.0 - eps + uniform
        } else {
            uniform
        };
        loss -= t * (x - log_z);
        grad.row_mut(0)[i] = p - t;
    }
    (loss, grad)
}

/// Batched variant: one target per row of `logits`; returns the mean loss
/// and the (mean-scaled) gradient.
pub fn softmax_cross_entropy_batch(
    logits: &Matrix,
    targets: &[usize],
    eps: f32,
) -> (f32, Matrix) {
    assert_eq!(logits.rows(), targets.len(), "one target per row");
    let rows = logits.rows();
    let mut total = 0.0f32;
    let mut grad = Matrix::zeros(rows, logits.cols());
    for (r, &t) in targets.iter().enumerate() {
        let row = Matrix::row_vector(logits.row(r).to_vec());
        let (l, g) = softmax_cross_entropy(&row, t, eps);
        total += l;
        for (o, &gi) in grad.row_mut(r).iter_mut().zip(g.row(0)) {
            *o = gi / rows as f32;
        }
    }
    (total / rows as f32, grad)
}

/// Binary cross-entropy on logits (sigmoid applied internally) against
/// targets in `[0, 1]`, optionally label-smoothed. Returns the mean loss and
/// gradient.
pub fn bce_with_logits(logits: &Matrix, targets: &Matrix, eps: f32) -> (f32, Matrix) {
    assert_eq!(logits.shape(), targets.shape(), "shape mismatch");
    let n = logits.data().len() as f32;
    let mut loss = 0.0f32;
    let mut grad = Matrix::zeros(logits.rows(), logits.cols());
    for ((g, &x), &t_raw) in grad
        .data_mut()
        .iter_mut()
        .zip(logits.data())
        .zip(targets.data())
    {
        let t = t_raw * (1.0 - eps) + 0.5 * eps;
        // log(1 + e^x) computed stably.
        let log1p_exp = if x > 0.0 {
            x + (-x).exp().ln_1p()
        } else {
            x.exp().ln_1p()
        };
        loss += log1p_exp - t * x;
        let p = 1.0 / (1.0 + (-x).exp());
        *g = (p - t) / n;
    }
    (loss / n, grad)
}

/// Mean squared error; returns mean loss and gradient.
pub fn mse(pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
    assert_eq!(pred.shape(), target.shape(), "shape mismatch");
    let n = pred.data().len() as f32;
    let mut loss = 0.0f32;
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    for ((g, &p), &t) in grad
        .data_mut()
        .iter_mut()
        .zip(pred.data())
        .zip(target.data())
    {
        let d = p - t;
        loss += d * d;
        *g = 2.0 * d / n;
    }
    (loss / n, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ce_prefers_correct_class() {
        let good = Matrix::row_vector(vec![5.0, 0.0, 0.0]);
        let bad = Matrix::row_vector(vec![0.0, 5.0, 0.0]);
        let (lg, _) = softmax_cross_entropy(&good, 0, 0.0);
        let (lb, _) = softmax_cross_entropy(&bad, 0, 0.0);
        assert!(lg < lb);
    }

    #[test]
    fn ce_gradient_is_p_minus_t() {
        let logits = Matrix::row_vector(vec![0.0, 0.0]);
        let (_, g) = softmax_cross_entropy(&logits, 0, 0.0);
        // p = [0.5, 0.5], t = [1, 0] ⇒ grad = [-0.5, 0.5].
        assert!((g.data()[0] + 0.5).abs() < 1e-6);
        assert!((g.data()[1] - 0.5).abs() < 1e-6);
        // Gradient always sums to zero.
        let logits = Matrix::row_vector(vec![3.0, -1.0, 0.4, 2.2]);
        let (_, g) = softmax_cross_entropy(&logits, 2, 0.1);
        assert!(g.data().iter().sum::<f32>().abs() < 1e-6);
    }

    #[test]
    fn label_smoothing_penalizes_overconfidence() {
        // With smoothing, extreme confidence costs more than moderate
        // confidence relative to the unsmoothed loss.
        let extreme = Matrix::row_vector(vec![50.0, 0.0]);
        let moderate = Matrix::row_vector(vec![2.0, 0.0]);
        let (le_s, _) = softmax_cross_entropy(&extreme, 0, 0.1);
        let (lm_s, _) = softmax_cross_entropy(&moderate, 0, 0.1);
        // Unsmoothed: extreme is strictly better. Smoothed: extreme is worse.
        let (le_u, _) = softmax_cross_entropy(&extreme, 0, 0.0);
        let (lm_u, _) = softmax_cross_entropy(&moderate, 0, 0.0);
        assert!(le_u < lm_u);
        assert!(le_s > lm_s);
    }

    #[test]
    fn ce_is_stable_for_large_logits() {
        let logits = Matrix::row_vector(vec![1e4, -1e4, 0.0]);
        let (l, g) = softmax_cross_entropy(&logits, 0, 0.1);
        assert!(l.is_finite());
        assert!(g.is_finite());
    }

    #[test]
    fn batch_ce_averages() {
        let logits = Matrix::from_vec(2, 2, vec![2.0, 0.0, 0.0, 2.0]);
        let (l, g) = softmax_cross_entropy_batch(&logits, &[0, 1], 0.0);
        let (l0, _) = softmax_cross_entropy(&Matrix::row_vector(vec![2.0, 0.0]), 0, 0.0);
        assert!((l - l0).abs() < 1e-6);
        assert_eq!(g.shape(), (2, 2));
    }

    #[test]
    fn bce_gradcheck() {
        let logits = Matrix::row_vector(vec![0.3, -1.2, 2.0]);
        let targets = Matrix::row_vector(vec![1.0, 0.0, 1.0]);
        let (_, g) = bce_with_logits(&logits, &targets, 0.0);
        let h = 1e-3f32;
        for i in 0..3 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += h;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= h;
            let (fp, _) = bce_with_logits(&lp, &targets, 0.0);
            let (fm, _) = bce_with_logits(&lm, &targets, 0.0);
            let num = (fp - fm) / (2.0 * h);
            assert!(
                (num - g.data()[i]).abs() < 1e-3,
                "i={i} num {num} ana {}",
                g.data()[i]
            );
        }
    }

    #[test]
    fn mse_basics() {
        let p = Matrix::row_vector(vec![1.0, 2.0]);
        let t = Matrix::row_vector(vec![0.0, 2.0]);
        let (l, g) = mse(&p, &t);
        assert!((l - 0.5).abs() < 1e-6);
        assert_eq!(g.data(), &[1.0, 0.0]);
        let (zero, _) = mse(&t, &t);
        assert_eq!(zero, 0.0);
    }
}
