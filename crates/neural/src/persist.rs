//! Minimal binary persistence for matrices and parameter stores.
//!
//! Trained LHMM models take minutes to fit; production deployments match
//! millions of trajectories against frozen weights. The format is
//! deliberately simple (magic + version + shapes + little-endian `f32`s) so
//! it stays dependency-free and auditable.

use crate::matrix::Matrix;
use crate::tape::ParamStore;
use std::fmt;

const MAGIC: &[u8; 4] = b"LHMM";
const VERSION: u8 = 1;

/// Errors raised while decoding persisted weights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer does not start with the expected magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// The buffer ended before the declared content.
    Truncated,
    /// Declared shapes are inconsistent with the payload size.
    ShapeMismatch,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not an LHMM weight file"),
            DecodeError::BadVersion(v) => write!(f, "unsupported weight format version {v}"),
            DecodeError::Truncated => write!(f, "weight file is truncated"),
            DecodeError::ShapeMismatch => write!(f, "weight shapes are inconsistent"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// 64-bit FNV-1a hash of a byte buffer — the weight fingerprint recorded
/// in model-registry manifests. Stable across platforms (pure integer
/// arithmetic over the serialized little-endian bytes), so two models
/// fingerprint equal iff their persisted weights are byte-identical.
pub fn fingerprint64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serializes matrices into a byte buffer.
pub struct Encoder {
    buf: Vec<u8>,
}

impl Default for Encoder {
    fn default() -> Self {
        Self::new()
    }
}

impl Encoder {
    /// Starts a buffer with the format header.
    pub fn new() -> Self {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(VERSION);
        Encoder { buf }
    }

    /// Appends one matrix.
    pub fn matrix(&mut self, m: &Matrix) -> &mut Self {
        self.buf.extend_from_slice(&(m.rows() as u32).to_le_bytes());
        self.buf.extend_from_slice(&(m.cols() as u32).to_le_bytes());
        for &v in m.data() {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        self
    }

    /// Appends every parameter of a store, in allocation order.
    pub fn param_store(&mut self, store: &ParamStore) -> &mut Self {
        self.buf
            .extend_from_slice(&(store.len() as u32).to_le_bytes());
        for i in 0..store.len() {
            let m = store.value(crate::tape::ParamId(i));
            self.matrix(m);
        }
        self
    }

    /// Finalizes the buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Deserializes matrices from a byte buffer.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Validates the header and positions the cursor after it.
    pub fn new(buf: &'a [u8]) -> Result<Self, DecodeError> {
        if buf.len() < 5 {
            return Err(DecodeError::Truncated);
        }
        if &buf[..4] != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        if buf[4] != VERSION {
            return Err(DecodeError::BadVersion(buf[4]));
        }
        Ok(Decoder { buf, pos: 5 })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads one matrix.
    pub fn matrix(&mut self) -> Result<Matrix, DecodeError> {
        let rows = self.u32()? as usize;
        let cols = self.u32()? as usize;
        let n = rows
            .checked_mul(cols)
            .ok_or(DecodeError::ShapeMismatch)?;
        let bytes = self.take(n * 4)?;
        let data: Vec<f32> = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        Ok(Matrix::from_vec(rows, cols, data))
    }

    /// Reads parameters *into* an existing store; shapes must match the
    /// store's current allocation exactly (structure is rebuilt from config
    /// before loading weights).
    pub fn param_store_into(&mut self, store: &mut ParamStore) -> Result<(), DecodeError> {
        let n = self.u32()? as usize;
        if n != store.len() {
            return Err(DecodeError::ShapeMismatch);
        }
        for i in 0..n {
            let m = self.matrix()?;
            let id = crate::tape::ParamId(i);
            if store.value(id).shape() != m.shape() {
                return Err(DecodeError::ShapeMismatch);
            }
            *store.value_mut(id) = m;
        }
        Ok(())
    }

    /// True when the whole buffer was consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matrix_roundtrip() {
        let m = Matrix::from_vec(2, 3, vec![1.5, -2.0, 0.0, 3.25, f32::MIN_POSITIVE, 9.0]);
        let mut enc = Encoder::new();
        enc.matrix(&m);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes).unwrap();
        assert_eq!(dec.matrix().unwrap(), m);
        assert!(dec.is_exhausted());
    }

    #[test]
    fn param_store_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        store.alloc(crate::init::xavier_uniform(4, 5, &mut rng));
        store.alloc(crate::init::xavier_uniform(1, 7, &mut rng));
        let mut enc = Encoder::new();
        enc.param_store(&store);
        let bytes = enc.finish();

        // A structurally identical fresh store accepts the weights.
        let mut rng2 = StdRng::seed_from_u64(99);
        let mut fresh = ParamStore::new();
        let a = fresh.alloc(crate::init::xavier_uniform(4, 5, &mut rng2));
        let b = fresh.alloc(crate::init::xavier_uniform(1, 7, &mut rng2));
        let mut dec = Decoder::new(&bytes).unwrap();
        dec.param_store_into(&mut fresh).unwrap();
        assert_eq!(fresh.value(a), store.value(crate::tape::ParamId(0)));
        assert_eq!(fresh.value(b), store.value(crate::tape::ParamId(1)));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Decoder::new(b"nope").unwrap_err(), DecodeError::Truncated);
        assert_eq!(
            Decoder::new(b"XXXX\x01rest").unwrap_err(),
            DecodeError::BadMagic
        );
        assert_eq!(
            Decoder::new(b"LHMM\x09").unwrap_err(),
            DecodeError::BadVersion(9)
        );
    }

    #[test]
    fn decode_rejects_shape_mismatch() {
        let mut store = ParamStore::new();
        store.alloc(Matrix::zeros(2, 2));
        let mut enc = Encoder::new();
        enc.param_store(&store);
        let bytes = enc.finish();
        // A store with a different shape must refuse the weights.
        let mut other = ParamStore::new();
        other.alloc(Matrix::zeros(3, 3));
        let mut dec = Decoder::new(&bytes).unwrap();
        assert_eq!(
            dec.param_store_into(&mut other).unwrap_err(),
            DecodeError::ShapeMismatch
        );
    }

    #[test]
    fn truncation_is_detected() {
        let mut enc = Encoder::new();
        enc.matrix(&Matrix::zeros(8, 8));
        let mut bytes = enc.finish();
        bytes.truncate(bytes.len() - 3);
        let mut dec = Decoder::new(&bytes).unwrap();
        assert_eq!(dec.matrix().unwrap_err(), DecodeError::Truncated);
    }
}
