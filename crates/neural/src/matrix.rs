//! Row-major `f32` dense matrices.
//!
//! Backing storage is a 32-byte-aligned [`AVec`] (not a plain
//! `Vec<f32>`), so the SIMD kernels in [`crate::kernel`] may use aligned
//! vector loads whenever a row stride is a whole number of lanes.

use crate::avec::AVec;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f32` values.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: AVec,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: AVec::zeroed(rows * cols),
        }
    }

    /// Matrix filled with `v`.
    pub fn full(rows: usize, cols: usize, v: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: AVec::filled(rows * cols, v),
        }
    }

    /// Builds from a row-major data vector. Panics when sizes disagree.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Matrix {
            rows,
            cols,
            data: AVec::from_slice(&data),
        }
    }

    /// Builds from an already-aligned buffer (the
    /// [`crate::scratch::Scratch`] arena hands these out). Panics when
    /// sizes disagree.
    pub(crate) fn from_avec(rows: usize, cols: usize, data: AVec) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Matrix { rows, cols, data }
    }

    /// A 1×n row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        let cols = data.len();
        Matrix {
            rows: 1,
            cols,
            data: AVec::from_slice(&data),
        }
    }

    /// An n×1 column vector.
    pub fn col_vector(data: Vec<f32>) -> Self {
        let rows = data.len();
        Matrix {
            rows,
            cols: 1,
            data: AVec::from_slice(&data),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Flat view of the data (row-major).
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat view.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self × rhs`. Panics on shape mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            rhs.shape()
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// `out = self × rhs`, writing into a caller-owned matrix (no
    /// allocation). `out` must already have shape `(self.rows, rhs.cols)`.
    ///
    /// Every output element is accumulated over `k` in ascending order
    /// starting from `0.0` — the same per-element summation sequence as
    /// [`Matrix::matmul`] and [`Matrix::matmul_transposed_into`], so all
    /// three produce bit-identical results.
    ///
    /// Dispatches to the SIMD kernel selected by
    /// [`crate::kernel::active`]; every kernel path reproduces the
    /// per-element op sequence of the crate-private
    /// `matmul_into_scalar` oracle bit for bit.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        crate::kernel::matmul_into_with(crate::kernel::active(), self, rhs, out);
    }

    /// The PR 2 scalar reference kernel for [`Matrix::matmul_into`]:
    /// blocked i-k-j loops, 4-step k-fusion, one rounded multiply and one
    /// rounded add per `(k, j)` in ascending `k` order. The SIMD paths in
    /// [`crate::kernel`] are pinned bitwise against this.
    pub(crate) fn matmul_into_scalar(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            rhs.shape()
        );
        assert_eq!(
            out.shape(),
            (self.rows, rhs.cols),
            "matmul_into output shape mismatch"
        );
        out.data.fill(0.0);
        // i-k-j loop order: the inner loop walks both `rhs` and `out` rows
        // contiguously, which is the cache-friendly order for row-major
        // data. Four k-steps are fused per pass — each output element still
        // receives its four contributions as *separate, ascending-k adds*,
        // so the blocking only cuts `out` traffic and never changes bits
        // (pinned against the dot-form kernel by the prop tests below).
        let n = rhs.cols;
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            let mut k = 0;
            while k + 4 <= self.cols {
                let (a0, a1, a2, a3) = (a_row[k], a_row[k + 1], a_row[k + 2], a_row[k + 3]);
                let r0 = &rhs.data[k * n..(k + 1) * n];
                let r1 = &rhs.data[(k + 1) * n..(k + 2) * n];
                let r2 = &rhs.data[(k + 2) * n..(k + 3) * n];
                let r3 = &rhs.data[(k + 3) * n..(k + 4) * n];
                for j in 0..n {
                    out_row[j] =
                        (((out_row[j] + a0 * r0[j]) + a1 * r1[j]) + a2 * r2[j]) + a3 * r3[j];
                }
                k += 4;
            }
            while k < self.cols {
                let a = a_row[k];
                let rhs_row = &rhs.data[k * n..(k + 1) * n];
                for (o, &r) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * r;
                }
                k += 1;
            }
        }
    }

    /// `out = self × btᵀ` where `bt` is the transposed right-hand side
    /// (`bt[j]` holds column `j` of the logical RHS as a contiguous row).
    ///
    /// Shapes: `self` is `m×k`, `bt` is `n×k`, `out` must be `m×n`. Both
    /// inputs are walked along contiguous rows, and several output columns
    /// are produced per pass over the `self` row (a small blocked kernel),
    /// with one independent accumulator per output element so the result is
    /// bit-identical to [`Matrix::matmul`] against the untransposed RHS.
    pub fn matmul_transposed_into(&self, bt: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, bt.cols,
            "matmul_transposed shape mismatch: {:?} x {:?}ᵀ",
            self.shape(),
            bt.shape()
        );
        assert_eq!(
            out.shape(),
            (self.rows, bt.rows),
            "matmul_transposed_into output shape mismatch"
        );
        let n = bt.rows;
        let kk = self.cols;
        for i in 0..self.rows {
            let a_row = &self.data[i * kk..(i + 1) * kk];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            let mut j = 0;
            // Blocked: four output columns per pass over `a_row`.
            while j + 4 <= n {
                let b0 = &bt.data[j * kk..(j + 1) * kk];
                let b1 = &bt.data[(j + 1) * kk..(j + 2) * kk];
                let b2 = &bt.data[(j + 2) * kk..(j + 3) * kk];
                let b3 = &bt.data[(j + 3) * kk..(j + 4) * kk];
                let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                for k in 0..kk {
                    let a = a_row[k];
                    s0 += a * b0[k];
                    s1 += a * b1[k];
                    s2 += a * b2[k];
                    s3 += a * b3[k];
                }
                out_row[j] = s0;
                out_row[j + 1] = s1;
                out_row[j + 2] = s2;
                out_row[j + 3] = s3;
                j += 4;
            }
            while j < n {
                let b_row = &bt.data[j * kk..(j + 1) * kk];
                let mut s = 0.0f32;
                for k in 0..kk {
                    s += a_row[k] * b_row[k];
                }
                out_row[j] = s;
                j += 1;
            }
        }
    }

    /// Copies the contents out into a plain row-major `Vec` (the backing
    /// store itself is an aligned [`AVec`]; the
    /// [`crate::scratch::Scratch`] arena recycles it via the
    /// crate-private `into_avec` without copying).
    pub fn into_raw(self) -> Vec<f32> {
        self.data.to_vec()
    }

    /// Consumes the matrix, handing its aligned backing buffer to the
    /// caller (used by the [`crate::scratch::Scratch`] arena to recycle
    /// storage).
    pub(crate) fn into_avec(self) -> AVec {
        self.data
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        self.transpose_into(&mut out);
        out
    }

    /// Writes the transpose into a caller-owned matrix (no allocation).
    /// `out` must already have shape `(self.cols, self.rows)`.
    pub fn transpose_into(&self, out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (self.cols, self.rows),
            "transpose_into shape mismatch"
        );
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
    }

    /// Elementwise sum; panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols);
        for ((o, a), b) in out.data.iter_mut().zip(self.data.iter()).zip(rhs.data.iter()) {
            *o = a + b;
        }
        out
    }

    /// In-place `self += rhs`.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }

    /// Elementwise product (Hadamard).
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "hadamard shape mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols);
        for ((o, a), b) in out.data.iter_mut().zip(self.data.iter()).zip(rhs.data.iter()) {
            *o = a * b;
        }
        out
    }

    /// Scaled copy `self * s`.
    pub fn scale(&self, s: f32) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for (o, a) in out.data.iter_mut().zip(self.data.iter()) {
            *o = a * s;
        }
        out
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for (o, &a) in out.data.iter_mut().zip(self.data.iter()) {
            *o = f(a);
        }
        out
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|a| a * a).sum::<f32>().sqrt()
    }

    /// True when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|a| a.is_finite())
    }

    /// Stacks rows picked (with repetition allowed) from `self`.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &idx) in indices.iter().enumerate() {
            assert!(idx < self.rows, "gather index {idx} out of {} rows", self.rows);
            out.row_mut(i).copy_from_slice(self.row(idx));
        }
        out
    }

    /// Horizontal concatenation `[self | rhs]`; row counts must match.
    pub fn concat_cols(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "concat_cols row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + rhs.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(rhs.row(r));
        }
        out
    }

    /// Vertical concatenation; column counts must match.
    pub fn concat_rows(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "concat_rows col mismatch");
        let mut data = Vec::with_capacity(self.data.len() + rhs.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&rhs.data);
        Matrix::from_vec(self.rows + rhs.rows, self.cols, data)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(6) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:8.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > 6 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 2, vec![3.0, -1.0, 2.0, 5.0]);
        let i = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(0, 1)], 4.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(a.hadamard(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
        assert_eq!(a.map(|x| x * x).data(), &[1.0, 4.0, 9.0]);
        assert_eq!(a.sum(), 6.0);
    }

    #[test]
    fn gather_and_concat() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g.data(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 1, vec![9.0, 8.0, 7.0]);
        let cc = a.concat_cols(&b);
        assert_eq!(cc.shape(), (3, 3));
        assert_eq!(cc.row(1), &[3.0, 4.0, 8.0]);
        let cr = a.concat_rows(&a);
        assert_eq!(cr.shape(), (6, 2));
    }

    #[test]
    fn matmul_into_overwrites_dirty_output() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let mut out = Matrix::full(2, 2, f32::NAN); // stale scratch contents
        a.matmul_into(&b, &mut out);
        assert_eq!(out.data(), &[58.0, 64.0, 139.0, 154.0]);
        let bt = b.transpose();
        let mut out2 = Matrix::full(2, 2, f32::NAN);
        a.matmul_transposed_into(&bt, &mut out2);
        assert_eq!(out2.data(), out.data());
    }

    #[test]
    fn into_raw_returns_backing_buffer() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.into_raw(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn matrix_storage_is_aligned() {
        for (r, c) in [(1, 1), (3, 5), (7, 9), (16, 16)] {
            let m = Matrix::zeros(r, c);
            assert_eq!(
                m.data().as_ptr() as usize % crate::avec::ALIGN,
                0,
                "matrix backing store must be aligned for SIMD loads"
            );
        }
        let v = Matrix::row_vector(vec![1.0, 2.0, 3.0]);
        assert_eq!(v.data().as_ptr() as usize % crate::avec::ALIGN, 0);
    }

    #[test]
    fn transpose_into_matches_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut out = Matrix::full(3, 2, f32::NAN);
        a.transpose_into(&mut out);
        assert_eq!(out, a.transpose());
    }

    #[test]
    fn norms_and_finiteness() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert_eq!(a.frobenius_norm(), 5.0);
        assert!(a.is_finite());
        let bad = Matrix::from_vec(1, 1, vec![f32::NAN]);
        assert!(!bad.is_finite());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn mat(r: usize, c: usize) -> impl Strategy<Value = Matrix> {
        proptest::collection::vec(-10.0..10.0f32, r * c)
            .prop_map(move |v| Matrix::from_vec(r, c, v))
    }

    /// The textbook reference the production kernels must match bit for
    /// bit: one scalar accumulator per output element, adds in ascending
    /// `k` order, no blocking.
    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0f32;
                for k in 0..a.cols() {
                    s += a[(i, k)] * b[(k, j)];
                }
                out[(i, j)] = s;
            }
        }
        out
    }

    proptest! {
        /// (A·B)ᵀ = Bᵀ·Aᵀ.
        #[test]
        fn transpose_of_product(a in mat(3, 4), b in mat(4, 2)) {
            let left = a.matmul(&b).transpose();
            let right = b.transpose().matmul(&a.transpose());
            for (x, y) in left.data().iter().zip(right.data()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }

        /// Matrix product distributes over addition: A·(B + C) = A·B + A·C.
        #[test]
        fn matmul_distributes(a in mat(2, 3), b in mat(3, 3), c in mat(3, 3)) {
            let left = a.matmul(&b.add(&c));
            let right = a.matmul(&b).add(&a.matmul(&c));
            for (x, y) in left.data().iter().zip(right.data()) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }

        /// Scaling commutes with matmul: (s·A)·B = s·(A·B).
        #[test]
        fn scale_commutes(a in mat(2, 3), b in mat(3, 2), s in -4.0..4.0f32) {
            let left = a.scale(s).matmul(&b);
            let right = a.matmul(&b).scale(s);
            for (x, y) in left.data().iter().zip(right.data()) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }

        /// `matmul_into` (the blocked i-k-j kernel) is bit-identical
        /// (0 ulps) to an independent scalar triple loop — element by
        /// element, one add per ascending `k`. The odd `k = 7` exercises
        /// both the 4-step blocked body and the tail.
        #[test]
        fn matmul_into_bitwise_matches_naive(a in mat(5, 7), b in mat(7, 6)) {
            let naive = naive_matmul(&a, &b);
            let mut out = Matrix::zeros(5, 6);
            a.matmul_into(&b, &mut out);
            for (x, y) in naive.data().iter().zip(out.data()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }

        /// The blocked transposed-RHS kernel is bit-identical (0 ulps) to
        /// the scalar triple loop, including the non-blocked tail columns.
        #[test]
        fn matmul_transposed_bitwise_matches_naive(a in mat(4, 9), b in mat(9, 7)) {
            let naive = naive_matmul(&a, &b);
            let bt = b.transpose();
            let mut out = Matrix::zeros(4, 7);
            a.matmul_transposed_into(&bt, &mut out);
            for (x, y) in naive.data().iter().zip(out.data()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }

        /// Bit-equality must survive exact zeros in the LHS (ReLU outputs):
        /// the reference accumulates them like any other value.
        #[test]
        fn kernels_bitwise_match_with_zeroed_lhs(a in mat(3, 8), b in mat(8, 5)) {
            let a = a.map(|v| if v < 0.0 { 0.0 } else { v }); // relu-like sparsity
            let naive = a.matmul(&b);
            let bt = b.transpose();
            let mut out = Matrix::zeros(3, 5);
            a.matmul_transposed_into(&bt, &mut out);
            for (x, y) in naive.data().iter().zip(out.data()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }

        /// gather_rows then concat_rows reassembles a split matrix.
        #[test]
        fn gather_reassembles(a in mat(4, 3)) {
            let top = a.gather_rows(&[0, 1]);
            let bottom = a.gather_rows(&[2, 3]);
            prop_assert_eq!(top.concat_rows(&bottom), a);
        }
    }
}
