//! Row-major `f32` dense matrices.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f32` values.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with `v`.
    pub fn full(rows: usize, cols: usize, v: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// Builds from a row-major data vector. Panics when sizes disagree.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Matrix { rows, cols, data }
    }

    /// A 1×n row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        let cols = data.len();
        Matrix {
            rows: 1,
            cols,
            data,
        }
    }

    /// An n×1 column vector.
    pub fn col_vector(data: Vec<f32>) -> Self {
        let rows = data.len();
        Matrix {
            rows,
            cols: 1,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Flat view of the data (row-major).
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat view.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self × rhs`. Panics on shape mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            rhs.shape()
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order: the inner loop walks both `rhs` and `out` rows
        // contiguously, which is the cache-friendly order for row-major data.
        for i in 0..self.rows {
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &r) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * r;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise sum; panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// In-place `self += rhs`.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Elementwise product (Hadamard).
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "hadamard shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a * b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Scaled copy `self * s`.
    pub fn scale(&self, s: f32) -> Matrix {
        let data = self.data.iter().map(|a| a * s).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let data = self.data.iter().map(|&a| f(a)).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|a| a * a).sum::<f32>().sqrt()
    }

    /// True when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|a| a.is_finite())
    }

    /// Stacks rows picked (with repetition allowed) from `self`.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &idx) in indices.iter().enumerate() {
            assert!(idx < self.rows, "gather index {idx} out of {} rows", self.rows);
            out.row_mut(i).copy_from_slice(self.row(idx));
        }
        out
    }

    /// Horizontal concatenation `[self | rhs]`; row counts must match.
    pub fn concat_cols(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "concat_cols row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + rhs.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(rhs.row(r));
        }
        out
    }

    /// Vertical concatenation; column counts must match.
    pub fn concat_rows(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "concat_rows col mismatch");
        let mut data = Vec::with_capacity(self.data.len() + rhs.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&rhs.data);
        Matrix::from_vec(self.rows + rhs.rows, self.cols, data)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(6) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:8.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > 6 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 2, vec![3.0, -1.0, 2.0, 5.0]);
        let i = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(0, 1)], 4.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(a.hadamard(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
        assert_eq!(a.map(|x| x * x).data(), &[1.0, 4.0, 9.0]);
        assert_eq!(a.sum(), 6.0);
    }

    #[test]
    fn gather_and_concat() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g.data(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 1, vec![9.0, 8.0, 7.0]);
        let cc = a.concat_cols(&b);
        assert_eq!(cc.shape(), (3, 3));
        assert_eq!(cc.row(1), &[3.0, 4.0, 8.0]);
        let cr = a.concat_rows(&a);
        assert_eq!(cr.shape(), (6, 2));
    }

    #[test]
    fn norms_and_finiteness() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert_eq!(a.frobenius_norm(), 5.0);
        assert!(a.is_finite());
        let bad = Matrix::from_vec(1, 1, vec![f32::NAN]);
        assert!(!bad.is_finite());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn mat(r: usize, c: usize) -> impl Strategy<Value = Matrix> {
        proptest::collection::vec(-10.0..10.0f32, r * c)
            .prop_map(move |v| Matrix::from_vec(r, c, v))
    }

    proptest! {
        /// (A·B)ᵀ = Bᵀ·Aᵀ.
        #[test]
        fn transpose_of_product(a in mat(3, 4), b in mat(4, 2)) {
            let left = a.matmul(&b).transpose();
            let right = b.transpose().matmul(&a.transpose());
            for (x, y) in left.data().iter().zip(right.data()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }

        /// Matrix product distributes over addition: A·(B + C) = A·B + A·C.
        #[test]
        fn matmul_distributes(a in mat(2, 3), b in mat(3, 3), c in mat(3, 3)) {
            let left = a.matmul(&b.add(&c));
            let right = a.matmul(&b).add(&a.matmul(&c));
            for (x, y) in left.data().iter().zip(right.data()) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }

        /// Scaling commutes with matmul: (s·A)·B = s·(A·B).
        #[test]
        fn scale_commutes(a in mat(2, 3), b in mat(3, 2), s in -4.0..4.0f32) {
            let left = a.scale(s).matmul(&b);
            let right = a.matmul(&b).scale(s);
            for (x, y) in left.data().iter().zip(right.data()) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }

        /// gather_rows then concat_rows reassembles a split matrix.
        #[test]
        fn gather_reassembles(a in mat(4, 3)) {
            let top = a.gather_rows(&[0, 1]);
            let bottom = a.gather_rows(&[2, 3]);
            prop_assert_eq!(top.concat_rows(&bottom), a);
        }
    }
}
