//! Runtime-dispatched SIMD inference kernels, bitwise-pinned to the
//! scalar reference.
//!
//! The three hot loops of LHMM inference — blocked
//! [`Matrix::matmul_into`], the fused bias pass of `Linear::infer_into`,
//! and the additive-attention score/context loops — all share one shape:
//! independent output elements (the `j`/column dimension), each
//! accumulated over `k` in ascending order. That independence is what
//! makes *bitwise-exact* vectorization possible: a SIMD lane performs the
//! same IEEE-754 multiply and add, in the same per-element order, as the
//! scalar loop — only across several output columns at once. Nothing is
//! reassociated, no FMA contraction is used (fused multiply-add rounds
//! once where the scalar reference rounds twice), and `tanh`/`exp` stay
//! per-element libm calls. Every kernel path therefore produces
//! byte-identical `Matrix` contents; the PR 2 scalar path remains the
//! oracle (see `tests/scoring_equivalence.rs` and
//! `crates/neural/tests/kernel_dispatch.rs`).
//!
//! # Dispatch
//!
//! [`active`] picks the widest supported kernel once per process:
//! AVX2(+FMA present, though unused — see above) or the SSE2 baseline on
//! x86_64, NEON on aarch64, portable scalar everywhere else. The
//! `LHMM_KERNEL=scalar|sse2|avx2|neon` environment variable, read once at
//! startup, forces a specific path for CI; an unsupported or unknown
//! value falls back to detection (matching never fails over a stale CI
//! matrix entry — all paths are bit-identical anyway). Tests and benches
//! that sweep kernels in-process use [`force_scope`], which serializes
//! through a global lock.
//!
//! This module (together with [`crate::avec`]) is the audited home of the
//! crate's `unsafe` and of the `is_x86_feature_detected!`/global
//! `OnceLock` dispatch state; `lhmm-lint` allows those constructs nowhere
//! else (see DESIGN §12).

use crate::matrix::Matrix;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// One inference-kernel implementation tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Kernel {
    /// Portable scalar loops — the PR 2 reference and exactness oracle.
    Scalar = 0,
    /// 128-bit SSE2, the x86_64 baseline (4 f32 lanes).
    Sse2 = 1,
    /// 256-bit AVX2 (8 f32 lanes); selected only when FMA is also present
    /// (the tier the detection contract names), though the kernels use
    /// separate mul+add to preserve scalar rounding.
    Avx2 = 2,
    /// 128-bit NEON, the aarch64 baseline (4 f32 lanes).
    Neon = 3,
}

impl Kernel {
    /// Stable lowercase name (`LHMM_KERNEL` value, telemetry, bench ids).
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Sse2 => "sse2",
            Kernel::Avx2 => "avx2",
            Kernel::Neon => "neon",
        }
    }

    /// Parses an `LHMM_KERNEL` value (case-insensitive).
    pub fn parse(s: &str) -> Option<Kernel> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Some(Kernel::Scalar),
            "sse2" => Some(Kernel::Sse2),
            "avx2" => Some(Kernel::Avx2),
            "neon" => Some(Kernel::Neon),
            _ => None,
        }
    }

    /// True when this kernel can run on the current machine (compile
    /// target and, for AVX2, runtime CPU features).
    pub fn is_supported(self) -> bool {
        match self {
            Kernel::Scalar => true,
            Kernel::Sse2 => cfg!(target_arch = "x86_64"),
            Kernel::Avx2 => avx2_supported(),
            Kernel::Neon => cfg!(target_arch = "aarch64"),
        }
    }

    fn from_u8(v: u8) -> Kernel {
        match v {
            1 => Kernel::Sse2,
            2 => Kernel::Avx2,
            3 => Kernel::Neon,
            _ => Kernel::Scalar,
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn avx2_supported() -> bool {
    is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
}

#[cfg(not(target_arch = "x86_64"))]
fn avx2_supported() -> bool {
    false
}

/// Every kernel the current machine can run, widest last, always
/// starting with [`Kernel::Scalar`]. CI iterates this list to force each
/// path (`lhmm-lint --kernels`).
pub fn supported_kernels() -> Vec<Kernel> {
    [Kernel::Scalar, Kernel::Sse2, Kernel::Neon, Kernel::Avx2]
        .into_iter()
        .filter(|k| k.is_supported())
        .collect()
}

/// In-process override installed by [`force_scope`]; `0` = none, else
/// `kernel as u8 + 1`. All paths are bit-identical, so a mid-process
/// switch can never change results — only which instructions compute
/// them.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// Resolved startup choice: `LHMM_KERNEL` (if valid and supported) else
/// hardware detection. Read once; see the module docs.
static RESOLVED: OnceLock<Kernel> = OnceLock::new();

/// Serializes [`force_scope`] users so concurrent tests cannot observe
/// each other's override.
static FORCE_LOCK: Mutex<()> = Mutex::new(());

fn detect() -> Kernel {
    if Kernel::Avx2.is_supported() {
        Kernel::Avx2
    } else if Kernel::Sse2.is_supported() {
        Kernel::Sse2
    } else if Kernel::Neon.is_supported() {
        Kernel::Neon
    } else {
        Kernel::Scalar
    }
}

fn resolve() -> Kernel {
    if let Ok(v) = std::env::var("LHMM_KERNEL") {
        if let Some(k) = Kernel::parse(&v) {
            if k.is_supported() {
                return k;
            }
        }
    }
    detect()
}

/// The kernel every dispatched entry point currently uses.
#[inline]
pub fn active() -> Kernel {
    match FORCED.load(Ordering::Relaxed) {
        0 => *RESOLVED.get_or_init(resolve),
        f => Kernel::from_u8(f - 1),
    }
}

/// Scoped in-process kernel override for tests and benches. Returns
/// `None` when `k` is not supported on this machine. The override is
/// global; holders of the returned guard are serialized through a lock,
/// and the override is cleared when the guard drops.
pub fn force_scope(k: Kernel) -> Option<ForceGuard> {
    if !k.is_supported() {
        return None;
    }
    // A poisoned lock only means a previous test panicked while forcing;
    // the stored override is overwritten below either way.
    let lock = FORCE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    FORCED.store(k as u8 + 1, Ordering::Relaxed);
    Some(ForceGuard { _lock: lock })
}

/// Guard returned by [`force_scope`]; restores auto-dispatch on drop.
pub struct ForceGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for ForceGuard {
    fn drop(&mut self) {
        FORCED.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Dispatched operations.
//
// Every operation reduces to two raw per-ISA primitives over row-major
// slices:
//
//   accumulate_rows(coeffs, rows, n, out):
//       for k ascending: out[j] += coeffs[k] * rows[k*n + j]
//       (4-step k fusion, j vectorized; one rounded mul and one rounded
//       add per (k, j), ascending k per output element — exactly the
//       scalar blocked kernel's per-element op sequence)
//
//   add_assign(out, rhs): out[j] += rhs[j]   (j vectorized)
//
// A kernel that is requested but unsupported on this target silently
// degrades to scalar: the result is bit-identical by contract, so this
// is a performance fallback, never a correctness event.
// ---------------------------------------------------------------------------

/// `out = a × rhs` using kernel `k`; shape contract identical to
/// [`Matrix::matmul_into`]. Bit-identical across every kernel.
pub fn matmul_into_with(k: Kernel, a: &Matrix, rhs: &Matrix, out: &mut Matrix) {
    assert_eq!(
        a.cols(),
        rhs.rows(),
        "matmul shape mismatch: {:?} x {:?}",
        a.shape(),
        rhs.shape()
    );
    assert_eq!(
        out.shape(),
        (a.rows(), rhs.cols()),
        "matmul_into output shape mismatch"
    );
    if k == Kernel::Scalar || !k.is_supported() {
        a.matmul_into_scalar(rhs, out);
        return;
    }
    let (m, kk, n) = (a.rows(), a.cols(), rhs.cols());
    if n == 1 {
        // Single output column (the MLP head layers): no lanes to
        // vectorize across, but the per-element add chains of different
        // output *rows* are independent — interleaving four of them hides
        // the serial add latency the row-at-a-time reference pays.
        matmul_into_n1(a, rhs, out);
        return;
    }
    out.data_mut().fill(0.0);
    for i in 0..m {
        let a_row = &a.data()[i * kk..(i + 1) * kk];
        // Disjoint row borrows via split-at would obscure the kernel; a
        // fresh subslice per row keeps the borrow local instead.
        let out_start = i * n;
        accumulate_rows_with(k, a_row, rhs.data(), n, {
            // Re-borrow the row mutably for this iteration only.
            &mut out.data_mut()[out_start..out_start + n]
        });
    }
}

/// Row-broadcast bias add `out[r][j] += bias[j]` using kernel `k`.
/// The activation stays with the caller (per-element, libm) so every
/// kernel path shares one rounding story.
pub fn add_bias_rows_with(k: Kernel, out: &mut Matrix, bias: &[f32]) {
    let n = out.cols();
    debug_assert_eq!(bias.len(), n, "bias width");
    for r in 0..out.rows() {
        add_assign_with(k, out.row_mut(r), bias);
    }
}

/// Additive-attention score column from memoized tanh halves, restructured
/// around the shared query prefix:
///
/// ```text
/// score_j = Σ_{k<p} tanh_q[k]·w[k]  +  Σ_{k<p} tanh_keys_t[k][j]·w[p+k]
/// ```
///
/// The first sum (`qdot`) is the per-element accumulation prefix every
/// score shares — the scalar reference computes the identical first `p`
/// ascending adds per row of the assembled `[tanh_q ⊕ tanh_k_j]` matrix —
/// so seeding the scores with `qdot` and continuing with the key terms in
/// ascending `k` reproduces the scalar op sequence exactly (and halves
/// the multiply-adds). `tanh_keys_t` is the `p×n` *transposed* key half,
/// making the per-`k` pass contiguous in `j` and therefore vectorizable.
pub fn attend_scores_with(
    k: Kernel,
    tanh_q: &[f32],
    w_col: &[f32],
    tanh_keys_t: &Matrix,
    scores: &mut [f32],
) {
    let p = tanh_q.len();
    let n = tanh_keys_t.cols();
    debug_assert_eq!(tanh_keys_t.rows(), p, "transposed key half height");
    debug_assert_eq!(w_col.len(), 2 * p, "score weight length");
    debug_assert_eq!(scores.len(), n, "score column length");
    let mut qdot = 0.0f32;
    for (q, w) in tanh_q.iter().zip(w_col) {
        qdot += q * w;
    }
    scores.fill(qdot);
    accumulate_rows_with(k, &w_col[p..], tanh_keys_t.data(), n, scores);
}

/// Weighted sum of value rows `out[j] = Σ_r weights[r]·values[r][j]`
/// (ascending `r` per element — the softmax-context accumulation order).
pub fn weighted_sum_rows_with(k: Kernel, weights: &[f32], values: &Matrix, out: &mut [f32]) {
    debug_assert_eq!(weights.len(), values.rows(), "one weight per value row");
    debug_assert_eq!(out.len(), values.cols(), "context width");
    out.fill(0.0);
    accumulate_rows_with(k, weights, values.data(), values.cols(), out);
}

/// `out[j] += Σ_k coeffs[k]·rows[k*n + j]`, ascending `k` per element.
fn accumulate_rows_with(k: Kernel, coeffs: &[f32], rows: &[f32], n: usize, out: &mut [f32]) {
    debug_assert!(rows.len() >= coeffs.len() * n);
    debug_assert_eq!(out.len(), n);
    match k {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 presence was verified by `is_supported` (dispatch
        // only reaches this arm through `active()`/`force_scope`, both of
        // which refuse unsupported kernels) or re-checked here.
        Kernel::Avx2 if avx2_supported() => unsafe {
            x86::accumulate_rows_avx2(coeffs, rows, n, out)
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86_64 baseline ISA.
        Kernel::Sse2 => unsafe { x86::accumulate_rows_sse2(coeffs, rows, n, out) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is part of the aarch64 baseline ISA.
        Kernel::Neon => unsafe { arm::accumulate_rows_neon(coeffs, rows, n, out) },
        _ => accumulate_rows_scalar(coeffs, rows, n, out),
    }
}

/// `out[j] += rhs[j]`.
fn add_assign_with(k: Kernel, out: &mut [f32], rhs: &[f32]) {
    debug_assert_eq!(out.len(), rhs.len());
    match k {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: see `accumulate_rows_with`.
        Kernel::Avx2 if avx2_supported() => unsafe { x86::add_assign_avx2(out, rhs) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86_64 baseline ISA.
        Kernel::Sse2 => unsafe { x86::add_assign_sse2(out, rhs) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is part of the aarch64 baseline ISA.
        Kernel::Neon => unsafe { arm::add_assign_neon(out, rhs) },
        _ => {
            for (o, &r) in out.iter_mut().zip(rhs) {
                *o += r;
            }
        }
    }
}

/// `n == 1` matmul (`out[i] = Σ_k a[i][k]·b[k]`, ascending `k`), four
/// output rows interleaved. Each output element still receives exactly
/// the scalar reference's op sequence — start at `0.0`, then one rounded
/// mul and one rounded add per ascending `k` — but four independent
/// accumulation chains run at once instead of one, which is what the
/// dot-product-shaped head layers are latency-bound on. Plain safe code:
/// the win is chain interleaving, not instruction width.
fn matmul_into_n1(a: &Matrix, rhs: &Matrix, out: &mut Matrix) {
    let (m, kk) = (a.rows(), a.cols());
    let b = rhs.data();
    let av = a.data();
    let ov = out.data_mut();
    let mut i = 0;
    while i + 4 <= m {
        let r0 = &av[i * kk..(i + 1) * kk];
        let r1 = &av[(i + 1) * kk..(i + 2) * kk];
        let r2 = &av[(i + 2) * kk..(i + 3) * kk];
        let r3 = &av[(i + 3) * kk..(i + 4) * kk];
        let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        for (k, &bv) in b.iter().enumerate() {
            s0 += r0[k] * bv;
            s1 += r1[k] * bv;
            s2 += r2[k] * bv;
            s3 += r3[k] * bv;
        }
        ov[i] = s0;
        ov[i + 1] = s1;
        ov[i + 2] = s2;
        ov[i + 3] = s3;
        i += 4;
    }
    while i < m {
        let r = &av[i * kk..(i + 1) * kk];
        let mut s = 0.0f32;
        for (k, &bv) in b.iter().enumerate() {
            s += r[k] * bv;
        }
        ov[i] = s;
        i += 1;
    }
}

/// Portable reference for `accumulate_rows`: the scalar blocked kernel's
/// op sequence (4-step k fusion, one rounded add per ascending `k`).
fn accumulate_rows_scalar(coeffs: &[f32], rows: &[f32], n: usize, out: &mut [f32]) {
    let kk = coeffs.len();
    let mut k = 0;
    while k + 4 <= kk {
        let (c0, c1, c2, c3) = (coeffs[k], coeffs[k + 1], coeffs[k + 2], coeffs[k + 3]);
        let r0 = &rows[k * n..(k + 1) * n];
        let r1 = &rows[(k + 1) * n..(k + 2) * n];
        let r2 = &rows[(k + 2) * n..(k + 3) * n];
        let r3 = &rows[(k + 3) * n..(k + 4) * n];
        for j in 0..n {
            out[j] = (((out[j] + c0 * r0[j]) + c1 * r1[j]) + c2 * r2[j]) + c3 * r3[j];
        }
        k += 4;
    }
    while k < kk {
        let c = coeffs[k];
        let row = &rows[k * n..(k + 1) * n];
        for (o, &r) in out.iter_mut().zip(row) {
            *o += c * r;
        }
        k += 1;
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! x86_64 kernels. Loads use the aligned form whenever the row stride
    //! keeps every vector access on a 32-byte (AVX2) / 16-byte (SSE2)
    //! boundary — which [`crate::avec::AVec`]-backed matrices guarantee
    //! for base pointers — and the unaligned form otherwise.

    use core::arch::x86_64::*;

    /// True when every `j`-step of a row walk stays `align`-aligned:
    /// aligned base pointers plus a stride that is a whole number of
    /// vectors.
    fn rows_aligned(rows: &[f32], out: &[f32], n: usize, lanes: usize, align: usize) -> bool {
        n.is_multiple_of(lanes)
            && (rows.as_ptr() as usize).is_multiple_of(align)
            && (out.as_ptr() as usize).is_multiple_of(align)
    }

    #[target_feature(enable = "avx2")]
    unsafe fn ld256<const AL: bool>(p: *const f32) -> __m256 {
        if AL {
            _mm256_load_ps(p)
        } else {
            _mm256_loadu_ps(p)
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn st256<const AL: bool>(p: *mut f32, v: __m256) {
        if AL {
            _mm256_store_ps(p, v)
        } else {
            _mm256_storeu_ps(p, v)
        }
    }

    /// # Safety
    /// Caller must ensure AVX2 is available. Slice bounds are the safe
    /// wrapper's contract (`rows.len() >= coeffs.len()*n`,
    /// `out.len() == n`), re-asserted by the debug checks there.
    #[target_feature(enable = "avx2")]
    pub unsafe fn accumulate_rows_avx2(coeffs: &[f32], rows: &[f32], n: usize, out: &mut [f32]) {
        if rows_aligned(rows, out, n, 8, 32) {
            accumulate_rows_avx2_impl::<true>(coeffs, rows, n, out)
        } else {
            accumulate_rows_avx2_impl::<false>(coeffs, rows, n, out)
        }
    }

    /// Register-blocked over `j`: a block of output vectors stays in ymm
    /// registers across the entire ascending-`k` sweep (no memory
    /// round-trip between `k` steps), and the blocks' independent add
    /// chains keep the FP ports busy while each chain waits on its own
    /// previous add. Per output element the op sequence is unchanged —
    /// one rounded mul and one rounded add per ascending `k` — so the
    /// result is bit-identical to the scalar reference.
    #[target_feature(enable = "avx2")]
    unsafe fn accumulate_rows_avx2_impl<const AL: bool>(
        coeffs: &[f32],
        rows: &[f32],
        n: usize,
        out: &mut [f32],
    ) {
        let rp = rows.as_ptr();
        let mut j = 0;
        while j + 32 <= n {
            let po = out.as_mut_ptr().add(j);
            let mut a0 = ld256::<AL>(po);
            let mut a1 = ld256::<AL>(po.add(8));
            let mut a2 = ld256::<AL>(po.add(16));
            let mut a3 = ld256::<AL>(po.add(24));
            for (k, &c) in coeffs.iter().enumerate() {
                let vc = _mm256_set1_ps(c);
                let pr = rp.add(k * n + j);
                a0 = _mm256_add_ps(a0, _mm256_mul_ps(vc, ld256::<AL>(pr)));
                a1 = _mm256_add_ps(a1, _mm256_mul_ps(vc, ld256::<AL>(pr.add(8))));
                a2 = _mm256_add_ps(a2, _mm256_mul_ps(vc, ld256::<AL>(pr.add(16))));
                a3 = _mm256_add_ps(a3, _mm256_mul_ps(vc, ld256::<AL>(pr.add(24))));
            }
            st256::<AL>(po, a0);
            st256::<AL>(po.add(8), a1);
            st256::<AL>(po.add(16), a2);
            st256::<AL>(po.add(24), a3);
            j += 32;
        }
        while j + 16 <= n {
            let po = out.as_mut_ptr().add(j);
            let mut a0 = ld256::<AL>(po);
            let mut a1 = ld256::<AL>(po.add(8));
            for (k, &c) in coeffs.iter().enumerate() {
                let vc = _mm256_set1_ps(c);
                let pr = rp.add(k * n + j);
                a0 = _mm256_add_ps(a0, _mm256_mul_ps(vc, ld256::<AL>(pr)));
                a1 = _mm256_add_ps(a1, _mm256_mul_ps(vc, ld256::<AL>(pr.add(8))));
            }
            st256::<AL>(po, a0);
            st256::<AL>(po.add(8), a1);
            j += 16;
        }
        while j + 8 <= n {
            let po = out.as_mut_ptr().add(j);
            let mut a0 = ld256::<AL>(po);
            for (k, &c) in coeffs.iter().enumerate() {
                a0 = _mm256_add_ps(
                    a0,
                    _mm256_mul_ps(_mm256_set1_ps(c), ld256::<AL>(rp.add(k * n + j))),
                );
            }
            st256::<AL>(po, a0);
            j += 8;
        }
        while j < n {
            let mut acc = out[j];
            let mut base = j;
            for &c in coeffs {
                acc += c * rows[base];
                base += n;
            }
            out[j] = acc;
            j += 1;
        }
    }

    /// # Safety
    /// `out.len() == rhs.len()` (safe wrapper's contract). SSE2/AVX2 per
    /// the enclosing dispatch arm.
    #[target_feature(enable = "avx2")]
    pub unsafe fn add_assign_avx2(out: &mut [f32], rhs: &[f32]) {
        let n = out.len();
        let mut j = 0;
        while j + 8 <= n {
            let v = _mm256_add_ps(
                _mm256_loadu_ps(out.as_ptr().add(j)),
                _mm256_loadu_ps(rhs.as_ptr().add(j)),
            );
            _mm256_storeu_ps(out.as_mut_ptr().add(j), v);
            j += 8;
        }
        while j < n {
            out[j] += rhs[j];
            j += 1;
        }
    }

    /// # Safety
    /// Slice bounds as in [`accumulate_rows_avx2`]; SSE2 is baseline.
    pub unsafe fn accumulate_rows_sse2(coeffs: &[f32], rows: &[f32], n: usize, out: &mut [f32]) {
        if rows_aligned(rows, out, n, 4, 16) {
            accumulate_rows_sse2_impl::<true>(coeffs, rows, n, out)
        } else {
            accumulate_rows_sse2_impl::<false>(coeffs, rows, n, out)
        }
    }

    unsafe fn ld128<const AL: bool>(p: *const f32) -> __m128 {
        if AL {
            _mm_load_ps(p)
        } else {
            _mm_loadu_ps(p)
        }
    }

    unsafe fn st128<const AL: bool>(p: *mut f32, v: __m128) {
        if AL {
            _mm_store_ps(p, v)
        } else {
            _mm_storeu_ps(p, v)
        }
    }

    /// Register-blocked over `j` exactly like the AVX2 impl (see there for
    /// the bitwise argument), with 128-bit blocks.
    unsafe fn accumulate_rows_sse2_impl<const AL: bool>(
        coeffs: &[f32],
        rows: &[f32],
        n: usize,
        out: &mut [f32],
    ) {
        let rp = rows.as_ptr();
        let mut j = 0;
        while j + 16 <= n {
            let po = out.as_mut_ptr().add(j);
            let mut a0 = ld128::<AL>(po);
            let mut a1 = ld128::<AL>(po.add(4));
            let mut a2 = ld128::<AL>(po.add(8));
            let mut a3 = ld128::<AL>(po.add(12));
            for (k, &c) in coeffs.iter().enumerate() {
                let vc = _mm_set1_ps(c);
                let pr = rp.add(k * n + j);
                a0 = _mm_add_ps(a0, _mm_mul_ps(vc, ld128::<AL>(pr)));
                a1 = _mm_add_ps(a1, _mm_mul_ps(vc, ld128::<AL>(pr.add(4))));
                a2 = _mm_add_ps(a2, _mm_mul_ps(vc, ld128::<AL>(pr.add(8))));
                a3 = _mm_add_ps(a3, _mm_mul_ps(vc, ld128::<AL>(pr.add(12))));
            }
            st128::<AL>(po, a0);
            st128::<AL>(po.add(4), a1);
            st128::<AL>(po.add(8), a2);
            st128::<AL>(po.add(12), a3);
            j += 16;
        }
        while j + 8 <= n {
            let po = out.as_mut_ptr().add(j);
            let mut a0 = ld128::<AL>(po);
            let mut a1 = ld128::<AL>(po.add(4));
            for (k, &c) in coeffs.iter().enumerate() {
                let vc = _mm_set1_ps(c);
                let pr = rp.add(k * n + j);
                a0 = _mm_add_ps(a0, _mm_mul_ps(vc, ld128::<AL>(pr)));
                a1 = _mm_add_ps(a1, _mm_mul_ps(vc, ld128::<AL>(pr.add(4))));
            }
            st128::<AL>(po, a0);
            st128::<AL>(po.add(4), a1);
            j += 8;
        }
        while j + 4 <= n {
            let po = out.as_mut_ptr().add(j);
            let mut a0 = ld128::<AL>(po);
            for (k, &c) in coeffs.iter().enumerate() {
                a0 = _mm_add_ps(a0, _mm_mul_ps(_mm_set1_ps(c), ld128::<AL>(rp.add(k * n + j))));
            }
            st128::<AL>(po, a0);
            j += 4;
        }
        while j < n {
            let mut acc = out[j];
            let mut base = j;
            for &c in coeffs {
                acc += c * rows[base];
                base += n;
            }
            out[j] = acc;
            j += 1;
        }
    }

    /// # Safety
    /// `out.len() == rhs.len()`; SSE2 is baseline.
    pub unsafe fn add_assign_sse2(out: &mut [f32], rhs: &[f32]) {
        let n = out.len();
        let mut j = 0;
        while j + 4 <= n {
            let v = _mm_add_ps(
                _mm_loadu_ps(out.as_ptr().add(j)),
                _mm_loadu_ps(rhs.as_ptr().add(j)),
            );
            _mm_storeu_ps(out.as_mut_ptr().add(j), v);
            j += 4;
        }
        while j < n {
            out[j] += rhs[j];
            j += 1;
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod arm {
    //! aarch64 NEON kernels (4 f32 lanes; NEON is baseline, loads handle
    //! any alignment). Same op sequence as the scalar blocked kernel.

    use core::arch::aarch64::*;

    /// # Safety
    /// Slice bounds are the safe wrapper's contract; NEON is baseline.
    pub unsafe fn accumulate_rows_neon(coeffs: &[f32], rows: &[f32], n: usize, out: &mut [f32]) {
        let kk = coeffs.len();
        let mut k = 0;
        while k + 4 <= kk {
            let (c0, c1, c2, c3) = (coeffs[k], coeffs[k + 1], coeffs[k + 2], coeffs[k + 3]);
            let (v0, v1, v2, v3) = (
                vdupq_n_f32(c0),
                vdupq_n_f32(c1),
                vdupq_n_f32(c2),
                vdupq_n_f32(c3),
            );
            let r0 = &rows[k * n..(k + 1) * n];
            let r1 = &rows[(k + 1) * n..(k + 2) * n];
            let r2 = &rows[(k + 2) * n..(k + 3) * n];
            let r3 = &rows[(k + 3) * n..(k + 4) * n];
            let mut j = 0;
            while j + 4 <= n {
                // Separate mul + add (not vfmaq): one rounding per op,
                // matching the scalar reference bit for bit.
                let mut acc = vld1q_f32(out.as_ptr().add(j));
                acc = vaddq_f32(acc, vmulq_f32(v0, vld1q_f32(r0.as_ptr().add(j))));
                acc = vaddq_f32(acc, vmulq_f32(v1, vld1q_f32(r1.as_ptr().add(j))));
                acc = vaddq_f32(acc, vmulq_f32(v2, vld1q_f32(r2.as_ptr().add(j))));
                acc = vaddq_f32(acc, vmulq_f32(v3, vld1q_f32(r3.as_ptr().add(j))));
                vst1q_f32(out.as_mut_ptr().add(j), acc);
                j += 4;
            }
            while j < n {
                out[j] = (((out[j] + c0 * r0[j]) + c1 * r1[j]) + c2 * r2[j]) + c3 * r3[j];
                j += 1;
            }
            k += 4;
        }
        while k < kk {
            let c = coeffs[k];
            let vc = vdupq_n_f32(c);
            let row = &rows[k * n..(k + 1) * n];
            let mut j = 0;
            while j + 4 <= n {
                let acc = vaddq_f32(
                    vld1q_f32(out.as_ptr().add(j)),
                    vmulq_f32(vc, vld1q_f32(row.as_ptr().add(j))),
                );
                vst1q_f32(out.as_mut_ptr().add(j), acc);
                j += 4;
            }
            while j < n {
                out[j] += c * row[j];
                j += 1;
            }
            k += 1;
        }
    }

    /// # Safety
    /// `out.len() == rhs.len()`; NEON is baseline.
    pub unsafe fn add_assign_neon(out: &mut [f32], rhs: &[f32]) {
        let n = out.len();
        let mut j = 0;
        while j + 4 <= n {
            let v = vaddq_f32(
                vld1q_f32(out.as_ptr().add(j)),
                vld1q_f32(rhs.as_ptr().add(j)),
            );
            vst1q_f32(out.as_mut_ptr().add(j), v);
            j += 4;
        }
        while j < n {
            out[j] += rhs[j];
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_parsing_round_trip() {
        for k in [Kernel::Scalar, Kernel::Sse2, Kernel::Avx2, Kernel::Neon] {
            assert_eq!(Kernel::parse(k.name()), Some(k));
            assert_eq!(Kernel::parse(&k.name().to_uppercase()), Some(k));
        }
        assert_eq!(Kernel::parse("avx512"), None);
    }

    #[test]
    fn scalar_is_always_supported_and_listed_first() {
        let ks = supported_kernels();
        assert_eq!(ks.first(), Some(&Kernel::Scalar));
        assert!(ks.iter().all(|k| k.is_supported()));
        assert!(ks.contains(&active()), "active kernel must be supported");
    }

    #[test]
    fn force_scope_overrides_and_restores() {
        let before = active();
        {
            let guard = force_scope(Kernel::Scalar);
            assert!(guard.is_some(), "scalar can always be forced");
            assert_eq!(active(), Kernel::Scalar);
        }
        assert_eq!(active(), before, "dropping the guard restores dispatch");
    }

    #[test]
    fn unsupported_kernel_cannot_be_forced() {
        // At most one of NEON / SSE2 exists on any given target.
        #[cfg(target_arch = "x86_64")]
        assert!(force_scope(Kernel::Neon).is_none());
        #[cfg(not(target_arch = "x86_64"))]
        assert!(force_scope(Kernel::Sse2).is_none());
    }

    #[test]
    fn accumulate_matches_scalar_on_every_kernel() {
        // Shapes chosen to hit the fused body, the k tail, the vector j
        // body and the j tail (n = 11 is neither a multiple of 4 nor 8).
        let kk = 7;
        let n = 11;
        let coeffs: Vec<f32> = (0..kk).map(|i| (i as f32 * 0.7).sin()).collect();
        let rows: Vec<f32> = (0..kk * n).map(|i| (i as f32 * 0.13).cos()).collect();
        let mut reference = vec![0.5f32; n];
        accumulate_rows_scalar(&coeffs, &rows, n, &mut reference);
        for k in supported_kernels() {
            let mut out = vec![0.5f32; n];
            accumulate_rows_with(k, &coeffs, &rows, n, &mut out);
            for (a, b) in reference.iter().zip(&out) {
                assert_eq!(a.to_bits(), b.to_bits(), "kernel {k:?} diverged");
            }
        }
    }
}
