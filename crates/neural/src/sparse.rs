//! CSR sparse matrices for graph message passing.
//!
//! The Het-Graph Encoder (lhmm-graph) propagates messages with per-relation
//! row-normalized adjacency matrices. Those matrices are fixed during
//! training, so the tape only needs gradients with respect to the dense
//! operand: `d(A·X)/dX = Aᵀ·G`.

use crate::matrix::Matrix;

/// A compressed-sparse-row matrix with `f32` weights.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl SparseMatrix {
    /// Builds from per-row `(col, value)` lists. Panics when an index is out
    /// of bounds.
    pub fn from_rows(rows: usize, cols: usize, entries: &[Vec<(u32, f32)>]) -> Self {
        assert_eq!(entries.len(), rows, "one entry list per row");
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for row in entries {
            for &(c, v) in row {
                assert!((c as usize) < cols, "column {c} out of {cols}");
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len() as u32);
        }
        SparseMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Row-normalizes in place so every non-empty row sums to 1 (the mean
    /// aggregation of Eq. 4).
    pub fn row_normalize(&mut self) {
        for r in 0..self.rows {
            let lo = self.row_ptr[r] as usize;
            let hi = self.row_ptr[r + 1] as usize;
            let sum: f32 = self.values[lo..hi].iter().sum();
            if sum > 0.0 {
                for v in &mut self.values[lo..hi] {
                    *v /= sum;
                }
            }
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `self × dense` (rows × dense.cols).
    pub fn matmul_dense(&self, dense: &Matrix) -> Matrix {
        assert_eq!(self.cols, dense.rows(), "spmm shape mismatch");
        let mut out = Matrix::zeros(self.rows, dense.cols());
        for r in 0..self.rows {
            let lo = self.row_ptr[r] as usize;
            let hi = self.row_ptr[r + 1] as usize;
            let out_row = out.row_mut(r);
            for k in lo..hi {
                let c = self.col_idx[k] as usize;
                let w = self.values[k];
                for (o, &d) in out_row.iter_mut().zip(dense.row(c)) {
                    *o += w * d;
                }
            }
        }
        out
    }

    /// `selfᵀ × dense` (cols × dense.cols) — the backward pass of
    /// [`Self::matmul_dense`].
    pub fn transpose_matmul_dense(&self, dense: &Matrix) -> Matrix {
        assert_eq!(self.rows, dense.rows(), "spmm^T shape mismatch");
        let mut out = Matrix::zeros(self.cols, dense.cols());
        for r in 0..self.rows {
            let lo = self.row_ptr[r] as usize;
            let hi = self.row_ptr[r + 1] as usize;
            for k in lo..hi {
                let c = self.col_idx[k] as usize;
                let w = self.values[k];
                let out_row = out.row_mut(c);
                for (o, &d) in out_row.iter_mut().zip(dense.row(r)) {
                    *o += w * d;
                }
            }
        }
        out
    }

    /// Dense copy (tests / diagnostics only).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let lo = self.row_ptr[r] as usize;
            let hi = self.row_ptr[r + 1] as usize;
            for k in lo..hi {
                out[(r, self.col_idx[k] as usize)] += self.values[k];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseMatrix {
        // [[0, 2, 0], [1, 0, 3]]
        SparseMatrix::from_rows(2, 3, &[vec![(1, 2.0)], vec![(0, 1.0), (2, 3.0)]])
    }

    #[test]
    fn spmm_matches_dense() {
        let sp = sample();
        let d = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let fast = sp.matmul_dense(&d);
        let slow = sp.to_dense().matmul(&d);
        assert_eq!(fast, slow);
    }

    #[test]
    fn transpose_spmm_matches_dense() {
        let sp = sample();
        let d = Matrix::from_vec(2, 2, vec![1.0, -1.0, 0.5, 2.0]);
        let fast = sp.transpose_matmul_dense(&d);
        let slow = sp.to_dense().transpose().matmul(&d);
        assert_eq!(fast, slow);
    }

    #[test]
    fn row_normalize_sums_to_one() {
        let mut sp = sample();
        sp.row_normalize();
        let dense = sp.to_dense();
        for r in 0..2 {
            let sum: f32 = dense.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Empty rows stay zero.
        let mut empty = SparseMatrix::from_rows(2, 2, &[vec![], vec![(0, 5.0)]]);
        empty.row_normalize();
        assert_eq!(empty.to_dense().row(0), &[0.0, 0.0]);
    }

    #[test]
    fn nnz_and_shapes() {
        let sp = sample();
        assert_eq!(sp.nnz(), 3);
        assert_eq!((sp.rows(), sp.cols()), (2, 3));
    }
}
