//! Reusable network layers built on the autograd tape.

use crate::init;
use crate::kernel::{self, Kernel};
use crate::matrix::Matrix;
use crate::scratch::Scratch;
use crate::tape::{ParamId, ParamStore, Tape, Var};
use rand::Rng;

/// Activation applied between MLP layers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// No nonlinearity.
    Identity,
}

impl Activation {
    fn apply(self, tape: &mut Tape, x: Var) -> Var {
        match self {
            Activation::Relu => tape.relu(x),
            Activation::Tanh => tape.tanh(x),
            Activation::Sigmoid => tape.sigmoid(x),
            Activation::Identity => x,
        }
    }

    /// Scalar evaluation; the exact expressions the tape-free [`Mlp::infer`]
    /// path uses, so fused kernels stay bit-identical to it.
    #[inline]
    pub fn eval(self, v: f32) -> f32 {
        match self {
            Activation::Relu => v.max(0.0),
            Activation::Tanh => v.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-v).exp()),
            Activation::Identity => v,
        }
    }
}

/// A fully connected layer `y = x W + b`.
#[derive(Clone, Debug)]
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Allocates a layer with Xavier-initialized weights and zero bias.
    pub fn new(store: &mut ParamStore, in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        let w = store.alloc(init::xavier_uniform(in_dim, out_dim, rng));
        let b = Some(store.alloc(init::zeros(1, out_dim)));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Allocates a bias-free layer.
    pub fn new_no_bias(
        store: &mut ParamStore,
        in_dim: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let w = store.alloc(init::xavier_uniform(in_dim, out_dim, rng));
        Linear {
            w,
            b: None,
            in_dim,
            out_dim,
        }
    }

    /// Forward pass; `x` is n×in_dim, the result n×out_dim.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        debug_assert_eq!(tape.value(x).cols(), self.in_dim, "Linear input width");
        let w = tape.param(store, self.w);
        let h = tape.matmul(x, w);
        match self.b {
            Some(b) => {
                let b = tape.param(store, b);
                tape.add_row_broadcast(h, b)
            }
            None => h,
        }
    }

    /// Tape-free forward pass for inference hot paths.
    pub fn infer(&self, store: &ParamStore, x: &crate::Matrix) -> crate::Matrix {
        let mut h = x.matmul(store.value(self.w));
        if let Some(b) = self.b {
            let bias = store.value(b);
            for r in 0..h.rows() {
                for (o, &bi) in h.row_mut(r).iter_mut().zip(bias.row(0)) {
                    *o += bi;
                }
            }
        }
        h
    }

    /// Fused affine+activation forward into a caller-owned matrix: the
    /// allocation-free fast path. Runs the i-k-j kernel (the inner loop
    /// vectorizes across output columns, which the dot-product-form
    /// transposed kernel cannot), then applies bias and activation in one
    /// pass over each output row. Bit-identical to `infer` followed by an
    /// elementwise activation map.
    ///
    /// The matmul and the bias add dispatch to the SIMD kernel selected by
    /// [`crate::kernel::active`]; the activation always stays per-element
    /// libm, so every path shares one rounding story: each output element
    /// sees matmul adds, one bias add, then one activation — bit-identical
    /// across kernels (the scalar path additionally fuses bias+activation
    /// into a single sweep, which changes no bits, only traffic).
    pub fn infer_into(&self, store: &ParamStore, x: &Matrix, out: &mut Matrix, act: Activation) {
        debug_assert_eq!(x.cols(), self.in_dim, "Linear input width");
        let k = kernel::active();
        kernel::matmul_into_with(k, x, store.value(self.w), out);
        match self.b {
            Some(b) => {
                let bias = store.value(b);
                let brow = bias.row(0);
                if k == Kernel::Scalar {
                    for r in 0..out.rows() {
                        for (o, &bi) in out.row_mut(r).iter_mut().zip(brow) {
                            *o = act.eval(*o + bi);
                        }
                    }
                } else {
                    kernel::add_bias_rows_with(k, out, brow);
                    if act != Activation::Identity {
                        for v in out.data_mut() {
                            *v = act.eval(*v);
                        }
                    }
                }
            }
            None => {
                if act != Activation::Identity {
                    for v in out.data_mut() {
                        *v = act.eval(*v);
                    }
                }
            }
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

/// A multilayer perceptron with a fixed hidden activation and identity
/// output (losses consume raw logits).
#[derive(Clone, Debug)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `[256, 128, 1]`
    /// produces two layers 256→128→1.
    pub fn new(
        store: &mut ParamStore,
        dims: &[usize],
        activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(dims.len() >= 2, "MLP needs at least input and output dims");
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(store, w[0], w[1], rng))
            .collect();
        Mlp { layers, activation }
    }

    /// Forward pass; the activation is applied after every layer except the
    /// last.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(tape, store, h);
            if i != last {
                h = self.activation.apply(tape, h);
            }
        }
        h
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.layers.last().map_or(0, |l| l.out_dim())
    }

    /// Tape-free forward pass for inference hot paths.
    pub fn infer(&self, store: &ParamStore, x: &crate::Matrix) -> crate::Matrix {
        let mut h = x.clone();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.infer(store, &h);
            if i != last {
                h = match self.activation {
                    Activation::Relu => h.map(|v| v.max(0.0)),
                    Activation::Tanh => h.map(f32::tanh),
                    Activation::Sigmoid => h.map(|v| 1.0 / (1.0 + (-v).exp())),
                    Activation::Identity => h,
                };
            }
        }
        h
    }

    /// Allocation-free forward through the fused kernels: every
    /// intermediate comes from (and the result's buffer should be returned
    /// to) the scratch arena. Bit-identical to [`Mlp::infer`].
    pub fn infer_with(&self, store: &ParamStore, x: &Matrix, scratch: &mut Scratch) -> Matrix {
        let n = x.rows();
        let last = self.layers.len() - 1;
        let mut cur: Option<Matrix> = None;
        for (i, layer) in self.layers.iter().enumerate() {
            let act = if i == last {
                Activation::Identity
            } else {
                self.activation
            };
            let mut out = scratch.take(n, layer.out_dim());
            layer.infer_into(store, cur.as_ref().unwrap_or(x), &mut out, act);
            if let Some(prev) = cur.take() {
                scratch.give(prev);
            }
            cur = Some(out);
        }
        // A zero-layer MLP is the identity; `new` never builds one, but
        // degrade rather than panic if it ever happens.
        cur.unwrap_or_else(|| x.clone())
    }
}

/// Additive attention in the paper's Eq. 6 / Eq. 9 form:
///
/// ```text
/// score_j = w_v · tanh(W_q q ⊕ W_k k_j)
/// out     = Σ_j softmax(score)_j · v_j
/// ```
///
/// The query is a single 1×d vector; keys and values are n×d matrices
/// (values default to the keys, as in the paper where the attention
/// summarizes raw point embeddings).
#[derive(Clone, Debug)]
pub struct AdditiveAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
}

impl AdditiveAttention {
    /// Allocates attention parameters for embedding width `dim` with an
    /// internal projection width `proj`.
    pub fn new(store: &mut ParamStore, dim: usize, proj: usize, rng: &mut impl Rng) -> Self {
        AdditiveAttention {
            wq: Linear::new_no_bias(store, dim, proj, rng),
            wk: Linear::new_no_bias(store, dim, proj, rng),
            wv: Linear::new_no_bias(store, 2 * proj, 1, rng),
        }
    }

    /// Computes the attended context `1×d` and returns `(context, weights)`
    /// where weights is the n×1 softmax distribution over keys.
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        query: Var,
        keys: Var,
        values: Var,
    ) -> (Var, Var) {
        let n = tape.value(keys).rows();
        debug_assert_eq!(tape.value(query).rows(), 1, "query must be a row vector");
        let q = self.wq.forward(tape, store, query); // 1×p
        let q_rep = tape.repeat_row(q, n); // n×p
        let k = self.wk.forward(tape, store, keys); // n×p
        let qk = tape.concat_cols(q_rep, k); // n×2p
        let act = tape.tanh(qk);
        let scores = self.wv.forward(tape, store, act); // n×1
        // Softmax over the n scores: transpose to 1×n, row-softmax, back.
        let st = tape.transpose(scores); // 1×n
        let sm = tape.softmax_rows(st); // 1×n
        let context = tape.matmul(sm, values); // 1×d
        let weights = tape.transpose(sm); // n×1
        (context, weights)
    }

    /// Tape-free forward pass: returns the attended context row.
    pub fn infer(
        &self,
        store: &ParamStore,
        query: &crate::Matrix,
        keys: &crate::Matrix,
        values: &crate::Matrix,
    ) -> crate::Matrix {
        let projected = self.project_keys(store, keys);
        self.infer_projected(store, query, &projected, values)
    }

    /// Precomputes `keys × W_k` so that many queries against the same key
    /// set (one trajectory scored for hundreds of roads) skip the dominant
    /// matmul. Pair with [`Self::infer_projected`].
    pub fn project_keys(&self, store: &ParamStore, keys: &crate::Matrix) -> crate::Matrix {
        self.wk.infer(store, keys)
    }

    /// Tape-free forward with pre-projected keys from
    /// [`Self::project_keys`].
    pub fn infer_projected(
        &self,
        store: &ParamStore,
        query: &crate::Matrix,
        projected_keys: &crate::Matrix,
        values: &crate::Matrix,
    ) -> crate::Matrix {
        let n = projected_keys.rows();
        let q = self.wq.infer(store, query); // 1×p
        let k = projected_keys; // n×p
        // concat([q; q; ...], k) then tanh then wv.
        let mut qk = crate::Matrix::zeros(n, q.cols() + k.cols());
        for r in 0..n {
            qk.row_mut(r)[..q.cols()].copy_from_slice(q.row(0));
            qk.row_mut(r)[q.cols()..].copy_from_slice(k.row(r));
        }
        let act = qk.map(f32::tanh);
        let scores = self.wv.infer(store, &act); // n×1
        // Softmax over the n scores.
        let max = scores
            .data()
            .iter()
            .cloned()
            .fold(f32::NEG_INFINITY, f32::max);
        let mut weights: Vec<f32> = scores.data().iter().map(|&s| (s - max).exp()).collect();
        let sum: f32 = weights.iter().sum();
        for w in &mut weights {
            *w /= sum;
        }
        let mut ctx = crate::Matrix::zeros(1, values.cols());
        for (r, &w) in weights.iter().enumerate() {
            for (o, &v) in ctx.row_mut(0).iter_mut().zip(values.row(r)) {
                *o += w * v;
            }
        }
        ctx
    }

    /// Internal projection width `p`.
    pub fn proj_dim(&self) -> usize {
        self.wq.out_dim()
    }

    /// Allocation-free [`Self::project_keys`]: `out` must be
    /// `keys.rows() × proj_dim`.
    pub fn project_keys_into(&self, store: &ParamStore, keys: &Matrix, out: &mut Matrix) {
        self.wk.infer_into(store, keys, out, Activation::Identity);
    }

    /// Projects a whole stack of queries (`n × d`) through `W_q` at once
    /// into `out` (`n × proj_dim`). Row `i` is bit-identical to projecting
    /// query `i` alone, so callers can batch every query of a trajectory
    /// up front and feed single rows to [`Self::attend_projected`].
    pub fn project_queries_into(&self, store: &ParamStore, queries: &Matrix, out: &mut Matrix) {
        self.wq.infer_into(store, queries, out, Activation::Identity);
    }

    /// Allocation-free attention with a pre-projected query row (from
    /// [`Self::project_queries_into`]) and pre-projected keys. Writes the
    /// attended context into `ctx_out` (length `values.cols()`).
    /// Bit-identical to [`Self::infer_projected`].
    pub fn attend_projected(
        &self,
        store: &ParamStore,
        q_proj: &[f32],
        projected_keys: &Matrix,
        values: &Matrix,
        scratch: &mut Scratch,
        ctx_out: &mut [f32],
    ) {
        let n = projected_keys.rows();
        let p = q_proj.len();
        debug_assert_eq!(p, self.proj_dim(), "projected query width");
        debug_assert_eq!(ctx_out.len(), values.cols(), "context width");
        let mut qk = scratch.take(n, p + projected_keys.cols());
        for r in 0..n {
            let row = qk.row_mut(r);
            row[..p].copy_from_slice(q_proj);
            row[p..].copy_from_slice(projected_keys.row(r));
        }
        for v in qk.data_mut() {
            *v = v.tanh();
        }
        let mut scores = scratch.take(n, 1);
        self.wv.infer_into(store, &qk, &mut scores, Activation::Identity);
        softmax_context(&mut scores, values, ctx_out);
        scratch.give(qk);
        scratch.give(scores);
    }

    /// Allocation-free attention from **memoized tanh halves**: `tanh_q` is
    /// `tanh(W_q q)` for one query row and `tanh_keys` holds `tanh(W_k k_j)`
    /// row per key. tanh is elementwise, so
    /// `tanh([Wq·q ⊕ Wk·k]) = [tanh(Wq·q) ⊕ tanh(Wk·k)]` — assembling the
    /// activation matrix from the two cached halves is bit-identical to
    /// [`Self::infer_projected`] / [`Self::attend_projected`] while
    /// replacing the `n·2p` tanh evaluations *per query* with `p` per query
    /// plus `n·p` once per key set. This is what makes per-trajectory
    /// attention cheap: the key half is tanh'd once for hundreds of queries.
    pub fn attend_tanh(
        &self,
        store: &ParamStore,
        tanh_q: &[f32],
        tanh_keys: &Matrix,
        values: &Matrix,
        scratch: &mut Scratch,
        ctx_out: &mut [f32],
    ) {
        let n = tanh_keys.rows();
        let p = tanh_q.len();
        debug_assert_eq!(p, self.proj_dim(), "projected query width");
        debug_assert_eq!(ctx_out.len(), values.cols(), "context width");
        let mut qk = scratch.take(n, p + tanh_keys.cols());
        for r in 0..n {
            let row = qk.row_mut(r);
            row[..p].copy_from_slice(tanh_q);
            row[p..].copy_from_slice(tanh_keys.row(r));
        }
        let mut scores = scratch.take(n, 1);
        self.wv.infer_into(store, &qk, &mut scores, Activation::Identity);
        softmax_context(&mut scores, values, ctx_out);
        scratch.give(qk);
        scratch.give(scores);
    }

    /// [`Self::attend_tanh`] with the key half stored **transposed**:
    /// `tanh_keys_t` is `p×n` — column `j` holds `tanh(W_k k_j)`. Callers
    /// transpose the memoized key half once per trajectory
    /// ([`Matrix::transpose_into`]) and reuse it for every query.
    ///
    /// The restructuring skips the per-query `n×2p` assembly of the
    /// concatenated activation matrix entirely: the score row is computed
    /// directly as the shared query prefix dot product plus the
    /// transposed-key accumulation (see
    /// [`crate::kernel::attend_scores_with`]), which keeps each score's
    /// per-element add sequence identical to [`Self::attend_tanh`] —
    /// bit-identical output, half the multiply-adds, and a `j`-contiguous
    /// inner loop the SIMD kernels can vectorize.
    pub fn attend_tanh_t(
        &self,
        store: &ParamStore,
        tanh_q: &[f32],
        tanh_keys_t: &Matrix,
        values: &Matrix,
        scratch: &mut Scratch,
        ctx_out: &mut [f32],
    ) {
        let n = tanh_keys_t.cols();
        let p = tanh_q.len();
        debug_assert_eq!(p, self.proj_dim(), "projected query width");
        debug_assert_eq!(tanh_keys_t.rows(), p, "transposed key half height");
        debug_assert_eq!(ctx_out.len(), values.cols(), "context width");
        let w = store.value(self.wv.w); // (2p)×1 score weights
        debug_assert_eq!(w.rows(), 2 * p, "score weight height");
        let mut scores = scratch.take(n, 1);
        kernel::attend_scores_with(
            kernel::active(),
            tanh_q,
            w.data(),
            tanh_keys_t,
            scores.data_mut(),
        );
        softmax_context(&mut scores, values, ctx_out);
        scratch.give(scores);
    }
}

/// Shared attention tail: in-place softmax over the `n×1` score column
/// (same op order as the allocating path — max, exp, sum, divide), then the
/// weighted sum of value rows into `ctx_out` (dispatched to the active
/// SIMD kernel; each context element accumulates one rounded multiply-add
/// per value row in ascending row order on every path).
fn softmax_context(scores: &mut Matrix, values: &Matrix, ctx_out: &mut [f32]) {
    let max = scores
        .data()
        .iter()
        .cloned()
        .fold(f32::NEG_INFINITY, f32::max);
    for s in scores.data_mut() {
        *s = (*s - max).exp();
    }
    let sum: f32 = scores.data().iter().sum();
    for s in scores.data_mut() {
        *s /= sum;
    }
    let k = kernel::active();
    if k == Kernel::Scalar {
        ctx_out.fill(0.0);
        for (r, &w) in scores.data().iter().enumerate() {
            for (o, &v) in ctx_out.iter_mut().zip(values.row(r)) {
                *o += w * v;
            }
        }
    } else {
        kernel::weighted_sum_rows_with(k, scores.data(), values, ctx_out);
    }
}

/// A gated recurrent unit cell; the recurrent backbone of the DMM/DeepMM
/// seq2seq baselines.
#[derive(Clone, Debug)]
pub struct GruCell {
    wxz: Linear,
    whz: Linear,
    wxr: Linear,
    whr: Linear,
    wxh: Linear,
    whh: Linear,
    hidden: usize,
}

impl GruCell {
    /// Allocates a cell mapping `input`-wide inputs to `hidden`-wide state.
    pub fn new(store: &mut ParamStore, input: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        GruCell {
            wxz: Linear::new(store, input, hidden, rng),
            whz: Linear::new_no_bias(store, hidden, hidden, rng),
            wxr: Linear::new(store, input, hidden, rng),
            whr: Linear::new_no_bias(store, hidden, hidden, rng),
            wxh: Linear::new(store, input, hidden, rng),
            whh: Linear::new_no_bias(store, hidden, hidden, rng),
            hidden,
        }
    }

    /// Hidden width.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// One step: consumes input `x` (1×input) and state `h` (1×hidden),
    /// returns the next state.
    pub fn step(&self, tape: &mut Tape, store: &ParamStore, x: Var, h: Var) -> Var {
        let z = {
            let a = self.wxz.forward(tape, store, x);
            let b = self.whz.forward(tape, store, h);
            let s = tape.add(a, b);
            tape.sigmoid(s)
        };
        let r = {
            let a = self.wxr.forward(tape, store, x);
            let b = self.whr.forward(tape, store, h);
            let s = tape.add(a, b);
            tape.sigmoid(s)
        };
        let h_tilde = {
            let a = self.wxh.forward(tape, store, x);
            let rh = tape.mul(r, h);
            let b = self.whh.forward(tape, store, rh);
            let s = tape.add(a, b);
            tape.tanh(s)
        };
        // h' = (1 - z) ∘ h + z ∘ h~
        let one_minus_z = tape.affine(z, -1.0, 1.0);
        let keep = tape.mul(one_minus_z, h);
        let update = tape.mul(z, h_tilde);
        tape.add(keep, update)
    }
}

/// A trainable embedding table: one d-wide row per entity.
#[derive(Clone, Debug)]
pub struct Embedding {
    table: ParamId,
    num: usize,
    dim: usize,
}

impl Embedding {
    /// Allocates `num` embeddings of width `dim`.
    pub fn new(store: &mut ParamStore, num: usize, dim: usize, rng: &mut impl Rng) -> Self {
        let table = store.alloc(init::xavier_uniform(num, dim, rng));
        Embedding { table, num, dim }
    }

    /// Looks up rows for `indices` (n×dim output).
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, indices: &[usize]) -> Var {
        let t = tape.param(store, self.table);
        tape.gather_rows(t, indices)
    }

    /// The whole table as a tape var (for full-graph encoders).
    pub fn full(&self, tape: &mut Tape, store: &ParamStore) -> Var {
        tape.param(store, self.table)
    }

    /// Number of rows.
    pub fn num_embeddings(&self) -> usize {
        self.num
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new(&mut store, 4, 3, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::zeros(5, 4));
        let y = l.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), (5, 3));
    }

    #[test]
    fn mlp_forward_and_backward() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new(&mut store, &[4, 8, 2], Activation::Relu, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::full(3, 4, 0.5));
        let y = mlp.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), (3, 2));
        let g = tape.backward(y, Matrix::full(3, 2, 1.0));
        let pg = tape.param_grads(&g);
        // 2 layers × (w + b) = 4 parameter tensors with gradients.
        assert_eq!(pg.len(), 4);
        assert!(pg.iter().all(|(_, m)| m.is_finite()));
    }

    #[test]
    fn attention_weights_are_a_distribution() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let att = AdditiveAttention::new(&mut store, 6, 6, &mut rng);
        let mut tape = Tape::new();
        let q = tape.constant(Matrix::full(1, 6, 0.3));
        let keys = tape.constant(Matrix::from_vec(
            4,
            6,
            (0..24).map(|i| (i as f32 * 0.37).sin()).collect(),
        ));
        let (ctx, w) = att.forward(&mut tape, &store, q, keys, keys);
        assert_eq!(tape.value(ctx).shape(), (1, 6));
        assert_eq!(tape.value(w).shape(), (4, 1));
        let sum: f32 = tape.value(w).data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(tape.value(w).data().iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn attention_attends_to_similar_key() {
        // With identical query/key projections initialized randomly, a key
        // identical to the query should not receive *less* weight than a
        // wildly different one after a gradient step pushing toward it.
        // Here we only check the mechanism: changing keys changes weights.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let att = AdditiveAttention::new(&mut store, 4, 4, &mut rng);
        let mut tape = Tape::new();
        let q = tape.constant(Matrix::full(1, 4, 1.0));
        let keys1 = tape.constant(Matrix::from_vec(2, 4, vec![1.0; 8]));
        let (_, w1) = att.forward(&mut tape, &store, q, keys1, keys1);
        // Equal keys ⇒ exactly uniform weights.
        let w = tape.value(w1);
        assert!((w.data()[0] - 0.5).abs() < 1e-6);
        assert!((w.data()[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn gru_state_stays_bounded() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        let cell = GruCell::new(&mut store, 3, 5, &mut rng);
        let mut tape = Tape::new();
        let mut h = tape.constant(Matrix::zeros(1, 5));
        for i in 0..20 {
            let x = tape.constant(Matrix::full(1, 3, (i as f32).sin() * 3.0));
            h = cell.step(&mut tape, &store, x, h);
        }
        // GRU state is a convex combination of tanh outputs: |h| <= 1.
        assert!(tape.value(h).data().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn infer_matches_tape_forward() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(9);
        let mlp = Mlp::new(&mut store, &[5, 7, 2], Activation::Tanh, &mut rng);
        let x = Matrix::from_vec(3, 5, (0..15).map(|i| (i as f32 * 0.31).sin()).collect());
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let y_tape = mlp.forward(&mut tape, &store, xv);
        let y_infer = mlp.infer(&store, &x);
        for (a, b) in tape.value(y_tape).data().iter().zip(y_infer.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn attention_infer_matches_tape_forward() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(10);
        let att = AdditiveAttention::new(&mut store, 6, 6, &mut rng);
        let q = Matrix::from_vec(1, 6, (0..6).map(|i| (i as f32 * 0.7).cos()).collect());
        let keys = Matrix::from_vec(5, 6, (0..30).map(|i| (i as f32 * 0.13).sin()).collect());
        let mut tape = Tape::new();
        let qv = tape.constant(q.clone());
        let kv = tape.constant(keys.clone());
        let (ctx_tape, _) = att.forward(&mut tape, &store, qv, kv, kv);
        let ctx_infer = att.infer(&store, &q, &keys, &keys);
        for (a, b) in tape.value(ctx_tape).data().iter().zip(ctx_infer.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn fused_mlp_is_bitwise_identical_to_infer() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(11);
        for act in [Activation::Relu, Activation::Tanh, Activation::Sigmoid] {
            let mlp = Mlp::new(&mut store, &[5, 9, 3], act, &mut rng);
            let x = Matrix::from_vec(4, 5, (0..20).map(|i| (i as f32 * 0.23).sin()).collect());
            let reference = mlp.infer(&store, &x);
            let mut scratch = Scratch::new();
            for _ in 0..2 {
                // Second round runs with a warm (dirty) scratch arena.
                let fused = mlp.infer_with(&store, &x, &mut scratch);
                for (a, b) in reference.data().iter().zip(fused.data()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "fused MLP diverged ({act:?})");
                }
                scratch.give(fused);
            }
        }
    }

    #[test]
    fn attend_projected_is_bitwise_identical_to_infer_projected() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(12);
        let att = AdditiveAttention::new(&mut store, 6, 5, &mut rng);
        let keys = Matrix::from_vec(7, 6, (0..42).map(|i| (i as f32 * 0.17).cos()).collect());
        let queries = Matrix::from_vec(3, 6, (0..18).map(|i| (i as f32 * 0.41).sin()).collect());

        let projected = att.project_keys(&store, &keys);
        let mut projected_fast = Matrix::zeros(7, att.proj_dim());
        att.project_keys_into(&store, &keys, &mut projected_fast);
        for (a, b) in projected.data().iter().zip(projected_fast.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "key projection diverged");
        }

        let mut q_proj = Matrix::zeros(3, att.proj_dim());
        att.project_queries_into(&store, &queries, &mut q_proj);
        let mut scratch = Scratch::new();
        let mut ctx = vec![0.0f32; keys.cols()];
        for qi in 0..queries.rows() {
            let query = Matrix::row_vector(queries.row(qi).to_vec());
            let reference = att.infer_projected(&store, &query, &projected, &keys);
            att.attend_projected(&store, q_proj.row(qi), &projected_fast, &keys, &mut scratch, &mut ctx);
            for (a, b) in reference.data().iter().zip(&ctx) {
                assert_eq!(a.to_bits(), b.to_bits(), "attention context diverged");
            }
        }
    }

    #[test]
    fn attend_tanh_is_bitwise_identical_to_infer_projected() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(12);
        let att = AdditiveAttention::new(&mut store, 6, 5, &mut rng);
        let keys = Matrix::from_vec(7, 6, (0..42).map(|i| (i as f32 * 0.17).cos()).collect());
        let queries = Matrix::from_vec(3, 6, (0..18).map(|i| (i as f32 * 0.41).sin()).collect());

        let projected = att.project_keys(&store, &keys);
        let mut tanh_keys = Matrix::zeros(7, att.proj_dim());
        att.project_keys_into(&store, &keys, &mut tanh_keys);
        for v in tanh_keys.data_mut() {
            *v = v.tanh();
        }
        let mut tanh_q = Matrix::zeros(3, att.proj_dim());
        att.project_queries_into(&store, &queries, &mut tanh_q);
        for v in tanh_q.data_mut() {
            *v = v.tanh();
        }

        let mut scratch = Scratch::new();
        let mut ctx = vec![0.0f32; keys.cols()];
        for qi in 0..queries.rows() {
            let query = Matrix::row_vector(queries.row(qi).to_vec());
            let reference = att.infer_projected(&store, &query, &projected, &keys);
            att.attend_tanh(&store, tanh_q.row(qi), &tanh_keys, &keys, &mut scratch, &mut ctx);
            for (a, b) in reference.data().iter().zip(&ctx) {
                assert_eq!(a.to_bits(), b.to_bits(), "memoized-tanh attention diverged");
            }
        }
    }

    /// `attend_tanh_t` (transposed keys, restructured score loop) must be
    /// bit-identical to `attend_tanh` — and therefore to
    /// `infer_projected` — under every kernel this machine supports.
    #[test]
    fn attend_tanh_t_is_bitwise_identical_to_attend_tanh() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(12);
        let att = AdditiveAttention::new(&mut store, 6, 5, &mut rng);
        let keys = Matrix::from_vec(7, 6, (0..42).map(|i| (i as f32 * 0.17).cos()).collect());
        let queries = Matrix::from_vec(3, 6, (0..18).map(|i| (i as f32 * 0.41).sin()).collect());

        let mut tanh_keys = Matrix::zeros(7, att.proj_dim());
        att.project_keys_into(&store, &keys, &mut tanh_keys);
        for v in tanh_keys.data_mut() {
            *v = v.tanh();
        }
        let tanh_keys_t = tanh_keys.transpose();
        let mut tanh_q = Matrix::zeros(3, att.proj_dim());
        att.project_queries_into(&store, &queries, &mut tanh_q);
        for v in tanh_q.data_mut() {
            *v = v.tanh();
        }

        let mut scratch = Scratch::new();
        let mut ctx = vec![0.0f32; keys.cols()];
        let mut ctx_t = vec![0.0f32; keys.cols()];
        for k in kernel::supported_kernels() {
            let _guard = kernel::force_scope(k);
            for qi in 0..queries.rows() {
                att.attend_tanh(&store, tanh_q.row(qi), &tanh_keys, &keys, &mut scratch, &mut ctx);
                att.attend_tanh_t(
                    &store,
                    tanh_q.row(qi),
                    &tanh_keys_t,
                    &keys,
                    &mut scratch,
                    &mut ctx_t,
                );
                for (a, b) in ctx.iter().zip(&ctx_t) {
                    assert_eq!(a.to_bits(), b.to_bits(), "attend_tanh_t diverged under {k:?}");
                }
            }
        }
    }

    #[test]
    fn embedding_lookup_and_grad_flow() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let emb = Embedding::new(&mut store, 10, 4, &mut rng);
        let mut tape = Tape::new();
        let rows = emb.forward(&mut tape, &store, &[3, 3, 7]);
        assert_eq!(tape.value(rows).shape(), (3, 4));
        assert_eq!(tape.value(rows).row(0), tape.value(rows).row(1));
        let g = tape.backward(rows, Matrix::full(3, 4, 1.0));
        let pg = tape.param_grads(&g);
        assert_eq!(pg.len(), 1);
        let gm = &pg[0].1;
        // Row 3 used twice, row 7 once, others zero.
        assert_eq!(gm.row(3), &[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(gm.row(7), &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(gm.row(0), &[0.0, 0.0, 0.0, 0.0]);
    }
}
