//! Adam optimizer with decoupled weight decay.
//!
//! The paper trains with Adam, learning rate `1e-3` and weight decay `1e-4`
//! (Section V-A2); those are this type's defaults.

use crate::matrix::Matrix;
use crate::tape::{ParamId, ParamStore};

/// Adam optimizer state (step counter + hyperparameters). Moment estimates
/// live next to the parameters inside [`ParamStore`].
#[derive(Clone, Debug)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical stabilizer.
    pub epsilon: f32,
    /// Decoupled weight decay coefficient.
    pub weight_decay: f32,
    step: u64,
}

impl Default for Adam {
    fn default() -> Self {
        Adam {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            weight_decay: 1e-4,
            step: 0,
        }
    }
}

impl Adam {
    /// Creates an optimizer with the paper's hyperparameters.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Adam {
            lr,
            weight_decay,
            ..Adam::default()
        }
    }

    /// Number of completed steps.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Applies one update for the given `(param, gradient)` pairs.
    pub fn step(&mut self, store: &mut ParamStore, grads: &[(ParamId, Matrix)]) {
        self.step += 1;
        let t = self.step as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        for (pid, grad) in grads {
            let idx = pid.0;
            debug_assert_eq!(
                store.value(*pid).shape(),
                grad.shape(),
                "gradient shape mismatch for param {idx}"
            );
            // Split-borrow via index juggling: update m, v, then the value.
            for i in 0..grad.data().len() {
                let g = grad.data()[i];
                let m = &mut store.m[idx].data_mut()[i];
                *m = self.beta1 * *m + (1.0 - self.beta1) * g;
                let m_hat = *m / bias1;
                let v = &mut store.v[idx].data_mut()[i];
                *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
                let v_hat = *v / bias2;
                let w = &mut store.value_mut(*pid).data_mut()[i];
                // Decoupled weight decay (AdamW).
                *w -= self.lr * (m_hat / (v_hat.sqrt() + self.epsilon) + self.weight_decay * *w);
            }
        }
    }
}

/// Clips gradients to a maximum global L2 norm; returns the pre-clip norm.
pub fn clip_grad_norm(grads: &mut [(ParamId, Matrix)], max_norm: f32) -> f32 {
    let total: f32 = grads
        .iter()
        .map(|(_, g)| g.data().iter().map(|x| x * x).sum::<f32>())
        .sum::<f32>()
        .sqrt();
    if total > max_norm && total > 0.0 {
        let scale = max_norm / total;
        for (_, g) in grads.iter_mut() {
            for x in g.data_mut() {
                *x *= scale;
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::mse;
    use crate::tape::Tape;

    /// Adam must drive a simple quadratic to its minimum.
    #[test]
    fn adam_minimizes_quadratic() {
        let mut store = ParamStore::new();
        let w = store.alloc(Matrix::row_vector(vec![5.0, -3.0]));
        let target = Matrix::row_vector(vec![1.0, 2.0]);
        let mut opt = Adam::new(0.05, 0.0);
        for _ in 0..500 {
            let mut tape = Tape::new();
            let wv = tape.param(&store, w);
            let (_, grad) = mse(tape.value(wv), &target);
            let g = tape.backward(wv, grad);
            let pg = tape.param_grads(&g);
            opt.step(&mut store, &pg);
        }
        let final_w = store.value(w);
        assert!((final_w.data()[0] - 1.0).abs() < 1e-2, "{final_w:?}");
        assert!((final_w.data()[1] - 2.0).abs() < 1e-2, "{final_w:?}");
        assert_eq!(opt.steps(), 500);
    }

    /// Weight decay pulls unused weights toward zero.
    #[test]
    fn weight_decay_shrinks_params() {
        let mut store = ParamStore::new();
        let w = store.alloc(Matrix::row_vector(vec![1.0]));
        let mut opt = Adam::new(0.01, 0.5);
        for _ in 0..200 {
            // Zero gradient: only decay acts.
            let grads = vec![(w, Matrix::zeros(1, 1))];
            opt.step(&mut store, &grads);
        }
        assert!(store.value(w).data()[0].abs() < 0.5);
    }

    #[test]
    fn clip_rescales_large_gradients() {
        let mut store = ParamStore::new();
        let w = store.alloc(Matrix::row_vector(vec![0.0]));
        let mut grads = vec![(w, Matrix::row_vector(vec![3.0, 4.0]))];
        let norm = clip_grad_norm(&mut grads, 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        let clipped: f32 = grads[0]
            .1
            .data()
            .iter()
            .map(|x| x * x)
            .sum::<f32>()
            .sqrt();
        assert!((clipped - 1.0).abs() < 1e-6);
        // Small gradients pass through untouched.
        let mut small = vec![(w, Matrix::row_vector(vec![0.1]))];
        clip_grad_norm(&mut small, 1.0);
        assert_eq!(small[0].1.data(), &[0.1]);
    }
}
