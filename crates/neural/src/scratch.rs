//! Reusable buffer arena for allocation-free inference.
//!
//! Steady-state map matching evaluates the learned probabilities millions of
//! times; allocating a handful of `Matrix` temporaries per evaluation
//! dominates small-model inference cost. [`Scratch`] keeps a pool of
//! recycled `Vec<f32>` buffers: a scorer *takes* matrices of whatever shape
//! the current batch needs and *gives* them back when done, so after a warm
//! pass over representative shapes no further heap allocations occur.
//!
//! Buffers are handed out best-fit (smallest pooled buffer whose capacity
//! suffices) so repeated identical take-sequences settle on a stable
//! buffer↔request assignment and stop growing. The arena counts fresh
//! allocations and tracks a high-water byte footprint, which the matching
//! pipeline surfaces through `MatchStats` — a steady-state run must show the
//! allocation counter standing still.

use crate::matrix::Matrix;

/// A pool of recycled `f32` buffers handed out as [`Matrix`] values.
#[derive(Debug, Default, Clone)]
pub struct Scratch {
    pool: Vec<Vec<f32>>,
    fresh_allocs: u64,
    high_water_bytes: u64,
    held_bytes: u64,
}

impl Scratch {
    /// An empty arena; buffers are created on first use.
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Takes a `rows × cols` matrix from the pool, zero-filled.
    ///
    /// Picks the smallest pooled buffer with sufficient capacity (best-fit);
    /// when none fits, the buffer growth (or fresh allocation) is counted in
    /// [`Scratch::fresh_allocs`].
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        let n = rows * cols;
        let mut best: Option<usize> = None;
        let mut largest: Option<usize> = None;
        for (i, buf) in self.pool.iter().enumerate() {
            let cap = buf.capacity();
            if cap >= n {
                if best.is_none_or(|b| cap < self.pool[b].capacity()) {
                    best = Some(i);
                }
            } else if largest.is_none_or(|l| cap > self.pool[l].capacity()) {
                largest = Some(i);
            }
        }
        let mut buf = match best.or(largest) {
            Some(i) => self.pool.swap_remove(i),
            None => Vec::new(),
        };
        if buf.capacity() < n {
            self.fresh_allocs += 1;
            self.held_bytes += ((n - buf.capacity()) * std::mem::size_of::<f32>()) as u64;
            self.high_water_bytes = self.high_water_bytes.max(self.held_bytes);
        }
        buf.clear();
        buf.resize(n, 0.0);
        Matrix::from_vec(rows, cols, buf)
    }

    /// Returns a matrix's backing buffer to the pool.
    pub fn give(&mut self, m: Matrix) {
        self.pool.push(m.into_raw());
    }

    /// Number of times `take` had to allocate or grow a buffer. Constant
    /// once the arena is warm.
    pub fn fresh_allocs(&self) -> u64 {
        self.fresh_allocs
    }

    /// Largest total capacity (in bytes) the arena has ever held across its
    /// buffers, pooled or handed out.
    pub fn high_water_bytes(&self) -> u64 {
        self.high_water_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_zero_fills_and_shapes() {
        let mut s = Scratch::new();
        let mut m = s.take(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(m.data().iter().all(|&v| v == 0.0));
        m.data_mut().fill(7.0);
        s.give(m);
        let m2 = s.take(2, 3);
        assert!(m2.data().iter().all(|&v| v == 0.0), "recycled buffer must be zeroed");
    }

    #[test]
    fn warm_arena_stops_allocating() {
        let mut s = Scratch::new();
        // Warm pass: two concurrent buffers of different sizes.
        let a = s.take(1, 4);
        let b = s.take(8, 8);
        s.give(a);
        s.give(b);
        let after_warm = s.fresh_allocs();
        assert_eq!(after_warm, 2);
        // Identical sequence again: best-fit must reuse without growth.
        for _ in 0..10 {
            let a = s.take(1, 4);
            let b = s.take(8, 8);
            s.give(a);
            s.give(b);
        }
        assert_eq!(s.fresh_allocs(), after_warm);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut s = Scratch::new();
        let small = s.take(1, 2);
        let big = s.take(1, 100);
        s.give(big);
        s.give(small);
        // Requesting the small shape must not consume the big buffer.
        let got = s.take(1, 2);
        assert!(got.data().len() == 2);
        let big_again = s.take(1, 100);
        assert_eq!(s.fresh_allocs(), 2, "no growth when both sizes are pooled");
        s.give(got);
        s.give(big_again);
    }

    #[test]
    fn high_water_tracks_growth() {
        let mut s = Scratch::new();
        let m = s.take(10, 10);
        assert!(s.high_water_bytes() >= 400);
        s.give(m);
        let hw = s.high_water_bytes();
        let m = s.take(1, 1);
        s.give(m);
        assert_eq!(s.high_water_bytes(), hw, "reuse must not raise the high-water mark");
    }
}
