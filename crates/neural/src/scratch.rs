//! Reusable buffer arena for allocation-free inference.
//!
//! Steady-state map matching evaluates the learned probabilities millions of
//! times; allocating a handful of `Matrix` temporaries per evaluation
//! dominates small-model inference cost. [`Scratch`] keeps a pool of
//! recycled [`AVec`] buffers: a scorer *takes* matrices of whatever shape
//! the current batch needs and *gives* them back when done, so after a warm
//! pass over representative shapes no further heap allocations occur.
//! Every handed-out buffer is 32-byte aligned ([`crate::avec::ALIGN`]), so
//! the SIMD kernels in [`crate::kernel`] may use aligned vector loads.
//!
//! Buffers are handed out best-fit (smallest pooled buffer whose capacity
//! suffices) so repeated identical take-sequences settle on a stable
//! buffer↔request assignment and stop growing. The arena counts fresh
//! allocations and tracks a high-water byte footprint, which the matching
//! pipeline surfaces through `MatchStats` — a steady-state run must show the
//! allocation counter standing still.

use crate::avec::AVec;
use crate::matrix::Matrix;

/// A pool of recycled aligned `f32` buffers handed out as [`Matrix`] values.
#[derive(Debug, Default, Clone)]
pub struct Scratch {
    pool: Vec<AVec>,
    fresh_allocs: u64,
    high_water_bytes: u64,
    held_bytes: u64,
}

impl Scratch {
    /// An empty arena; buffers are created on first use.
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Takes a `rows × cols` matrix from the pool, zero-filled.
    ///
    /// Picks the smallest pooled buffer with sufficient capacity (best-fit);
    /// when none fits, the buffer growth (or fresh allocation) is counted in
    /// [`Scratch::fresh_allocs`].
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        let n = rows * cols;
        let mut best: Option<usize> = None;
        let mut largest: Option<usize> = None;
        for (i, buf) in self.pool.iter().enumerate() {
            let cap = buf.capacity();
            if cap >= n {
                if best.is_none_or(|b| cap < self.pool[b].capacity()) {
                    best = Some(i);
                }
            } else if largest.is_none_or(|l| cap > self.pool[l].capacity()) {
                largest = Some(i);
            }
        }
        let mut buf = match best.or(largest) {
            Some(i) => self.pool.swap_remove(i),
            None => AVec::new(),
        };
        let cap_before = buf.capacity();
        if cap_before < n {
            self.fresh_allocs += 1;
        }
        buf.resize_filled(n, 0.0);
        if buf.capacity() > cap_before {
            self.held_bytes += ((buf.capacity() - cap_before) * std::mem::size_of::<f32>()) as u64;
            self.high_water_bytes = self.high_water_bytes.max(self.held_bytes);
        }
        Matrix::from_avec(rows, cols, buf)
    }

    /// Returns a matrix's backing buffer to the pool.
    pub fn give(&mut self, m: Matrix) {
        self.pool.push(m.into_avec());
    }

    /// Number of times `take` had to allocate or grow a buffer. Constant
    /// once the arena is warm.
    pub fn fresh_allocs(&self) -> u64 {
        self.fresh_allocs
    }

    /// Largest total capacity (in bytes) the arena has ever held across its
    /// buffers, pooled or handed out.
    pub fn high_water_bytes(&self) -> u64 {
        self.high_water_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::avec::ALIGN;

    #[test]
    fn take_zero_fills_and_shapes() {
        let mut s = Scratch::new();
        let mut m = s.take(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(m.data().iter().all(|&v| v == 0.0));
        m.data_mut().fill(7.0);
        s.give(m);
        let m2 = s.take(2, 3);
        assert!(m2.data().iter().all(|&v| v == 0.0), "recycled buffer must be zeroed");
    }

    #[test]
    fn warm_arena_stops_allocating() {
        let mut s = Scratch::new();
        // Warm pass: two concurrent buffers of different sizes.
        let a = s.take(1, 4);
        let b = s.take(8, 8);
        s.give(a);
        s.give(b);
        let after_warm = s.fresh_allocs();
        assert_eq!(after_warm, 2);
        // Identical sequence again: best-fit must reuse without growth.
        for _ in 0..10 {
            let a = s.take(1, 4);
            let b = s.take(8, 8);
            s.give(a);
            s.give(b);
        }
        assert_eq!(s.fresh_allocs(), after_warm);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut s = Scratch::new();
        let small = s.take(1, 2);
        let big = s.take(1, 100);
        s.give(big);
        s.give(small);
        // Requesting the small shape must not consume the big buffer.
        let got = s.take(1, 2);
        assert!(got.data().len() == 2);
        let big_again = s.take(1, 100);
        assert_eq!(s.fresh_allocs(), 2, "no growth when both sizes are pooled");
        s.give(got);
        s.give(big_again);
    }

    #[test]
    fn high_water_tracks_growth() {
        let mut s = Scratch::new();
        let m = s.take(10, 10);
        assert!(s.high_water_bytes() >= 400);
        s.give(m);
        let hw = s.high_water_bytes();
        let m = s.take(1, 1);
        s.give(m);
        assert_eq!(s.high_water_bytes(), hw, "reuse must not raise the high-water mark");
    }

    /// Every buffer the arena hands out must be 32-byte aligned — fresh,
    /// best-fit reused, grown, and across interleaved give/take cycles —
    /// so the SIMD kernels' aligned-load fast path stays legal.
    #[test]
    fn buffers_stay_aligned_across_reuse_and_reset() {
        fn assert_aligned(m: &Matrix) {
            assert_eq!(
                m.data().as_ptr() as usize % ALIGN,
                0,
                "scratch buffer must be {ALIGN}-byte aligned"
            );
        }
        let mut s = Scratch::new();
        // Fresh allocations of assorted odd shapes.
        let shapes = [(1usize, 3usize), (5, 7), (4, 8), (9, 1), (16, 16)];
        let mut held: Vec<Matrix> = shapes.iter().map(|&(r, c)| s.take(r, c)).collect();
        for m in &held {
            assert_aligned(m);
        }
        for m in held.drain(..) {
            s.give(m);
        }
        // Best-fit reuse (same shapes, shuffled order) and growth (a shape
        // larger than anything pooled forces the largest buffer to grow).
        for &(r, c) in [(16usize, 16usize), (1, 3), (9, 1), (5, 7), (4, 8)].iter() {
            let m = s.take(r, c);
            assert_aligned(&m);
            s.give(m);
        }
        let grown = s.take(40, 33);
        assert_aligned(&grown);
        s.give(grown);
        // Reset-style churn: shrink back down to tiny shapes.
        for _ in 0..3 {
            let tiny = s.take(1, 1);
            assert_aligned(&tiny);
            s.give(tiny);
        }
    }
}
