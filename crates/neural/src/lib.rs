//! Minimal neural-network substrate for LHMM.
//!
//! The paper builds its learners on a Python message-passing framework; Rust
//! graph-learning crates are immature, so this crate implements the required
//! subset from scratch:
//!
//! * [`matrix::Matrix`] — row-major `f32` dense matrices,
//! * [`tape::Tape`] — reverse-mode automatic differentiation over matrix ops,
//! * [`layers`] — `Linear`, `Mlp`, `AdditiveAttention` (the Eq. 6/9 form),
//!   `GruCell` (for the seq2seq baselines),
//! * [`loss`] — label-smoothed cross-entropy (paper §IV-D), BCE, MSE,
//! * [`optim::Adam`] — Adam with decoupled weight decay (paper §V-A2),
//! * [`init`] — seeded Xavier/He initialization,
//! * [`kernel`] — runtime-dispatched SIMD inference kernels (AVX2/SSE2/
//!   NEON/scalar), bitwise-pinned to the scalar reference, over
//!   [`avec::AVec`] 32-byte-aligned storage.
//!
//! Everything is deterministic under a fixed seed; tests gradient-check the
//! operators against central differences.
//!
//! ```
//! use lhmm_neural::{Matrix, ParamStore, Tape};
//!
//! // f(w) = sum(relu(x·w)); compute df/dw with the tape.
//! let mut store = ParamStore::new();
//! let w = store.alloc(Matrix::from_vec(2, 1, vec![0.5, -0.25]));
//! let mut tape = Tape::new();
//! let x = tape.constant(Matrix::from_vec(1, 2, vec![2.0, 4.0]));
//! let wv = tape.param(&store, w);
//! let h = tape.matmul(x, wv);
//! let y = tape.relu(h);
//! let grads = tape.backward(y, Matrix::full(1, 1, 1.0));
//! // y = relu(2·0.5 + 4·(-0.25)) = relu(0) = 0, but the gradient flows
//! // through the pre-activation only where it is positive.
//! let dw = tape.param_grads(&grads);
//! assert_eq!(dw.len(), 1);
//! ```

// `unsafe` is denied crate-wide; the only exceptions are the two audited
// modules below — `avec` (aligned storage, two slice casts) and `kernel`
// (SIMD intrinsics) — each of which carries SAFETY comments per use and
// is additionally fenced by `lhmm-lint`'s dispatch allowlist.
#![deny(unsafe_code)]
// Learned scorers run inside the matcher's inference path:
// a panic in a forward pass voids the panic-free degradation contract,
// so `unwrap`/`expect` are denied outside test builds (ci.sh lints the
// lib target explicitly).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

#[allow(unsafe_code)]
pub mod avec;
pub mod init;
#[allow(unsafe_code)]
pub mod kernel;
pub mod layers;
pub mod loss;
pub mod matrix;
pub mod optim;
pub mod persist;
pub mod scratch;
pub mod sparse;
pub mod tape;

pub use kernel::Kernel;
pub use matrix::Matrix;
pub use scratch::Scratch;
pub use sparse::SparseMatrix;
pub use tape::{ParamId, ParamStore, Tape, Var};
