//! Reverse-mode automatic differentiation over [`Matrix`] operations.
//!
//! A [`Tape`] records every forward operation; [`Tape::backward`] walks the
//! record in reverse and accumulates gradients. Model parameters live in a
//! [`ParamStore`]; each training step copies the needed parameters onto the
//! tape with [`Tape::param`], and after backward the per-parameter gradients
//! are collected with [`Tape::param_grads`].

use crate::matrix::Matrix;
use crate::sparse::SparseMatrix;
use std::rc::Rc;
use std::sync::OnceLock;

/// Handle to a value recorded on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

/// Handle to a parameter stored in a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

/// Storage for trainable parameters plus Adam moment estimates.
#[derive(Clone, Default)]
pub struct ParamStore {
    values: Vec<Matrix>,
    pub(crate) m: Vec<Matrix>,
    pub(crate) v: Vec<Matrix>,
    // Lazily materialized transposes, consumed by the inference fast path
    // (`Matrix::matmul_transposed_into` wants weight columns contiguous).
    // Invalidated in O(1) whenever `value_mut` hands out mutable access.
    transposed: Vec<OnceLock<Matrix>>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter with its initial value.
    pub fn alloc(&mut self, init: Matrix) -> ParamId {
        let id = ParamId(self.values.len());
        self.m.push(Matrix::zeros(init.rows(), init.cols()));
        self.v.push(Matrix::zeros(init.rows(), init.cols()));
        self.transposed.push(OnceLock::new());
        self.values.push(init);
        id
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    /// Transpose of a parameter's current value, cached after first use.
    pub fn value_t(&self, id: ParamId) -> &Matrix {
        self.transposed[id.0].get_or_init(|| self.values[id.0].transpose())
    }

    /// Mutable value (used by the optimizer). Drops the cached transpose.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        self.transposed[id.0] = OnceLock::new();
        &mut self.values[id.0]
    }

    /// Number of parameters (tensors).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar weights.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(|m| m.data().len()).sum()
    }
}

enum Op {
    Leaf,
    MatMul(Var, Var),
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    // Backward needs only alpha; beta vanishes under differentiation.
    Affine(Var, f32),
    Relu(Var),
    Tanh(Var),
    Sigmoid(Var),
    SoftmaxRows(Var),
    ConcatCols(Var, Var),
    ConcatRows(Var, Var),
    GatherRows(Var, Vec<usize>),
    RepeatRow(Var),
    Transpose(Var),
    MeanRows(Var),
    AddRowBroadcast(Var, Var),
    SpMM(Rc<SparseMatrix>, Var),
}

struct Node {
    op: Op,
    value: Matrix,
}

/// The autograd tape. One tape per forward/backward pass.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    param_vars: Vec<(ParamId, Var)>,
}

/// Gradients produced by [`Tape::backward`].
pub struct Gradients {
    grads: Vec<Option<Matrix>>,
}

impl Gradients {
    /// Gradient with respect to `v`, when `v` influenced the seed.
    pub fn wrt(&self, v: Var) -> Option<&Matrix> {
        self.grads[v.0].as_ref()
    }
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, op: Op, value: Matrix) -> Var {
        debug_assert!(value.is_finite(), "non-finite value produced on tape");
        let v = Var(self.nodes.len());
        self.nodes.push(Node { op, value });
        v
    }

    /// Records a constant (gradient is tracked but not collected).
    pub fn constant(&mut self, m: Matrix) -> Var {
        self.push(Op::Leaf, m)
    }

    /// Copies a parameter's current value onto the tape, remembering the
    /// association so [`Tape::param_grads`] can report its gradient.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        let v = self.push(Op::Leaf, store.value(id).clone());
        self.param_vars.push((id, v));
        v
    }

    /// The value recorded for `v`.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    // ------------------------------------------------------------------
    // Operators
    // ------------------------------------------------------------------

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        self.push(Op::MatMul(a, b), v)
    }

    /// Elementwise sum (same shape).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(self.value(b));
        self.push(Op::Add(a, b), v)
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(&self.value(b).scale(-1.0));
        self.push(Op::Sub(a, b), v)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).hadamard(self.value(b));
        self.push(Op::Mul(a, b), v)
    }

    /// `alpha * a + beta` elementwise.
    pub fn affine(&mut self, a: Var, alpha: f32, beta: f32) -> Var {
        let v = self.value(a).map(|x| alpha * x + beta);
        self.push(Op::Affine(a, alpha), v)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(Op::Relu(a), v)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f32::tanh);
        self.push(Op::Tanh(a), v)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(Op::Sigmoid(a), v)
    }

    /// Row-wise softmax (numerically stabilized).
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let x = self.value(a);
        let mut out = Matrix::zeros(x.rows(), x.cols());
        for r in 0..x.rows() {
            let row = x.row(r);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for (o, &xi) in out.row_mut(r).iter_mut().zip(row) {
                *o = (xi - max).exp();
                sum += *o;
            }
            for o in out.row_mut(r) {
                *o /= sum;
            }
        }
        self.push(Op::SoftmaxRows(a), out)
    }

    /// Horizontal concatenation `[a | b]`.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).concat_cols(self.value(b));
        self.push(Op::ConcatCols(a, b), v)
    }

    /// Vertical concatenation: stacks `b` below `a`.
    pub fn concat_rows(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).concat_rows(self.value(b));
        self.push(Op::ConcatRows(a, b), v)
    }

    /// Stacks the selected rows of `a` (repetition allowed).
    pub fn gather_rows(&mut self, a: Var, indices: &[usize]) -> Var {
        let v = self.value(a).gather_rows(indices);
        self.push(Op::GatherRows(a, indices.to_vec()), v)
    }

    /// Repeats a 1×d row `n` times producing n×d.
    pub fn repeat_row(&mut self, a: Var, n: usize) -> Var {
        let x = self.value(a);
        assert_eq!(x.rows(), 1, "repeat_row expects a row vector");
        let mut out = Matrix::zeros(n, x.cols());
        for r in 0..n {
            out.row_mut(r).copy_from_slice(x.row(0));
        }
        self.push(Op::RepeatRow(a), out)
    }

    /// Transposed copy.
    pub fn transpose(&mut self, a: Var) -> Var {
        let v = self.value(a).transpose();
        self.push(Op::Transpose(a), v)
    }

    /// Mean over rows: n×d → 1×d.
    pub fn mean_rows(&mut self, a: Var) -> Var {
        let x = self.value(a);
        let n = x.rows().max(1);
        let mut out = Matrix::zeros(1, x.cols());
        for r in 0..x.rows() {
            for (o, &xi) in out.row_mut(0).iter_mut().zip(x.row(r)) {
                *o += xi;
            }
        }
        let out = out.scale(1.0 / n as f32);
        self.push(Op::MeanRows(a), out)
    }

    /// Adds a 1×d row vector `b` to every row of the n×d matrix `a`
    /// (bias broadcast).
    pub fn add_row_broadcast(&mut self, a: Var, b: Var) -> Var {
        let x = self.value(a);
        let bias = self.value(b);
        assert_eq!(bias.rows(), 1, "bias must be a row vector");
        assert_eq!(bias.cols(), x.cols(), "bias width mismatch");
        let mut out = x.clone();
        for r in 0..out.rows() {
            for (o, &bi) in out.row_mut(r).iter_mut().zip(bias.row(0)) {
                *o += bi;
            }
        }
        self.push(Op::AddRowBroadcast(a, b), out)
    }

    /// Sparse × dense product `sp × a`. The sparse matrix is a fixed
    /// structure (graph adjacency); only `a` receives gradients.
    pub fn spmm(&mut self, sp: &Rc<SparseMatrix>, a: Var) -> Var {
        let v = sp.matmul_dense(self.value(a));
        self.push(Op::SpMM(Rc::clone(sp), a), v)
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Back-propagates `seed_grad` (the gradient of some scalar loss with
    /// respect to `seed`'s value) through the recorded graph.
    pub fn backward(&self, seed: Var, seed_grad: Matrix) -> Gradients {
        assert_eq!(
            seed_grad.shape(),
            self.value(seed).shape(),
            "seed gradient shape mismatch"
        );
        let mut grads: Vec<Option<Matrix>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[seed.0] = Some(seed_grad);

        for i in (0..self.nodes.len()).rev() {
            // Clone rather than take: leaf gradients must survive for
            // param_grads / wrt after the sweep.
            let Some(g) = grads[i].clone() else { continue };
            let node = &self.nodes[i];
            match &node.op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let ga = g.matmul(&self.value(*b).transpose());
                    let gb = self.value(*a).transpose().matmul(&g);
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::Add(a, b) => {
                    accumulate(&mut grads, *a, g.clone());
                    accumulate(&mut grads, *b, g.clone());
                }
                Op::Sub(a, b) => {
                    accumulate(&mut grads, *a, g.clone());
                    accumulate(&mut grads, *b, g.scale(-1.0));
                }
                Op::Mul(a, b) => {
                    let ga = g.hadamard(self.value(*b));
                    let gb = g.hadamard(self.value(*a));
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::Affine(a, alpha) => {
                    accumulate(&mut grads, *a, g.scale(*alpha));
                }
                Op::Relu(a) => {
                    let x = self.value(*a);
                    let mut ga = g;
                    for (gi, &xi) in ga.data_mut().iter_mut().zip(x.data()) {
                        if xi <= 0.0 {
                            *gi = 0.0;
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::Tanh(a) => {
                    let y = &node.value;
                    let mut ga = g;
                    for (gi, &yi) in ga.data_mut().iter_mut().zip(y.data()) {
                        *gi *= 1.0 - yi * yi;
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::Sigmoid(a) => {
                    let y = &node.value;
                    let mut ga = g;
                    for (gi, &yi) in ga.data_mut().iter_mut().zip(y.data()) {
                        *gi *= yi * (1.0 - yi);
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::SoftmaxRows(a) => {
                    let y = &node.value;
                    let mut ga = Matrix::zeros(y.rows(), y.cols());
                    for r in 0..y.rows() {
                        let dot: f32 = g
                            .row(r)
                            .iter()
                            .zip(y.row(r))
                            .map(|(gi, yi)| gi * yi)
                            .sum();
                        for ((o, &gi), &yi) in
                            ga.row_mut(r).iter_mut().zip(g.row(r)).zip(y.row(r))
                        {
                            *o = yi * (gi - dot);
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::ConcatCols(a, b) => {
                    let ca = self.value(*a).cols();
                    let rows = g.rows();
                    let mut ga = Matrix::zeros(rows, ca);
                    let mut gb = Matrix::zeros(rows, g.cols() - ca);
                    for r in 0..rows {
                        ga.row_mut(r).copy_from_slice(&g.row(r)[..ca]);
                        gb.row_mut(r).copy_from_slice(&g.row(r)[ca..]);
                    }
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::ConcatRows(a, b) => {
                    let ra = self.value(*a).rows();
                    let cols = g.cols();
                    let mut ga = Matrix::zeros(ra, cols);
                    let mut gb = Matrix::zeros(g.rows() - ra, cols);
                    for r in 0..ra {
                        ga.row_mut(r).copy_from_slice(g.row(r));
                    }
                    for r in ra..g.rows() {
                        gb.row_mut(r - ra).copy_from_slice(g.row(r));
                    }
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::GatherRows(a, indices) => {
                    let src = self.value(*a);
                    let mut ga = Matrix::zeros(src.rows(), src.cols());
                    for (i, &idx) in indices.iter().enumerate() {
                        for (o, &gi) in ga.row_mut(idx).iter_mut().zip(g.row(i)) {
                            *o += gi;
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::RepeatRow(a) => {
                    let mut ga = Matrix::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for (o, &gi) in ga.row_mut(0).iter_mut().zip(g.row(r)) {
                            *o += gi;
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::Transpose(a) => {
                    accumulate(&mut grads, *a, g.transpose());
                }
                Op::MeanRows(a) => {
                    let x = self.value(*a);
                    let n = x.rows().max(1) as f32;
                    let mut ga = Matrix::zeros(x.rows(), x.cols());
                    for r in 0..x.rows() {
                        for (o, &gi) in ga.row_mut(r).iter_mut().zip(g.row(0)) {
                            *o = gi / n;
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::SpMM(sp, a) => {
                    accumulate(&mut grads, *a, sp.transpose_matmul_dense(&g));
                }
                Op::AddRowBroadcast(a, b) => {
                    let mut gb = Matrix::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for (o, &gi) in gb.row_mut(0).iter_mut().zip(g.row(r)) {
                            *o += gi;
                        }
                    }
                    accumulate(&mut grads, *a, g.clone());
                    accumulate(&mut grads, *b, gb);
                }
            }
        }
        Gradients { grads }
    }

    /// Collects per-parameter gradients, summing when a parameter was placed
    /// on the tape more than once. Parameters that did not influence the
    /// seed are omitted.
    pub fn param_grads(&self, grads: &Gradients) -> Vec<(ParamId, Matrix)> {
        let mut out: Vec<(ParamId, Matrix)> = Vec::new();
        for &(pid, var) in &self.param_vars {
            if let Some(g) = grads.wrt(var) {
                if let Some(entry) = out.iter_mut().find(|(id, _)| *id == pid) {
                    entry.1.add_assign(g);
                } else {
                    out.push((pid, g.clone()));
                }
            }
        }
        out
    }
}

fn accumulate(grads: &mut [Option<Matrix>], v: Var, g: Matrix) {
    match &mut grads[v.0] {
        Some(existing) => existing.add_assign(&g),
        slot @ None => *slot = Some(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed_ones(tape: &Tape, v: Var) -> Matrix {
        let (r, c) = tape.value(v).shape();
        Matrix::full(r, c, 1.0)
    }

    #[test]
    fn value_t_caches_and_invalidates() {
        let mut store = ParamStore::new();
        let id = store.alloc(Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        assert_eq!(store.value_t(id), &store.value(id).transpose());
        // Mutation through value_mut must drop the cached transpose.
        store.value_mut(id).data_mut()[0] = 42.0;
        assert_eq!(store.value_t(id)[(0, 0)], 42.0);
        // Cloned stores keep working (OnceLock clones by value).
        let cloned = store.clone();
        assert_eq!(cloned.value_t(id), store.value_t(id));
    }

    #[test]
    fn matmul_gradients() {
        // f = sum(A @ B); dA = ones @ B^T, dB = A^T @ ones
        let mut t = Tape::new();
        let a = t.constant(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = t.constant(Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]));
        let c = t.matmul(a, b);
        let g = t.backward(c, seed_ones(&t, c));
        assert_eq!(g.wrt(a).unwrap().data(), &[11.0, 15.0, 11.0, 15.0]);
        assert_eq!(g.wrt(b).unwrap().data(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn chain_through_activation() {
        // f = sum(relu(x)); negative entries get zero grad.
        let mut t = Tape::new();
        let x = t.constant(Matrix::from_vec(1, 4, vec![-1.0, 0.5, -0.2, 2.0]));
        let y = t.relu(x);
        let g = t.backward(y, seed_ones(&t, y));
        assert_eq!(g.wrt(x).unwrap().data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_grad_sums_to_zero() {
        let mut t = Tape::new();
        let x = t.constant(Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]));
        let y = t.softmax_rows(x);
        for r in 0..2 {
            let s: f32 = t.value(y).row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Seed with an arbitrary gradient; softmax grad rows must sum to ~0.
        let seed = Matrix::from_vec(2, 3, vec![0.3, -0.1, 0.7, 1.0, 0.0, -0.5]);
        let g = t.backward(y, seed);
        let gx = g.wrt(x).unwrap();
        for r in 0..2 {
            let s: f32 = gx.row(r).iter().sum();
            assert!(s.abs() < 1e-6, "row {r} grad sum {s}");
        }
    }

    #[test]
    fn gather_rows_scatter_adds() {
        let mut t = Tape::new();
        let x = t.constant(Matrix::from_vec(3, 2, vec![1.0; 6]));
        let y = t.gather_rows(x, &[0, 2, 0]);
        let g = t.backward(y, seed_ones(&t, y));
        // Row 0 gathered twice, row 1 never, row 2 once.
        assert_eq!(g.wrt(x).unwrap().data(), &[2.0, 2.0, 0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn shared_param_grads_accumulate() {
        let mut store = ParamStore::new();
        let w = store.alloc(Matrix::from_vec(1, 2, vec![2.0, 3.0]));
        let mut t = Tape::new();
        let w1 = t.param(&store, w);
        let w2 = t.param(&store, w);
        let y = t.add(w1, w2); // y = 2w
        let g = t.backward(y, seed_ones(&t, y));
        let pg = t.param_grads(&g);
        assert_eq!(pg.len(), 1);
        assert_eq!(pg[0].1.data(), &[2.0, 2.0]);
    }

    #[test]
    fn broadcast_and_mean_grads() {
        let mut t = Tape::new();
        let x = t.constant(Matrix::zeros(3, 2));
        let b = t.constant(Matrix::from_vec(1, 2, vec![1.0, -1.0]));
        let y = t.add_row_broadcast(x, b);
        let m = t.mean_rows(y);
        let g = t.backward(m, seed_ones(&t, m));
        // d(mean)/dx = 1/3 everywhere; bias grad sums over rows = 1.
        for &v in g.wrt(x).unwrap().data() {
            assert!((v - 1.0 / 3.0).abs() < 1e-6);
        }
        assert_eq!(g.wrt(b).unwrap().data(), &[1.0, 1.0]);
    }

    #[test]
    fn spmm_gradient_is_transpose_product() {
        use crate::sparse::SparseMatrix;
        let sp = Rc::new(SparseMatrix::from_rows(
            2,
            3,
            &[vec![(0, 2.0), (2, 1.0)], vec![(1, 3.0)]],
        ));
        let mut t = Tape::new();
        let x = t.constant(Matrix::from_vec(3, 2, vec![1.0; 6]));
        let y = t.spmm(&sp, x);
        assert_eq!(t.value(y).shape(), (2, 2));
        let g = t.backward(y, Matrix::full(2, 2, 1.0));
        let gx = g.wrt(x).unwrap();
        let expected = sp.transpose_matmul_dense(&Matrix::full(2, 2, 1.0));
        assert_eq!(gx, &expected);
    }

    /// Central-difference gradient check over a composite network touching
    /// most operators.
    #[test]
    fn numerical_gradcheck_composite() {
        let build = |wdata: &[f32]| -> f32 {
            let mut t = Tape::new();
            let w = t.constant(Matrix::from_vec(2, 3, wdata.to_vec()));
            let x = t.constant(Matrix::from_vec(2, 2, vec![0.3, -0.7, 1.2, 0.5]));
            let h = t.matmul(x, w); // 2x3
            let h = t.tanh(h);
            let s = t.softmax_rows(h);
            let q = t.sigmoid(s);
            let m = t.mean_rows(q); // 1x3
            let tt = t.transpose(m); // 3x1
            let val: f32 = t.value(tt).data().iter().sum();
            val
        };
        let w0: Vec<f32> = vec![0.1, -0.2, 0.4, 0.8, -0.5, 0.3];

        // Analytic gradient.
        let mut t = Tape::new();
        let w = t.constant(Matrix::from_vec(2, 3, w0.clone()));
        let x = t.constant(Matrix::from_vec(2, 2, vec![0.3, -0.7, 1.2, 0.5]));
        let h = t.matmul(x, w);
        let h = t.tanh(h);
        let s = t.softmax_rows(h);
        let q = t.sigmoid(s);
        let m = t.mean_rows(q);
        let tt = t.transpose(m);
        let g = t.backward(tt, Matrix::full(3, 1, 1.0));
        let analytic = g.wrt(w).unwrap().clone();

        // Numerical gradient.
        let h_step = 1e-3f32;
        for i in 0..w0.len() {
            let mut wp = w0.clone();
            wp[i] += h_step;
            let mut wm = w0.clone();
            wm[i] -= h_step;
            let num = (build(&wp) - build(&wm)) / (2.0 * h_step);
            let ana = analytic.data()[i];
            assert!(
                (num - ana).abs() < 2e-2_f32.max(0.05 * num.abs()),
                "grad[{i}] numeric {num} analytic {ana}"
            );
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// For f = sum(x ∘ y) the gradients are exactly the other operand.
        #[test]
        fn mul_grad_is_other_operand(
            xs in proptest::collection::vec(-3.0..3.0f32, 6),
            ys in proptest::collection::vec(-3.0..3.0f32, 6),
        ) {
            let mut t = Tape::new();
            let x = t.constant(Matrix::from_vec(2, 3, xs.clone()));
            let y = t.constant(Matrix::from_vec(2, 3, ys.clone()));
            let z = t.mul(x, y);
            let g = t.backward(z, Matrix::full(2, 3, 1.0));
            prop_assert_eq!(g.wrt(x).unwrap().data(), &ys[..]);
            prop_assert_eq!(g.wrt(y).unwrap().data(), &xs[..]);
        }

        /// Linear layer gradcheck: f = sum(tanh(x @ w)).
        #[test]
        fn linear_tanh_gradcheck(
            ws in proptest::collection::vec(-1.0..1.0f32, 4),
            xs in proptest::collection::vec(-1.0..1.0f32, 4),
        ) {
            let f = |wd: &[f32]| -> f32 {
                let mut t = Tape::new();
                let w = t.constant(Matrix::from_vec(2, 2, wd.to_vec()));
                let x = t.constant(Matrix::from_vec(2, 2, xs.clone()));
                let y = t.matmul(x, w);
                let y = t.tanh(y);
                t.value(y).sum()
            };
            let mut t = Tape::new();
            let w = t.constant(Matrix::from_vec(2, 2, ws.clone()));
            let x = t.constant(Matrix::from_vec(2, 2, xs.clone()));
            let y = t.matmul(x, w);
            let y = t.tanh(y);
            let g = t.backward(y, Matrix::full(2, 2, 1.0));
            let analytic = g.wrt(w).unwrap().clone();
            let h = 1e-2f32;
            for i in 0..4 {
                let mut wp = ws.clone(); wp[i] += h;
                let mut wm = ws.clone(); wm[i] -= h;
                let num = (f(&wp) - f(&wm)) / (2.0 * h);
                let ana = analytic.data()[i];
                prop_assert!((num - ana).abs() < 0.05 + 0.05 * num.abs(),
                    "grad[{}] num {} ana {}", i, num, ana);
            }
        }
    }
}
