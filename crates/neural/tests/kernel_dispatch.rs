//! Dispatch-matrix equivalence suite: every kernel path compiled into
//! this binary must be **bitwise**-equal to the scalar reference — on
//! random shapes, on remainder tails (`j % lanes != 0`), on degenerate
//! shapes (`k = 0`, empty rows/columns), and through the full layer and
//! attention entry points. `to_bits` comparisons throughout: the contract
//! is byte identity, not tolerance.

use lhmm_neural::kernel::{self, Kernel};
use lhmm_neural::layers::{Activation, AdditiveAttention, Linear, Mlp};
use lhmm_neural::{Matrix, ParamStore, Scratch};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn assert_bits_eq(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape");
    for (x, y) in a.data().iter().zip(b.data()) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: bit divergence");
    }
}

/// Runs `op` under every supported kernel and asserts its output matches
/// the scalar run bit for bit.
fn check_all_kernels(what: &str, mut op: impl FnMut() -> Matrix) {
    let reference = {
        let _g = kernel::force_scope(Kernel::Scalar);
        op()
    };
    for k in kernel::supported_kernels() {
        let _g = kernel::force_scope(k);
        let got = op();
        assert_bits_eq(&reference, &got, &format!("{what} under {k:?}"));
    }
}

fn mat_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0..10.0f32, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random shapes spanning the interesting boundaries: n crosses both
    /// vector widths (4 and 8) and their remainders, k crosses the 4-step
    /// fusion boundary, m includes 1 (row-vector matmuls).
    #[test]
    fn matmul_bitwise_equal_across_kernels(
        m in 1usize..6,
        kk in 0usize..11,
        n in 1usize..20,
        seed in 0u64..100_000,
    ) {
        let lhs_vals: Vec<f32> = (0..m * kk)
            .map(|i| ((i as f32 + seed as f32 % 97.0) * 0.37).sin() * 4.0)
            .collect();
        let rhs_vals: Vec<f32> = (0..kk * n)
            .map(|i| ((i as f32 - (seed % 13) as f32) * 0.23).cos() * 4.0)
            .collect();
        let a = Matrix::from_vec(m, kk, lhs_vals);
        let b = Matrix::from_vec(kk, n, rhs_vals);
        let reference = {
            let mut out = Matrix::full(m, n, f32::NAN);
            kernel::matmul_into_with(Kernel::Scalar, &a, &b, &mut out);
            out
        };
        for k in kernel::supported_kernels() {
            let mut out = Matrix::full(m, n, f32::NAN); // dirty output buffer
            kernel::matmul_into_with(k, &a, &b, &mut out);
            for (x, y) in reference.data().iter().zip(out.data()) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "matmul diverged under {:?}", k);
            }
        }
    }

    /// The fused layer pass (matmul + bias + activation) through the
    /// dispatcher, every activation, including widths that are exact
    /// multiples of the vector lanes (aligned-load path) and not.
    #[test]
    fn linear_infer_into_bitwise_equal_across_kernels(
        rows in 1usize..5,
        in_dim in 1usize..9,
        out_sel in 0usize..6,
        x in mat_strategy(4, 8),
        layer_seed in 0u64..1000,
    ) {
        let out_dim = [1, 3, 4, 8, 11, 16][out_sel];
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(layer_seed);
        let layer = Linear::new(&mut store, in_dim, out_dim, &mut rng);
        let x = Matrix::from_vec(
            rows,
            in_dim,
            (0..rows * in_dim).map(|i| x.data()[i % 32]).collect(),
        );
        for act in [Activation::Identity, Activation::Relu, Activation::Tanh, Activation::Sigmoid] {
            let reference = {
                let _g = kernel::force_scope(Kernel::Scalar);
                let mut out = Matrix::full(rows, out_dim, f32::NAN);
                layer.infer_into(&store, &x, &mut out, act);
                out
            };
            for k in kernel::supported_kernels() {
                let _g = kernel::force_scope(k);
                let mut out = Matrix::full(rows, out_dim, f32::NAN);
                layer.infer_into(&store, &x, &mut out, act);
                for (a, b) in reference.data().iter().zip(out.data()) {
                    prop_assert_eq!(
                        a.to_bits(), b.to_bits(),
                        "infer_into diverged under {:?} ({:?})", k, act
                    );
                }
            }
        }
    }

    /// Attention over memoized tanh halves: both the legacy row-major
    /// entry point and the transposed restructured one, for key-set sizes
    /// crossing the 4- and 8-lane boundaries (the score loop vectorizes
    /// over keys).
    #[test]
    fn attention_bitwise_equal_across_kernels(
        n_keys in 1usize..20,
        seed in 0u64..1000,
    ) {
        let dim = 6;
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let att = AdditiveAttention::new(&mut store, dim, 5, &mut rng);
        let keys = Matrix::from_vec(
            n_keys,
            dim,
            (0..n_keys * dim).map(|i| ((i as f32 + seed as f32) * 0.17).cos()).collect(),
        );
        let query = Matrix::from_vec(1, dim, (0..dim).map(|i| (i as f32 * 0.41).sin()).collect());

        let mut tanh_keys = Matrix::zeros(n_keys, att.proj_dim());
        att.project_keys_into(&store, &keys, &mut tanh_keys);
        for v in tanh_keys.data_mut() {
            *v = v.tanh();
        }
        let tanh_keys_t = tanh_keys.transpose();
        let mut tanh_q = Matrix::zeros(1, att.proj_dim());
        att.project_queries_into(&store, &query, &mut tanh_q);
        for v in tanh_q.data_mut() {
            *v = v.tanh();
        }

        let mut scratch = Scratch::new();
        let mut reference = vec![0.0f32; dim];
        {
            let _g = kernel::force_scope(Kernel::Scalar);
            att.attend_tanh(&store, tanh_q.row(0), &tanh_keys, &keys, &mut scratch, &mut reference);
        }
        let mut ctx = vec![0.0f32; dim];
        for k in kernel::supported_kernels() {
            let _g = kernel::force_scope(k);
            att.attend_tanh(&store, tanh_q.row(0), &tanh_keys, &keys, &mut scratch, &mut ctx);
            for (a, b) in reference.iter().zip(&ctx) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "attend_tanh diverged under {:?}", k);
            }
            att.attend_tanh_t(&store, tanh_q.row(0), &tanh_keys_t, &keys, &mut scratch, &mut ctx);
            for (a, b) in reference.iter().zip(&ctx) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "attend_tanh_t diverged under {:?}", k);
            }
        }
    }
}

/// Degenerate shapes the proptest ranges may undersample: inner dimension
/// zero (result must be exactly the zero matrix on every path), empty row
/// and column extents, and single-lane widths.
#[test]
fn degenerate_shapes_bitwise_equal() {
    for (m, kk, n) in [
        (3usize, 0usize, 5usize), // k = 0: pure fill(0.0)
        (0, 4, 5),                // no output rows
        (2, 7, 1),                // single output column (j tail only)
        (1, 1, 9),                // 8-lane body + 1 tail
        (1, 4, 8),                // exact AVX2 width (aligned path)
        (1, 4, 4),                // exact SSE2/NEON width
    ] {
        let a = Matrix::from_vec(m, kk, (0..m * kk).map(|i| i as f32 * 0.3 - 1.0).collect());
        let b = Matrix::from_vec(kk, n, (0..kk * n).map(|i| 2.0 - i as f32 * 0.2).collect());
        let mut reference = Matrix::full(m, n, f32::NAN);
        kernel::matmul_into_with(Kernel::Scalar, &a, &b, &mut reference);
        if kk == 0 {
            assert!(reference.data().iter().all(|&v| v == 0.0));
        }
        for k in kernel::supported_kernels() {
            let mut out = Matrix::full(m, n, f32::NAN);
            kernel::matmul_into_with(k, &a, &b, &mut out);
            assert_bits_eq(&reference, &out, &format!("degenerate {m}x{kk}x{n} under {k:?}"));
        }
    }
}

/// A whole MLP forward through `infer_with` (scratch-arena path) must be
/// kernel-invariant — this exercises dispatch on reused, potentially
/// dirty arena buffers rather than fresh matrices.
#[test]
fn mlp_infer_with_is_kernel_invariant() {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(42);
    let mlp = Mlp::new(&mut store, &[7, 12, 5, 1], Activation::Tanh, &mut rng);
    let x = Matrix::from_vec(6, 7, (0..42).map(|i| (i as f32 * 0.19).sin()).collect());
    let mut scratch = Scratch::new();
    check_all_kernels("mlp infer_with", || {
        let out = mlp.infer_with(&store, &x, &mut scratch);
        let copy = out.clone();
        scratch.give(out);
        copy
    });
}

/// `LHMM_KERNEL` parsing contract: every supported name round-trips, junk
/// is rejected (the dispatcher then falls back to detection).
#[test]
fn kernel_names_parse() {
    for k in kernel::supported_kernels() {
        assert_eq!(kernel::Kernel::parse(k.name()), Some(k));
    }
    assert_eq!(kernel::Kernel::parse("fastest"), None);
    assert_eq!(kernel::Kernel::parse(""), None);
}
