//@ path: crates/core/src/fx_hash_iteration.rs
// True positives for R3 `hash-iteration`: iteration order of a hash
// collection leaking into result-affecting code, with no sort in sight.

use std::collections::{HashMap, HashSet};

pub fn total(weights: &HashMap<u32, f64>) -> f64 {
    let mut acc = 0.0;
    for (_k, w) in weights.iter() { //~ hash-iteration
        acc += w;
    }
    acc
}

pub fn collect_ids(seen: &HashSet<u64>) -> Vec<u64> {
    let mut out = Vec::new();
    for id in seen { //~ hash-iteration
        out.push(*id);
    }
    out
}
