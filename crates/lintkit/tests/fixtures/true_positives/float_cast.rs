//@ path: crates/core/src/fx_float_cast.rs
// True positives for R5 `float-cast`: truncating `as` casts of floats.

pub fn bucketize(score: f64, scale: f64) -> usize {
    let idx = score as usize; //~ float-cast
    let cap = 2.75 as u32; //~ float-cast
    let root = (scale * 10.0).sqrt() as i64; //~ float-cast
    let fine = score.floor() as usize; // explicit rounding: not flagged
    idx + fine + cap.min(root.unsigned_abs() as u32) as usize
}
