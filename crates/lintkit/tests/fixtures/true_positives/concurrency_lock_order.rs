//@ path: crates/serve/src/fx_lock_order.rs
// True positives for `lock-order`: inconsistent acquisition order between
// two functions closes a cycle in the per-file lock graph, and a
// re-entrant `.lock()` is a self-cycle. The finding anchors on the inner
// acquisition (the edge that closes the cycle).

pub struct Pair {
    alpha: OrderedMutex<u32>,
    beta: OrderedMutex<u32>,
    gamma: OrderedMutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let a = self.alpha.lock();
        let b = self.beta.lock(); //~ lock-order
        *a + *b
    }

    pub fn backward(&self) -> u32 {
        let b = self.beta.lock();
        let a = self.alpha.lock(); //~ lock-order
        *b - *a
    }

    pub fn reentrant(&self) -> u32 {
        let first = self.gamma.lock();
        let second = self.gamma.lock(); //~ lock-order
        *first + *second
    }
}
