//@ path: crates/serve/src/fx_guard_blocking.rs
// True positives for `guard-across-blocking`: a live lock guard held
// across a blocking call — sleeps, stream I/O, thread joins, channel
// operations, connects, and a `Condvar` wait that consumes a *different*
// lock's guard.

impl Shard {
    pub fn doze(&self, backoff: Duration) {
        let slot = self.slots.lock();
        std::thread::sleep(backoff); //~ guard-across-blocking
        slot.touch();
    }

    pub fn flush_frame(&self, stream: &mut TcpStream, frame: &[u8]) {
        let conn = self.state.lock();
        let _ = stream.write_all(frame); //~ guard-across-blocking
        conn.mark_flushed();
    }

    pub fn reap(&self, worker: JoinHandle<()>) {
        let table = self.threads.lock();
        let _ = worker.join(); //~ guard-across-blocking
        table.note_reaped();
    }

    pub fn pump(&self, rx: &Receiver<Job>, tx: &Sender<Job>) {
        let held = self.dispatch.lock();
        let job = rx.recv(); //~ guard-across-blocking
        if let Ok(job) = job {
            let _ = tx.send(job); //~ guard-across-blocking
        }
        held.bump();
    }

    pub fn dial(&self, addr: SocketAddr) {
        let pool = self.conns.lock();
        let sock = TcpStream::connect(addr); //~ guard-across-blocking
        pool.adopt(sock);
    }

    pub fn cross_wait(&self, dur: Duration) {
        let held = self.table.lock();
        let st = self.queue.lock();
        let st = self.not_empty.wait_timeout(st, dur); //~ guard-across-blocking
        held.merge(st);
    }
}
