//@ path: crates/core/src/fx_float_cmp.rs
// True positives for R1 `float-cmp`. Each trailing tilde marker names the
// rule(s) expected to fire on that line.

pub fn compare(a: f64, b: f64) -> bool {
    if a == 0.0 { //~ float-cmp
        return false;
    }
    let exact = b != 1.5; //~ float-cmp
    let ord = a.partial_cmp(&b); //~ float-cmp
    exact && ord.is_some()
}
