//@ path: crates/neural/src/fx_panic_path.rs
// True positives for R4 `panic-path` in library code.

pub fn read(x: Option<u32>, y: Result<u32, ()>) -> u32 {
    let a = x.unwrap(); //~ panic-path
    let b = y.expect("value present"); //~ panic-path
    if a > b {
        panic!("inverted"); //~ panic-path
    }
    if a == b {
        todo!(); //~ panic-path
    }
    unimplemented!() //~ panic-path
}
