//@ path: crates/serve/src/fx_unsafe_fence.rs
// True positives for `unsafe-fence`: `unsafe`, `static mut`, and global
// `static … OnceLock` dispatch state are legal only in the allowlisted
// SIMD modules (`crates/neural/src/{avec,kernel}.rs`) — anywhere else the
// fence fires so the no-UB surface stays auditable.

static ROUTE_FN: OnceLock<fn(u64) -> usize> = OnceLock::new(); //~ unsafe-fence

static mut HITS: u64 = 0; //~ unsafe-fence

pub fn record_hit() -> u64 {
    unsafe { //~ unsafe-fence
        HITS += 1;
        HITS
    }
}
