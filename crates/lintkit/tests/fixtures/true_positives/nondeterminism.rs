//@ path: crates/core/src/fx_nondeterminism.rs
// True positives for R2 `nondeterminism`: wall clocks and OS entropy in
// the inference zone.

use std::time::Instant;

pub fn profile() -> f64 {
    let t0 = Instant::now(); //~ nondeterminism
    let _wall = std::time::SystemTime::now(); //~ nondeterminism
    let mut _rng = thread_rng(); //~ nondeterminism
    let _other = StdRng::from_entropy(); //~ nondeterminism
    t0.elapsed().as_secs_f64()
}
