//@ path: crates/eval/src/fx_waiver.rs
// Waiver hygiene: a waiver without a justification, or naming an unknown
// rule, is itself a finding and suppresses nothing. A well-formed waiver
// (reason after the colon) suppresses the line below and is not expected
// to appear among unwaived findings.

pub fn f(x: Option<u32>, y: Option<u32>, z: Option<u32>) -> u32 {
    let a = x.unwrap(); // lint:allow(panic-path) //~ waiver panic-path
    let b = y.unwrap(); // lint:allow(everything): zeal //~ waiver panic-path
    // lint:allow(panic-path): fixture demonstrates a valid waiver
    let c = z.unwrap();
    a + b + c
}
