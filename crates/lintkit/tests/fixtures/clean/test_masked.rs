//@ path: crates/core/src/fx_clean_tests.rs
// Everything inside `#[cfg(test)]` / `#[test]` regions is exempt from all
// rules: tests may unwrap, compare floats, read clocks, iterate hash maps.

pub fn double(x: u32) -> u32 {
    x * 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn test_code_may_do_all_of_it() {
        let t = Instant::now();
        let mut m: HashMap<u32, f64> = HashMap::new();
        m.insert(1, 0.5);
        let mut acc = 0.0;
        for (_k, v) in m.iter() {
            acc += *v;
        }
        assert!(acc == 0.5);
        assert!(double(2) == 4);
        let opt: Option<f64> = Some(acc);
        let val = opt.unwrap();
        assert!(val.partial_cmp(&0.5).is_some());
        assert!(t.elapsed().as_secs_f64() >= 0.0);
        let idx = val as usize;
        assert!(idx == 0);
    }
}
