//@ path: crates/core/src/timing.rs
// The single audited wall-clock access point is allowlisted by path: the
// `nondeterminism` rule does not apply here (and only here).

use std::time::Instant;

pub struct StageTimer(Instant);

impl StageTimer {
    pub fn start() -> Self {
        StageTimer(Instant::now())
    }
}
