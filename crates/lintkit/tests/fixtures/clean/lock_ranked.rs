//@ path: crates/core/src/fx_lock_ranked.rs
// Must-not-flag corpus for `lock-order`: every function acquires in the
// same global order (alpha before beta before gamma), so the lock graph
// is a DAG; RwLock read-then-write re-acquisition drops the read guard
// first; buffered `io::Read`/`io::Write` calls are not acquisitions.

impl Ranked {
    pub fn sum(&self) -> u64 {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        *a + *b
    }

    pub fn chain(&self) -> u64 {
        let a = self.alpha.lock();
        let g = self.gamma.lock();
        *a * *g
    }

    pub fn deep(&self) -> u64 {
        let b = self.beta.lock();
        let g = self.gamma.lock();
        *b - *g
    }

    /// Read, release, then write: without the `drop` the upgrade would be
    /// a re-entrant self-edge.
    pub fn upgrade(&self) -> usize {
        let r = self.table.read();
        let n = r.len();
        drop(r);
        let mut w = self.table.write();
        w.truncate(n);
        n
    }

    /// `io::Read`/`io::Write` always take a buffer, so the zero-argument
    /// acquisition pattern never matches them.
    pub fn copy(&self, stream: &mut TcpStream, buf: &mut [u8]) -> usize {
        let n = stream.read(buf).unwrap_or(0);
        let _ = stream.write(&buf[..n]);
        n
    }
}
