//@ path: crates/core/src/fx_clean_idioms.rs
// The replacement idioms the rules point at, all of which must stay
// silent: `total_cmp`, `unwrap_or`, BTree iteration, explicit rounding,
// tuple indices and ranges (not float literals).

use std::collections::BTreeMap;

pub fn summarize(xs: &[f64]) -> f64 {
    let mut by_rank: BTreeMap<usize, f64> = BTreeMap::new();
    for (i, x) in xs.iter().enumerate() {
        by_rank.insert(i, *x);
    }
    let best = xs.iter().copied().max_by(|a, b| a.total_cmp(b)).unwrap_or(0.0);
    let pair = (best, 0.5f64);
    let floor_idx = best.floor() as usize;
    let span = 0..xs.len();
    let total: f64 = by_rank.values().sum();
    total + pair.0 + pair.1 + (floor_idx.min(span.len()) as u32) as f64
}
