//@ path: crates/serve/src/fx_clean_zone.rs
// The service zone legitimately reads clocks (deadlines) and iterates
// scratch hash maps: only `float-cmp` and `panic-path` apply there.

use std::collections::HashMap;
use std::time::Instant;

pub fn tick(sessions: &HashMap<u64, u32>) -> (f64, usize) {
    let t = Instant::now();
    let mut live = 0;
    for (_id, n) in sessions.iter() {
        live += *n as usize;
    }
    (t.elapsed().as_secs_f64(), live)
}
