//@ path: crates/core/src/fx_clean_strings.rs
//! Doc text may mention `x.unwrap()`, `Instant::now()` and `a == 0.0`
//! without tripping the linter.

/// Talks about `thread_rng()` and `m.iter()` over a HashMap.
pub fn render() -> String {
    // Plain comments may cite panic!("...") and partial_cmp too.
    let a = "x.unwrap() y.expect(1) panic!(2) 1.0 == 2.0 score as usize";
    let b = r#"Instant::now() SystemTime::now() thread_rng() from_entropy()"#;
    let c = r##"HashMap HashSet "quoted" still fine"##;
    let lifetime_not_char: &'static str = "tick";
    format!("{a} {b} {c} {lifetime_not_char}")
}
