//@ path: crates/eval/src/bin/fx_report.rs
// Binaries report errors to a human and may abort: `panic-path` does not
// apply under `/src/bin/` (the other rules still do).

pub fn main() {
    let path = std::env::args().nth(1).unwrap();
    let n: u32 = path.len() as u32;
    if n == 0 {
        panic!("usage: fx_report <path>");
    }
    println!("{path}: {n}");
}
