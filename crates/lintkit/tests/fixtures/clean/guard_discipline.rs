//@ path: crates/serve/src/fx_guard_discipline.rs
// Must-not-flag corpus for `guard-across-blocking`: every blocking call
// here runs with the relevant guard already released — the approved
// idioms the rule must not punish.

impl Shard {
    /// Explicit `drop(guard)` before the sleep.
    pub fn backoff(&self, dur: Duration) {
        let slot = self.slots.lock();
        let claimed = slot.claim_restart();
        drop(slot);
        std::thread::sleep(dur);
        self.finish_restart(claimed);
    }

    /// Guard scoped to a block; the I/O runs after the scope closes.
    pub fn flush(&self, stream: &mut TcpStream) {
        let frame = {
            let mut q = self.queue.lock();
            q.take_frame()
        };
        let _ = stream.write_all(&frame);
    }

    /// The same-lock `Condvar` loop: the wait consumes the guard it was
    /// paired with, which is the one legal blocking-while-locked idiom.
    pub fn pop_deadline(&self, dur: Duration) -> Option<Job> {
        let mut st = self.inner.lock();
        while st.items.is_empty() {
            let (next, timed_out) = st.wait_timeout(&self.not_empty, dur);
            st = next;
            if timed_out {
                return st.items.pop_front();
            }
        }
        st.items.pop_front()
    }

    /// Take-under-lock, join-after: the chained `.take()` means the
    /// binding holds the handle, not the guard.
    pub fn stop(&self) {
        let accept = self.accept.lock().take();
        if let Some(h) = accept {
            let _ = h.join();
        }
    }

    /// Scoped re-lock: releasing and re-acquiring the same lock is not a
    /// re-entrant self-cycle.
    pub fn relock(&self) -> usize {
        let before = {
            let st = self.inner.lock();
            st.items.len()
        };
        let st = self.inner.lock();
        st.items.len().max(before)
    }
}
