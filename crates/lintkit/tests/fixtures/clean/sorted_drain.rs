//@ path: crates/core/src/fx_clean_drain.rs
// The sorted-drain idiom: draining a hash map is fine when a sort restores
// a total order in the same statement or shortly after.

use std::collections::HashMap;

pub fn ranked(counts: &HashMap<u32, u32>) -> Vec<(u32, u32)> {
    let mut pairs: Vec<(u32, u32)> = counts.iter().map(|(k, v)| (*k, *v)).collect();
    pairs.sort_unstable();
    pairs
}
