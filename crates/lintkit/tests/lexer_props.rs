//! Property tests for the lexer's masking guarantees and waiver hygiene:
//!
//! * content confined to string literals, raw strings, or comments can
//!   NEVER produce a finding, no matter what banned constructs it spells;
//! * a waiver without a justification is always rejected, and one with a
//!   justification always accepted, for every rule.

use lintkit::engine::check_source;
use lintkit::rules::{Zone, RULES};
use proptest::prelude::*;

/// Banned constructs, quote-free so they embed in a plain string literal.
const BANNED: &[&str] = &[
    "x.unwrap()",
    "y.expect(msg)",
    "panic!(boom)",
    "todo!()",
    "Instant::now()",
    "SystemTime::now()",
    "thread_rng()",
    "from_entropy()",
    "a.partial_cmp(&b)",
    "0.5 == z",
    "w != 1.0",
    "m.iter()",
    "score as usize",
];

const INF: &str = "crates/core/src/px.rs";

/// Printable ASCII (single line), lengths 0..40.
fn printable() -> impl Strategy<Value = String> {
    proptest::collection::vec(32u32..127u32, 0..40usize)
        .prop_map(|v| v.into_iter().filter_map(char::from_u32).collect())
}

/// Printable ASCII minus `"` and `\`, so the result stays one string
/// literal when spliced between quotes.
fn string_safe() -> impl Strategy<Value = String> {
    printable().prop_map(|s| {
        s.chars()
            .map(|c| if c == '"' || c == '\\' { '_' } else { c })
            .collect()
    })
}

proptest! {
    #[test]
    fn string_literal_content_never_flags(
        pre in string_safe(),
        post in string_safe(),
        idx in 0..BANNED.len(),
    ) {
        let src = format!(
            "pub fn f() -> usize {{\n    let s = \"{pre}{}{post}\";\n    s.len()\n}}\n",
            BANNED[idx]
        );
        let f = check_source(INF, Zone::Inference, &src);
        prop_assert!(f.is_empty(), "leaked out of string literal: {f:?}");
    }

    #[test]
    fn raw_string_content_never_flags(
        text in printable(),
        idx in 0..BANNED.len(),
    ) {
        prop_assume!(!text.contains("\"#"));
        let src = format!(
            "pub fn f() -> &'static str {{\n    r#\"{text}{}\"#\n}}\n",
            BANNED[idx]
        );
        let f = check_source(INF, Zone::Inference, &src);
        prop_assert!(f.is_empty(), "leaked out of raw string: {f:?}");
    }

    #[test]
    fn comment_content_never_flags(
        text in printable(),
        idx in 0..BANNED.len(),
    ) {
        // Comments ARE read for waiver directives; that is the one thing
        // they may legitimately contribute.
        prop_assume!(!text.contains("lint:allow("));
        let src = format!(
            "pub fn f() -> u32 {{\n    // {text} {}\n    /* {} {text} */ 7\n}}\n",
            BANNED[idx],
            BANNED[(idx + 1) % BANNED.len()]
        );
        let f = check_source(INF, Zone::Inference, &src);
        prop_assert!(f.is_empty(), "leaked out of comment: {f:?}");
    }

    #[test]
    fn waiver_without_reason_always_rejected(idx in 0..RULES.len() - 1) {
        // `RULES.len() - 1` skips the meta-rule `waiver` itself.
        let rule = RULES[idx];
        let src = format!("pub fn f() {{\n    // lint:allow({rule})\n    let _ = 1;\n}}\n");
        let f = check_source("crates/eval/src/px.rs", Zone::Tooling, &src);
        prop_assert!(
            f.iter().any(|f| f.rule == "waiver"),
            "reason-less waiver for `{rule}` was not rejected: {f:?}"
        );
    }

    #[test]
    fn waiver_with_reason_always_accepted(idx in 0..RULES.len() - 1, reason in printable()) {
        prop_assume!(!reason.trim().is_empty());
        let rule = RULES[idx];
        let src =
            format!("pub fn f() {{\n    // lint:allow({rule}): {reason}\n    let _ = 1;\n}}\n");
        let f = check_source("crates/eval/src/px.rs", Zone::Tooling, &src);
        prop_assert!(
            f.iter().all(|f| f.rule != "waiver"),
            "justified waiver for `{rule}` was rejected: {f:?}"
        );
    }
}
