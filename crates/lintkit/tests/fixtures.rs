//! Fixture-driven corpus tests.
//!
//! `tests/fixtures/true_positives/` holds files where every expected
//! finding is annotated in place with `//~ <rule> [<rule> …]`; the linter
//! must produce exactly that set — nothing missing, nothing extra.
//! `tests/fixtures/clean/` is the must-not-flag corpus: realistic code
//! using the *approved* idioms (plus hostile content confined to strings,
//! comments and test regions), on which any finding is a false positive.
//!
//! Each fixture declares its pretended repo path on the first line with
//! `//@ path: crates/...`, which is what selects its zone.

use lintkit::engine::check_source;
use lintkit::rules::zone_of;
use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

fn fixtures(dir: &str) -> Vec<(String, String)> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(dir);
    let mut paths: Vec<PathBuf> = fs::read_dir(&root)
        .unwrap_or_else(|e| panic!("reading {}: {e}", root.display()))
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no fixtures under {}", root.display());
    paths
        .into_iter()
        .map(|p| {
            let src = fs::read_to_string(&p).expect("fixture readable");
            let name = p.file_name().expect("file name").to_string_lossy().into_owned();
            (name, src)
        })
        .collect()
}

fn declared_path(name: &str, src: &str) -> String {
    src.lines()
        .find_map(|l| l.trim().strip_prefix("//@ path:").map(|p| p.trim().to_string()))
        .unwrap_or_else(|| panic!("{name}: missing `//@ path:` header"))
}

fn expected_markers(src: &str) -> BTreeSet<(u32, String)> {
    let mut out = BTreeSet::new();
    for (i, line) in src.lines().enumerate() {
        if let Some(at) = line.find("//~") {
            for rule in line[at + 3..].split_whitespace() {
                out.insert((i as u32 + 1, rule.to_string()));
            }
        }
    }
    out
}

#[test]
fn true_positive_corpus_fires_exactly_as_annotated() {
    let mut rules_seen: BTreeSet<String> = BTreeSet::new();
    for (name, src) in fixtures("true_positives") {
        let rel = declared_path(&name, &src);
        let zone = zone_of(&rel).unwrap_or_else(|| panic!("{name}: path `{rel}` is unzoned"));
        let expected = expected_markers(&src);
        assert!(!expected.is_empty(), "{name}: no `//~` markers");
        let actual: BTreeSet<(u32, String)> = check_source(&rel, zone, &src)
            .into_iter()
            .filter(|f| !f.waived)
            .map(|f| (f.line, f.rule.to_string()))
            .collect();
        assert_eq!(actual, expected, "{name}: findings differ from `//~` markers");
        rules_seen.extend(expected.into_iter().map(|(_, r)| r));
    }
    // Acceptance bar: the corpus demonstrably exercises every rule.
    for rule in [
        "float-cmp",
        "nondeterminism",
        "hash-iteration",
        "panic-path",
        "float-cast",
        "lock-order",
        "guard-across-blocking",
        "unsafe-fence",
        "waiver",
    ] {
        assert!(
            rules_seen.contains(rule),
            "no true-positive fixture exercises `{rule}`"
        );
    }
}

#[test]
fn clean_corpus_never_flags() {
    for (name, src) in fixtures("clean") {
        let rel = declared_path(&name, &src);
        let zone = zone_of(&rel).unwrap_or_else(|| panic!("{name}: path `{rel}` is unzoned"));
        let findings = check_source(&rel, zone, &src);
        assert!(
            findings.is_empty(),
            "{name}: false positive(s): {findings:?}"
        );
    }
}
