//! Rule registry and zone policy.
//!
//! Every rule is a token-pattern check over the unmasked token stream of
//! one file (see [`crate::lexer`]). Rules exist because the repo's
//! headline guarantees are *source-level invariants*:
//!
//! * parallel-vs-serial byte-equivalence and bit-identical vectorized
//!   scoring break the moment a result path consults a `partial_cmp`
//!   tie-break that returns `None`, an unordered hash iteration, or the
//!   wall clock — hence `float-cmp`, `hash-iteration`, `nondeterminism`;
//! * panic-free degradation breaks on any `unwrap`/`expect`/`panic!` left
//!   in library code — hence `panic-path`;
//! * learned `P_O`/`P_T` scorers make float handling the correctness
//!   substrate, and a truncating float→int `as` cast silently rounds
//!   toward zero — hence `float-cast`.
//!
//! # Zones
//!
//! | zone      | crates                                           | rules |
//! |-----------|--------------------------------------------------|-------|
//! | inference | lhmm-core, lhmm-neural, lhmm-graph, lhmm-geo, lhmm-network | all |
//! | service   | lhmm-serve                                       | float-cmp, panic-path + concurrency |
//! | tooling   | everything else (cellsim, baselines, eval, bench, umbrella, lintkit itself) | float-cmp, panic-path + concurrency |
//!
//! The service and tooling zones legitimately read clocks (deadlines,
//! benchmarks) and iterate scratch hash maps, so `nondeterminism`,
//! `hash-iteration` and `float-cast` apply only where results must be a
//! pure function of `(model, trajectory)`. Vendored stand-in crates
//! (`crates/rand`, `crates/proptest`, `crates/criterion`) are not ours
//! and are not walked at all.
//!
//! The concurrency rules (`lock-order`, `guard-across-blocking`,
//! `unsafe-fence`; see [`crate::concurrency`] and DESIGN §15) apply in
//! *every* zone: a deadlock or a UB surface is a process property, not a
//! result-purity property. The only carve-outs are the audited SIMD
//! modules (`crates/neural/src/{avec,kernel}.rs`) for `unsafe-fence`.

use crate::concurrency::LockEdge;
use crate::lexer::{Kind, Lexed, Token};

/// Crate zones; see the module docs for the policy table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Zone {
    Inference,
    Service,
    Tooling,
}

/// All rule identifiers, as used in findings, waivers and the baseline.
pub const RULES: &[&str] = &[
    "float-cmp",
    "nondeterminism",
    "hash-iteration",
    "panic-path",
    "float-cast",
    "lock-order",
    "guard-across-blocking",
    "unsafe-fence",
    "waiver",
];

/// One finding. `waived`/`baselined` are filled in by the engine.
#[derive(Clone, Debug)]
pub struct Finding {
    pub rule: &'static str,
    /// Repo-relative path, forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
    pub waived: bool,
    pub baselined: bool,
}

/// Maps a repo-relative path to its zone; `None` means the file is not
/// linted (vendored crates, tests, fixtures, generated output).
pub fn zone_of(rel: &str) -> Option<Zone> {
    let rel = rel.strip_prefix("./").unwrap_or(rel);
    if let Some(rest) = rel.strip_prefix("crates/") {
        let (krate, tail) = rest.split_once('/')?;
        // Only library/bin sources; fixture and test trees are exempt by
        // construction (they hold intentional violations).
        if !tail.starts_with("src/") {
            return None;
        }
        return match krate {
            "rand" | "proptest" | "criterion" => None, // vendored stand-ins
            "core" | "neural" | "graph" | "geo" | "network" => Some(Zone::Inference),
            "serve" => Some(Zone::Service),
            _ => Some(Zone::Tooling),
        };
    }
    // Umbrella crate sources.
    if rel.starts_with("src/") {
        return Some(Zone::Tooling);
    }
    None
}

/// Whether `rule` applies to `zone` for the file at `rel`.
pub fn rule_applies(rule: &str, zone: Zone, rel: &str) -> bool {
    match rule {
        "float-cmp" | "panic-path" => {
            // Panic discipline is a *library* contract: binaries (the bench
            // harness, the linter CLI's bin shim) report errors to a human
            // and may abort. Library sources everywhere must not.
            !(rule == "panic-path" && rel.contains("/src/bin/"))
        }
        "nondeterminism" => {
            // Two audited access points: the wall-clock telemetry module
            // (DESIGN §10) and the SIMD kernel dispatcher, which owns the
            // crate's only CPU-feature probes and `OnceLock` dispatch
            // state (DESIGN §12).
            zone == Zone::Inference
                && !rel.ends_with("crates/core/src/timing.rs")
                && !rel.ends_with("crates/neural/src/kernel.rs")
        }
        "hash-iteration" | "float-cast" => zone == Zone::Inference,
        // Deadlocks and guard-held stalls are process properties: the
        // concurrency rules run in every zone (DESIGN §15).
        "lock-order" | "guard-across-blocking" => true,
        "unsafe-fence" => {
            // The audited SIMD modules own the workspace's only `unsafe`
            // and `static … OnceLock` dispatch state (DESIGN §12).
            !rel.ends_with("crates/neural/src/avec.rs")
                && !rel.ends_with("crates/neural/src/kernel.rs")
        }
        _ => false,
    }
}

/// Runs every applicable rule over one lexed file.
pub fn check_file(rel: &str, zone: Zone, lexed: &Lexed) -> Vec<Finding> {
    check_file_edges(rel, zone, lexed).0
}

/// [`check_file`] plus the file's lock-acquisition edges, for per-file
/// and workspace-level cycle detection (see [`crate::concurrency`]).
pub fn check_file_edges(rel: &str, zone: Zone, lexed: &Lexed) -> (Vec<Finding>, Vec<LockEdge>) {
    // Unmasked view: rules never see test-gated tokens.
    let toks: Vec<&Token> = lexed.tokens.iter().filter(|t| !t.masked).collect();
    let mut out = Vec::new();
    if rule_applies("float-cmp", zone, rel) {
        float_cmp(rel, &toks, &mut out);
    }
    if rule_applies("nondeterminism", zone, rel) {
        nondeterminism(rel, &toks, &mut out);
    }
    if rule_applies("hash-iteration", zone, rel) {
        hash_iteration(rel, &toks, &mut out);
    }
    if rule_applies("panic-path", zone, rel) {
        panic_path(rel, &toks, &mut out);
    }
    if rule_applies("float-cast", zone, rel) {
        float_cast(rel, &toks, &mut out);
    }
    let lock_graph = rule_applies("lock-order", zone, rel);
    let blocking = rule_applies("guard-across-blocking", zone, rel);
    let fence = rule_applies("unsafe-fence", zone, rel);
    let mut edges = Vec::new();
    if lock_graph || blocking || fence {
        crate::concurrency::scan(rel, &toks, lock_graph, blocking, fence, &mut out, &mut edges);
    }
    (out, edges)
}

fn finding(rule: &'static str, rel: &str, line: u32, message: String) -> Finding {
    Finding {
        rule,
        path: rel.to_string(),
        line,
        message,
        waived: false,
        baselined: false,
    }
}

pub(crate) fn is_p(t: &Token, s: &str) -> bool {
    t.kind == Kind::Punct && t.text == s
}

pub(crate) fn is_i(t: &Token, s: &str) -> bool {
    t.kind == Kind::Ident && t.text == s
}

/// R1 `float-cmp`: float `==`/`!=` and `partial_cmp` calls. Equality on
/// floats is representation-sensitive and `partial_cmp` returns `None` on
/// NaN, which turns into an `unwrap` panic or an order-dependent fallback;
/// result paths must use `total_cmp` (and restructure exact-zero guards as
/// ordered comparisons).
fn float_cmp(rel: &str, toks: &[&Token], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind == Kind::Punct && (t.text == "==" || t.text == "!=") {
            let float_lhs = i > 0 && toks[i - 1].kind == Kind::Float;
            let float_rhs = i + 1 < toks.len() && toks[i + 1].kind == Kind::Float;
            if float_lhs || float_rhs {
                out.push(finding(
                    "float-cmp",
                    rel,
                    t.line,
                    format!("float literal compared with `{}`; use an ordered comparison or `total_cmp`", t.text),
                ));
            }
        }
        if t.kind == Kind::Ident
            && t.text == "partial_cmp"
            && i > 0
            && (is_p(toks[i - 1], ".") || is_p(toks[i - 1], "::"))
        {
            out.push(finding(
                "float-cmp",
                rel,
                t.line,
                "`partial_cmp` in a result path; use `total_cmp` (total order, NaN-safe)"
                    .to_string(),
            ));
        }
    }
}

/// R2 `nondeterminism`: wall-clock, entropy, and environment-dependent
/// dispatch sources. Matching must be a pure function of
/// `(model, trajectory)`; `Instant::now` is allowed only inside the
/// audited telemetry module `crates/core/src/timing.rs`, and CPU-feature
/// probes / global `OnceLock` dispatch state only inside the audited
/// kernel dispatcher `crates/neural/src/kernel.rs` (whose paths are all
/// bit-identical, making its machine dependence result-invisible).
fn nondeterminism(rel: &str, toks: &[&Token], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != Kind::Ident {
            continue;
        }
        match t.text.as_str() {
            "thread_rng" | "from_entropy" => out.push(finding(
                "nondeterminism",
                rel,
                t.line,
                format!("`{}` seeds from OS entropy; use an explicit seed", t.text),
            )),
            "Instant" | "SystemTime"
                if i + 2 < toks.len() && is_p(toks[i + 1], "::") && is_i(toks[i + 2], "now") =>
            {
                out.push(finding(
                    "nondeterminism",
                    rel,
                    t.line,
                    format!(
                        "`{}::now()` in the inference zone; route timing through `lhmm_core::timing`",
                        t.text
                    ),
                ));
            }
            "is_x86_feature_detected" | "is_aarch64_feature_detected" => out.push(finding(
                "nondeterminism",
                rel,
                t.line,
                format!(
                    "`{}!` CPU dispatch outside the audited kernel module; route through `lhmm_neural::kernel`",
                    t.text
                ),
            )),
            // `static NAME: OnceLock<...>` — global dispatch/cache state
            // whose first-writer wins. Value-level `OnceLock` memo fields
            // (e.g. the tape's transposed-weight cache) are deterministic
            // and stay allowed; only `static` declarations are flagged.
            "OnceLock"
                if toks[i.saturating_sub(6)..i].iter().any(|p| is_i(p, "static")) =>
            {
                out.push(finding(
                    "nondeterminism",
                    rel,
                    t.line,
                    "global `static … OnceLock` dispatch state outside the audited kernel module; route through `lhmm_neural::kernel`".to_string(),
                ));
            }
            _ => {}
        }
    }
}

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];
const ITER_FNS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
];

/// R3 `hash-iteration`: iterating a `HashMap`/`HashSet` yields an
/// arbitrary, RandomState-dependent order; in result-affecting code that
/// order leaks into float accumulation and tie-breaks. Keyed *lookups*
/// are fine. A drain immediately followed by a sort ("sorted drain") is
/// recognized and allowed; otherwise use `BTreeMap`/`BTreeSet`.
fn hash_iteration(rel: &str, toks: &[&Token], out: &mut Vec<Finding>) {
    // Pass 1: names whose declared or inferred type mentions a hash
    // collection — `let x: HashMap<…>`, `let x = HashMap::new()`, struct
    // fields and fn params `x: &mut HashMap<…>`.
    let mut hash_names: Vec<String> = Vec::new();
    let mut record = |name: &str| {
        if !hash_names.iter().any(|n| n == name) {
            hash_names.push(name.to_string());
        }
    };
    for i in 0..toks.len() {
        let t = toks[i];
        if t.kind != Kind::Ident {
            continue;
        }
        // `NAME :` … first few tokens mention a hash type.
        if i + 1 < toks.len() && is_p(toks[i + 1], ":") {
            for t2 in toks.iter().skip(i + 2).take(4) {
                if matches!(t2.text.as_str(), "," | ";" | ")" | "=" | "{" | "}")
                    && t2.kind == Kind::Punct
                {
                    break;
                }
                if t2.kind == Kind::Ident && HASH_TYPES.contains(&t2.text.as_str()) {
                    record(&t.text);
                    break;
                }
            }
        }
        // `let [mut] NAME = HashMap::…` / `= std::collections::HashMap::…`.
        if is_i(t, "let") {
            let mut j = i + 1;
            if j < toks.len() && is_i(toks[j], "mut") {
                j += 1;
            }
            if j + 1 < toks.len() && toks[j].kind == Kind::Ident && is_p(toks[j + 1], "=") {
                for t2 in toks.iter().skip(j + 2).take(6) {
                    if t2.kind == Kind::Punct && t2.text == ";" {
                        break;
                    }
                    if t2.kind == Kind::Ident && HASH_TYPES.contains(&t2.text.as_str()) {
                        record(&toks[j].text);
                        break;
                    }
                }
            }
        }
    }
    if hash_names.is_empty() {
        return;
    }

    // Pass 2: iteration over a recorded name.
    for i in 0..toks.len() {
        let t = toks[i];
        if t.kind != Kind::Ident || !hash_names.iter().any(|n| n == &t.text) {
            continue;
        }
        // `NAME.iter()` and friends (also `self.NAME.iter()` — the field
        // name is what pass 1 recorded).
        if i + 2 < toks.len()
            && is_p(toks[i + 1], ".")
            && toks[i + 2].kind == Kind::Ident
            && ITER_FNS.contains(&toks[i + 2].text.as_str())
        {
            if !sorted_drain_follows(toks, i + 2) {
                out.push(finding(
                    "hash-iteration",
                    rel,
                    t.line,
                    format!(
                        "`{}.{}()` iterates a hash collection in arbitrary order; use a BTree collection or sort the drained entries",
                        t.text, toks[i + 2].text
                    ),
                ));
            }
            continue;
        }
        // `for x in [&[mut]] NAME { … }`.
        let mut j = i;
        while j > 0 && (is_p(toks[j - 1], "&") || is_i(toks[j - 1], "mut")) {
            j -= 1;
        }
        if j > 0 && is_i(toks[j - 1], "in") && !(i + 1 < toks.len() && is_p(toks[i + 1], ".")) {
            out.push(finding(
                "hash-iteration",
                rel,
                t.line,
                format!(
                    "`for … in {}` iterates a hash collection in arbitrary order; use a BTree collection or sort first",
                    t.text
                ),
            ));
        }
    }
}

/// True when a `sort`/`sort_by`/`sort_unstable_by_key`/… call appears
/// shortly after the iteration (same statement or the next two): the
/// sorted-drain idiom, which restores a total order before anything
/// result-affecting happens.
fn sorted_drain_follows(toks: &[&Token], from: usize) -> bool {
    let mut semis = 0;
    for t in toks.iter().skip(from).take(60) {
        if t.kind == Kind::Punct && t.text == ";" {
            semis += 1;
            if semis > 2 {
                return false;
            }
        }
        if t.kind == Kind::Ident && t.text.starts_with("sort") {
            return true;
        }
    }
    false
}

/// R4 `panic-path`: `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!`
/// outside tests, in every library crate. Inference and serving degrade
/// through typed errors ([`MatchError`](../../core/src/error.rs), shed
/// verdicts); a panic anywhere in library code voids that contract.
/// `unreachable!` on a statically impossible arm is deliberately *not*
/// banned — it is a proof obligation, not error handling.
fn panic_path(rel: &str, toks: &[&Token], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != Kind::Ident {
            continue;
        }
        match t.text.as_str() {
            "unwrap" | "expect"
                if i > 0
                    && is_p(toks[i - 1], ".")
                    && i + 1 < toks.len()
                    && is_p(toks[i + 1], "(") =>
            {
                out.push(finding(
                    "panic-path",
                    rel,
                    t.line,
                    format!(
                        "`.{}()` can panic; return a typed error or provide a fallback",
                        t.text
                    ),
                ));
            }
            "panic" | "todo" | "unimplemented" if i + 1 < toks.len() && is_p(toks[i + 1], "!") => {
                out.push(finding(
                    "panic-path",
                    rel,
                    t.line,
                    format!("`{}!` in library code; degrade through a typed error", t.text),
                ));
            }
            _ => {}
        }
    }
}

const INT_TYPES: &[&str] = &[
    "usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128",
];
/// Methods that yield a float with fractional content: casting their result
/// truncates toward zero, which is almost never the intended rounding.
const FLOAT_FNS: &[&str] = &[
    "sqrt", "powf", "powi", "exp", "exp2", "exp_m1", "ln", "ln_1p", "log", "log2", "log10",
    "hypot", "sin", "cos", "tan", "asin", "acos", "atan", "atan2", "sinh", "cosh", "tanh",
    "fract", "recip", "to_degrees", "to_radians", "mul_add",
];
/// Methods whose result is integral-valued, making a subsequent cast exact
/// (range permitting): the *required* idiom for float→int conversion.
const ROUND_FNS: &[&str] = &["floor", "ceil", "round", "trunc", "round_ties_even"];

/// R5 `float-cast`: truncating `as` float→int casts in scoring paths.
/// `x as usize` rounds toward zero; scoring code must make the rounding
/// explicit (`x.floor() as usize`, `x.round() as i64`, …).
fn float_cast(rel: &str, toks: &[&Token], out: &mut Vec<Finding>) {
    // Names declared as floats: `NAME: f64`, `let NAME = 1.5`.
    let mut float_names: Vec<String> = Vec::new();
    for i in 0..toks.len() {
        let t = toks[i];
        if t.kind != Kind::Ident {
            continue;
        }
        if i + 1 < toks.len() && is_p(toks[i + 1], ":") {
            for t2 in toks.iter().skip(i + 2).take(3) {
                // Skip reference sigils: `x: &mut f64` is still a float.
                if is_p(t2, "&") || is_i(t2, "mut") {
                    continue;
                }
                if matches!(t2.text.as_str(), "f32" | "f64")
                    && t2.kind == Kind::Ident
                    && !float_names.iter().any(|n| n == &t.text)
                {
                    float_names.push(t.text.clone());
                }
                break;
            }
        }
        if is_i(t, "let") {
            let mut j = i + 1;
            if j < toks.len() && is_i(toks[j], "mut") {
                j += 1;
            }
            if j + 2 < toks.len()
                && toks[j].kind == Kind::Ident
                && is_p(toks[j + 1], "=")
                && toks[j + 2].kind == Kind::Float
                && !float_names.iter().any(|n| n == &toks[j].text)
            {
                float_names.push(toks[j].text.clone());
            }
        }
    }

    for i in 0..toks.len() {
        if !is_i(toks[i], "as") {
            continue;
        }
        let Some(next) = toks.get(i + 1) else { continue };
        if next.kind != Kind::Ident || !INT_TYPES.contains(&next.text.as_str()) {
            continue;
        }
        if i == 0 {
            continue;
        }
        let prev = toks[i - 1];
        let from_float_call = is_p(prev, ")") && {
            // Walk back over the call's parens to the method name.
            let mut depth = 0i32;
            let mut j = i - 1;
            loop {
                let t = toks[j];
                if is_p(t, ")") {
                    depth += 1;
                } else if is_p(t, "(") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    break;
                }
                j -= 1;
            }
            if j > 0 && toks[j - 1].kind == Kind::Ident {
                let callee = toks[j - 1].text.as_str();
                FLOAT_FNS.contains(&callee) && !ROUND_FNS.contains(&callee)
            } else {
                false
            }
        };
        let flagged = prev.kind == Kind::Float
            || (prev.kind == Kind::Ident && float_names.iter().any(|n| n == &prev.text))
            || from_float_call;
        if flagged {
            out.push(finding(
                "float-cast",
                rel,
                toks[i].line,
                format!(
                    "truncating `as {}` cast of a float; make the rounding explicit (`.floor()`/`.round()`/`.ceil()` first)",
                    next.text
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(rel: &str, zone: Zone, src: &str) -> Vec<Finding> {
        check_file(rel, zone, &lex(src))
    }

    const INF: &str = "crates/core/src/x.rs";

    #[test]
    fn zones_map_as_documented() {
        assert_eq!(zone_of("crates/core/src/lhmm.rs"), Some(Zone::Inference));
        assert_eq!(zone_of("crates/geo/src/point.rs"), Some(Zone::Inference));
        assert_eq!(zone_of("crates/serve/src/server.rs"), Some(Zone::Service));
        assert_eq!(zone_of("crates/eval/src/report.rs"), Some(Zone::Tooling));
        assert_eq!(zone_of("src/lib.rs"), Some(Zone::Tooling));
        assert_eq!(zone_of("crates/rand/src/lib.rs"), None);
        assert_eq!(zone_of("crates/core/tests/t.rs"), None);
        assert_eq!(zone_of("tests/end_to_end.rs"), None);
    }

    #[test]
    fn float_eq_and_partial_cmp_fire() {
        let f = run(INF, Zone::Inference, "if x == 0.0 { } a.partial_cmp(&b);");
        assert_eq!(f.iter().filter(|f| f.rule == "float-cmp").count(), 2);
    }

    #[test]
    fn total_cmp_and_int_eq_do_not_fire() {
        let f = run(
            INF,
            Zone::Inference,
            "a.total_cmp(&b); if n == 0 { } if ord == Ordering::Equal { }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn sorted_drain_is_allowed() {
        let src = "let mut m: HashMap<u32, f32> = HashMap::new();\n\
                   let mut v: Vec<_> = m.into_iter().collect();\n\
                   v.sort_unstable_by_key(|e| e.0);";
        let f = run(INF, Zone::Inference, src);
        assert!(f.is_empty(), "{f:?}");
        let unsorted = "let mut m: HashMap<u32, f32> = HashMap::new();\n\
                        for (k, v) in &m { acc += v; }";
        let f = run(INF, Zone::Inference, unsorted);
        assert_eq!(f.iter().filter(|f| f.rule == "hash-iteration").count(), 1);
    }

    #[test]
    fn lookups_are_not_iteration() {
        let src = "let m: HashMap<u32, f32> = HashMap::new(); m.get(&1); m.contains_key(&2); m.insert(3, 4.0);";
        let f = run(INF, Zone::Inference, src);
        assert!(f.iter().all(|f| f.rule != "hash-iteration"), "{f:?}");
    }

    #[test]
    fn float_cast_requires_explicit_rounding() {
        let f = run(INF, Zone::Inference, "let x: f64 = y; let i = x as usize;");
        assert_eq!(f.iter().filter(|f| f.rule == "float-cast").count(), 1);
        let ok = run(
            INF,
            Zone::Inference,
            "let x: f64 = y; let i = x.floor() as usize; let n = v.len() as u32;",
        );
        assert!(ok.iter().all(|f| f.rule != "float-cast"), "{ok:?}");
        let sqrt = run(INF, Zone::Inference, "let i = d.sqrt() as i64;");
        assert_eq!(sqrt.iter().filter(|f| f.rule == "float-cast").count(), 1);
    }

    #[test]
    fn zone_policy_gates_rules() {
        let src = "let t = Instant::now(); x.unwrap();";
        let inf = run(INF, Zone::Inference, src);
        assert!(inf.iter().any(|f| f.rule == "nondeterminism"));
        let tool = run("crates/eval/src/x.rs", Zone::Tooling, src);
        assert!(tool.iter().all(|f| f.rule != "nondeterminism"));
        assert!(tool.iter().any(|f| f.rule == "panic-path"));
        // The audited telemetry module may read the clock.
        let timing = run(
            "crates/core/src/timing.rs",
            Zone::Inference,
            "let t = Instant::now();",
        );
        assert!(timing.iter().all(|f| f.rule != "nondeterminism"));
        // Binaries are exempt from panic-path only.
        let bin = run("crates/bench/src/bin/experiments.rs", Zone::Tooling, src);
        assert!(bin.iter().all(|f| f.rule != "panic-path"));
    }

    #[test]
    fn cpu_dispatch_is_fenced_to_the_kernel_module() {
        let src = "if is_x86_feature_detected!(\"avx2\") { }";
        let inf = run(INF, Zone::Inference, src);
        assert_eq!(inf.iter().filter(|f| f.rule == "nondeterminism").count(), 1);
        // The audited dispatcher may probe CPU features.
        let kern = run("crates/neural/src/kernel.rs", Zone::Inference, src);
        assert!(kern.iter().all(|f| f.rule != "nondeterminism"), "{kern:?}");
    }

    #[test]
    fn static_oncelock_flags_but_value_level_memo_does_not() {
        let global = "static RESOLVED: OnceLock<Kernel> = OnceLock::new();";
        let f = run(INF, Zone::Inference, global);
        assert_eq!(f.iter().filter(|f| f.rule == "nondeterminism").count(), 1);
        // Value-level memo caches (the tape's transposed-weight cache) are
        // deterministic: declaration sites without `static` stay clean.
        let memo = "struct T { transposed: Vec<OnceLock<Matrix>> }\n\
                    fn f(t: &mut T) { t.transposed.push(OnceLock::new()); }\n\
                    use std::sync::OnceLock;";
        let f = run(INF, Zone::Inference, memo);
        assert!(f.iter().all(|f| f.rule != "nondeterminism"), "{f:?}");
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let f = run(
            INF,
            Zone::Inference,
            "x.unwrap_or_else(|| 0); y.unwrap_or_default(); z.expect_err_is_fine;",
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
