//! CLI for the workspace linter. See `lhmm-lint --help`.

use lintkit::engine;
use lintkit::races;
use std::path::PathBuf;
use std::process::ExitCode;

const HELP: &str = "\
lhmm-lint: workspace determinism & robustness linter

USAGE:
    lhmm-lint [--deny] [--write-baseline] [--races [SEED]] [--kernels]
              [--root DIR] [--baseline FILE]

MODES (default: report findings, exit 0)
    --deny            exit nonzero on any new finding (CI gate)
    --write-baseline  freeze current tooling/service-zone findings;
                      inference-zone findings are never baselined
    --races [SEED]    match the seeded adversarial corpus at two
                      BatchMatcher worker counts and compare result
                      fingerprints (scheduling-nondeterminism smoke test);
                      also re-runs with the SIMD kernel forced to scalar,
                      replays the corpus through the serving scheduler
                      with a model hot swap fired mid-run, and repeats the
                      swap run as a lock-witness lane (rank-checked
                      acquisitions, identical fingerprint)
    --kernels         print the SIMD kernel names this machine supports,
                      one per line (for CI loops over LHMM_KERNEL)

OPTIONS
    --root DIR        workspace root (default: ., walking up to Cargo.toml)
    --baseline FILE   baseline path (default: <root>/lint-baseline.txt)
";

fn main() -> ExitCode {
    let mut deny = false;
    let mut write_baseline = false;
    let mut do_races = false;
    let mut races_seed: u64 = 0xFA57;
    let mut root: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--write-baseline" => write_baseline = true,
            "--races" => do_races = true,
            "--kernels" => {
                for k in lhmm_neural::kernel::supported_kernels() {
                    println!("{}", k.name());
                }
                return ExitCode::SUCCESS;
            }
            "--root" => root = args.next().map(PathBuf::from),
            "--baseline" => baseline = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                print!("{HELP}");
                return ExitCode::SUCCESS;
            }
            other => {
                if do_races {
                    if let Ok(seed) = other.parse::<u64>() {
                        races_seed = seed;
                        continue;
                    }
                }
                eprintln!("lhmm-lint: unknown argument `{other}`\n\n{HELP}");
                return ExitCode::from(2);
            }
        }
    }

    if do_races {
        return run_races_mode(races_seed);
    }

    let root = match root.or_else(find_root) {
        Some(r) => r,
        None => {
            eprintln!("lhmm-lint: no workspace root found (looked for Cargo.toml + crates/)");
            return ExitCode::from(2);
        }
    };
    let baseline = baseline.unwrap_or_else(|| root.join("lint-baseline.txt"));

    let report = match engine::run(&root, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lhmm-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if write_baseline {
        return match engine::write_baseline(&report, &baseline) {
            Ok((written, skipped)) => {
                println!(
                    "lhmm-lint: baseline written to {} ({written} entries)",
                    baseline.display()
                );
                if skipped > 0 {
                    eprintln!(
                        "lhmm-lint: {skipped} inference-zone finding(s) NOT baselined — fix them"
                    );
                    return ExitCode::FAILURE;
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("lhmm-lint: writing baseline failed: {e}");
                ExitCode::from(2)
            }
        };
    }

    let mut new = 0usize;
    for (f, excerpt) in report.new_findings() {
        new += 1;
        println!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
        if !excerpt.is_empty() {
            println!("    {excerpt}");
        }
    }
    println!(
        "lhmm-lint: {} file(s), {} new finding(s), {} baselined, {} waived{}",
        report.files,
        new,
        report.count_baselined(),
        report.count_waived(),
        if report.stale_baseline > 0 {
            format!(", {} stale baseline entr(ies)", report.stale_baseline)
        } else {
            String::new()
        }
    );
    let debt = report.inference_debt();
    if debt > 0 {
        eprintln!("lhmm-lint: {debt} waived/baselined finding(s) in the INFERENCE zone — must be zero");
    }
    if deny && (new > 0 || debt > 0) {
        eprintln!("lhmm-lint: failing (--deny)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn run_races_mode(seed: u64) -> ExitCode {
    let workers = (1usize, 4usize);
    let report = races::run_races(seed, workers);
    println!(
        "lhmm-lint --races: seed={:#x} cases={} workers={}/{} fingerprints={:016x}/{:016x} repeat={:016x} ch={:016x} scalar_kernel={:016x} swap={:016x}/{:016x} witness={:016x} ({}, {} locks)",
        report.seed,
        report.cases,
        report.worker_counts.0,
        report.worker_counts.1,
        report.fingerprints.0,
        report.fingerprints.1,
        report.repeat_fingerprint,
        report.ch_fingerprint,
        report.scalar_kernel_fingerprint,
        report.swap_fingerprints.0,
        report.swap_fingerprints.1,
        report.witness_fingerprint,
        if report.witness_active { "witness on" } else { "witness off" },
        report.witness_locks,
    );
    if !report.witness_ok() {
        eprintln!("lhmm-lint --races: lock witness compiled in but observed no acquisitions");
        return ExitCode::FAILURE;
    }
    if report.deterministic() {
        println!("lhmm-lint --races: deterministic across worker counts, SP backends, kernels, and mid-corpus swaps (lock-witness lane included)");
        ExitCode::SUCCESS
    } else {
        eprintln!("lhmm-lint --races: RESULT FINGERPRINTS DIVERGED — worker scheduling leaked into results");
        ExitCode::FAILURE
    }
}

/// Walks up from the current directory to the first directory holding both
/// `Cargo.toml` and `crates/`.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
