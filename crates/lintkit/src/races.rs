//! `--races` smoke mode: a cheap scheduling-nondeterminism detector.
//!
//! The static rules catch *sources* of nondeterminism; this mode checks
//! the *outcome* end to end. It generates the seeded adversarial fault
//! corpus (the same [`AdversarialCorpus`] the robustness suite uses),
//! matches it through [`BatchMatcher`] at two different worker counts,
//! and fingerprints every per-trajectory verdict — segments, candidate
//! sets, and typed-error discriminants. Any divergence means worker
//! scheduling leaked into results, which the batch engine's contract
//! (PR 1) forbids. A repeat run at the first worker count also pins
//! run-to-run determinism at a fixed schedule width, a run with the
//! SIMD kernel forced to the scalar reference pins kernel neutrality,
//! and a final run with the contraction-hierarchy backend pins
//! SP-backend neutrality.
//!
//! A final pair of runs pushes the corpus through the serving scheduler
//! with a model hot swap fired halfway through admissions, at the same
//! two worker counts: the first half is pinned to v1, the second to a
//! structurally different v2, and the fingerprints (which include each
//! verdict's `model_version` stamp) must agree — any divergence means a
//! swap leaked across the admission pin.
//!
//! The witness lane repeats the wide swap run and checks two things: the
//! fingerprint still matches (the lock-hierarchy bookkeeping in
//! `lhmm_core::sync` must be behaviorally invisible), and — when the
//! witness is compiled in (`debug_assertions` or the `lock-witness`
//! feature) — the acquisition counter actually advanced, proving the
//! serving run was rank-checked rather than silently passthrough.
//!
//! The corpus is deliberately tiny (tens of trajectories on a toy city):
//! this is a CI smoke test that runs in well under a second, not a
//! substitute for `tests/batch_equivalence.rs`.

use crate::engine::fnv1a64;
use lhmm_cellsim::dataset::{Dataset, DatasetConfig};
use lhmm_cellsim::faults::AdversarialCorpus;
use lhmm_cellsim::traj::CellularTrajectory;
use lhmm_core::batch::{BatchConfig, BatchMatcher};
use lhmm_core::error::MatchError;
use lhmm_core::lhmm::{Lhmm, LhmmConfig, LhmmModel};
use lhmm_core::registry::{ModelRegistry, ModelVersion};
use lhmm_core::types::{MatchContext, MatchResult};
use lhmm_network::backend::SpBackend;
use lhmm_serve::{BatchPolicy, MicroBatcher, ServeCtx, ServeMetrics};
use std::sync::Arc;
use std::thread;

/// Outcome of one races run.
#[derive(Debug)]
pub struct RacesReport {
    pub seed: u64,
    pub cases: usize,
    pub worker_counts: (usize, usize),
    pub fingerprints: (u64, u64),
    /// Fingerprint of the repeat run at the first worker count.
    pub repeat_fingerprint: u64,
    /// Fingerprint of a run with the contraction-hierarchy shortest-path
    /// backend (same worker count as the repeat run). The CH engine is
    /// pinned bitwise-equal to Dijkstra, so this must match too.
    pub ch_fingerprint: u64,
    /// Fingerprint of a run with the SIMD inference kernel forced to the
    /// scalar reference (`LHMM_KERNEL=scalar` equivalent, same worker
    /// count as the repeat run). Every dispatched kernel is pinned
    /// bitwise-equal to scalar, so this must match too.
    pub scalar_kernel_fingerprint: u64,
    /// Fingerprints of the swap-mid-corpus serving runs at the two worker
    /// counts: the first half of the corpus is admitted under v1, a hot
    /// swap promotes v2, the second half is admitted under v2. The
    /// fingerprint covers segments, candidate sets, typed errors, AND the
    /// `model_version` stamp of each verdict, so they only agree when the
    /// admission pin held at every schedule width.
    pub swap_fingerprints: (u64, u64),
    /// Fingerprint of the witness lane: the swap run repeated at the
    /// second worker count. Must equal `swap_fingerprints.1` — the lock
    /// witness may observe, never perturb.
    pub witness_fingerprint: u64,
    /// Whether the runtime lock witness was compiled into this binary.
    pub witness_active: bool,
    /// Rank-checked acquisitions observed during the witness lane.
    pub witness_locks: u64,
}

impl RacesReport {
    /// True when every run produced byte-identical verdicts.
    pub fn deterministic(&self) -> bool {
        self.fingerprints.0 == self.fingerprints.1
            && self.fingerprints.0 == self.repeat_fingerprint
            && self.fingerprints.0 == self.ch_fingerprint
            && self.fingerprints.0 == self.scalar_kernel_fingerprint
            && self.swap_fingerprints.0 == self.swap_fingerprints.1
            && self.witness_fingerprint == self.swap_fingerprints.1
    }

    /// True when the witness lane proves coverage: either the witness is
    /// compiled out (plain release), or it observed rank-checked
    /// acquisitions during the serving run.
    pub fn witness_ok(&self) -> bool {
        !self.witness_active || self.witness_locks > 0
    }
}

/// Byte-level fingerprint of a batch of match verdicts.
fn fingerprint(results: &[Result<MatchResult, MatchError>]) -> u64 {
    let mut bytes = Vec::new();
    for r in results {
        fingerprint_verdict(&mut bytes, r);
    }
    fnv1a64(&bytes)
}

/// Appends one verdict's bytes (shared by the batch and serve runs).
fn fingerprint_verdict(bytes: &mut Vec<u8>, r: &Result<MatchResult, MatchError>) {
    match r {
        Ok(m) => {
            bytes.push(1u8);
            bytes.extend((m.path.segments.len() as u64).to_le_bytes());
            for s in &m.path.segments {
                bytes.extend((s.0 as u64).to_le_bytes());
            }
            if let Some(sets) = &m.candidate_sets {
                bytes.push(2u8);
                for set in sets {
                    bytes.extend((set.len() as u64).to_le_bytes());
                    for s in set {
                        bytes.extend((s.0 as u64).to_le_bytes());
                    }
                }
            }
        }
        Err(MatchError::EmptyTrajectory) => bytes.push(10u8),
        Err(MatchError::NoCandidates) => bytes.push(11u8),
        Err(MatchError::LayerMismatch { .. }) => bytes.push(12u8),
        Err(MatchError::EmptyLayer { .. }) => bytes.push(13u8),
    }
}

/// Pushes the corpus through the serving scheduler with a hot swap fired
/// halfway through admissions: first half pinned to v1, second half to
/// v2. Replies are collected in submission order and fingerprinted along
/// with each verdict's `model_version` stamp, so the result only depends
/// on worker count if a pin leaks across the swap.
fn swap_run(
    ctx: MatchContext<'_>,
    trajs: &[CellularTrajectory],
    v1: &LhmmModel,
    v2: &LhmmModel,
    workers: usize,
) -> u64 {
    let registry = ModelRegistry::new(v1.clone(), "races-v1");
    let v2_version = registry.register(v2.clone(), "races-v2", Some(ModelVersion(1)));
    let mut bytes = Vec::new();
    thread::scope(|s| {
        let batcher = MicroBatcher::start(
            s,
            ServeCtx {
                ctx,
                registry: &registry,
                scope: None,
            },
            BatchPolicy {
                max_batch: 4,
                workers,
                ..Default::default()
            },
            Arc::new(ServeMetrics::new()),
        );
        let half = trajs.len() / 2;
        let mut receivers = Vec::with_capacity(trajs.len());
        for (i, t) in trajs.iter().enumerate() {
            if i == half {
                // The swap: everything admitted before this line stays on
                // v1; everything after is pinned to v2 at submit().
                let promoted = registry.promote(v2_version);
                assert!(promoted.is_ok(), "promote registered v2: {promoted:?}");
            }
            let Ok(rx) = batcher.submit(t.clone()) else {
                unreachable!("queue capacity exceeds the smoke corpus")
            };
            receivers.push(rx);
        }
        for rx in receivers {
            // Lose-nothing drain: every admitted job answers its channel.
            let Ok(reply) = rx.recv() else {
                unreachable!("scheduler dropped a reply channel")
            };
            let (verdict, version) = match reply {
                Ok((result, stats)) => (Ok(result), stats.model_version),
                Err(e) => (Err(e), 0),
            };
            bytes.extend(version.to_le_bytes());
            fingerprint_verdict(&mut bytes, &verdict);
        }
        batcher.drain();
    });
    fnv1a64(&bytes)
}

/// Runs the smoke test. Learned scorers are ablated (`use_learned_* =
/// false`): training drops to milliseconds while the engine paths whose
/// scheduling could race — Viterbi, shortcuts, shortest-path caches, the
/// warm layer — are exercised identically.
pub fn run_races(seed: u64, workers: (usize, usize)) -> RacesReport {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(seed));
    let base: Vec<_> = ds
        .test
        .iter()
        .take(4)
        .map(|r| r.cellular.clone())
        .collect();
    let corpus = AdversarialCorpus::generate(&base, seed);
    let trajs: Vec<_> = corpus.cases.iter().map(|c| c.traj.clone()).collect();

    let mut cfg = LhmmConfig::fast_test(seed);
    cfg.use_learned_obs = false;
    cfg.use_learned_trans = false;
    let mut lhmm = Lhmm::train(&ds, cfg);
    let ctx = MatchContext {
        net: &ds.network,
        index: &ds.index,
        towers: &ds.towers,
    };

    let run_at = |lhmm: &Lhmm, w: usize| {
        let matcher = BatchMatcher::new(lhmm.model(), BatchConfig::with_workers(w));
        let (results, _) = matcher.try_match_batch(&ctx, &trajs);
        fingerprint(&results)
    };

    let fingerprints = (run_at(&lhmm, workers.0), run_at(&lhmm, workers.1));
    let repeat_fingerprint = run_at(&lhmm, workers.0);
    let scalar_kernel_fingerprint = {
        let _guard = lhmm_neural::kernel::force_scope(lhmm_neural::Kernel::Scalar);
        run_at(&lhmm, workers.0)
    };

    // Swap-mid-corpus serving runs: v2 narrows the candidate budget so
    // its verdicts genuinely differ from v1's — a leaked pin changes the
    // fingerprint, not just a version stamp.
    let mut cfg2 = LhmmConfig::fast_test(seed);
    cfg2.use_learned_obs = false;
    cfg2.use_learned_trans = false;
    cfg2.k = cfg2.k.saturating_sub(1).max(1);
    let v2 = LhmmModel::train(&ds, cfg2);
    let swap_fingerprints = (
        swap_run(ctx, &trajs, lhmm.model(), &v2, workers.0),
        swap_run(ctx, &trajs, lhmm.model(), &v2, workers.1),
    );

    // Witness lane: same wide swap run, bracketed by the acquisition
    // counter so a passthrough build is told apart from a checked one.
    let locks_before = lhmm_core::sync::witness_acquisitions();
    let witness_fingerprint = swap_run(ctx, &trajs, lhmm.model(), &v2, workers.1);
    let witness_locks = lhmm_core::sync::witness_acquisitions() - locks_before;

    lhmm.set_sp_backend(&ds.network, SpBackend::Ch);
    let ch_fingerprint = run_at(&lhmm, workers.0);

    RacesReport {
        seed,
        cases: trajs.len(),
        worker_counts: workers,
        fingerprints,
        repeat_fingerprint,
        ch_fingerprint,
        scalar_kernel_fingerprint,
        swap_fingerprints,
        witness_fingerprint,
        witness_active: lhmm_core::sync::witness_enabled(),
        witness_locks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn races_smoke_is_deterministic_across_worker_counts() {
        let report = run_races(0x5EED, (1, 3));
        assert!(report.cases > 0);
        assert!(
            report.deterministic(),
            "worker scheduling leaked into results: {report:?}"
        );
        assert!(
            report.witness_ok(),
            "witness compiled in but saw no acquisitions: {report:?}"
        );
    }
}
