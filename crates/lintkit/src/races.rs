//! `--races` smoke mode: a cheap scheduling-nondeterminism detector.
//!
//! The static rules catch *sources* of nondeterminism; this mode checks
//! the *outcome* end to end. It generates the seeded adversarial fault
//! corpus (the same [`AdversarialCorpus`] the robustness suite uses),
//! matches it through [`BatchMatcher`] at two different worker counts,
//! and fingerprints every per-trajectory verdict — segments, candidate
//! sets, and typed-error discriminants. Any divergence means worker
//! scheduling leaked into results, which the batch engine's contract
//! (PR 1) forbids. A repeat run at the first worker count also pins
//! run-to-run determinism at a fixed schedule width, a run with the
//! SIMD kernel forced to the scalar reference pins kernel neutrality,
//! and a final run with the contraction-hierarchy backend pins
//! SP-backend neutrality.
//!
//! The corpus is deliberately tiny (tens of trajectories on a toy city):
//! this is a CI smoke test that runs in well under a second, not a
//! substitute for `tests/batch_equivalence.rs`.

use crate::engine::fnv1a64;
use lhmm_cellsim::dataset::{Dataset, DatasetConfig};
use lhmm_cellsim::faults::AdversarialCorpus;
use lhmm_core::batch::{BatchConfig, BatchMatcher};
use lhmm_core::error::MatchError;
use lhmm_core::lhmm::{Lhmm, LhmmConfig};
use lhmm_core::types::{MatchContext, MatchResult};
use lhmm_network::backend::SpBackend;

/// Outcome of one races run.
#[derive(Debug)]
pub struct RacesReport {
    pub seed: u64,
    pub cases: usize,
    pub worker_counts: (usize, usize),
    pub fingerprints: (u64, u64),
    /// Fingerprint of the repeat run at the first worker count.
    pub repeat_fingerprint: u64,
    /// Fingerprint of a run with the contraction-hierarchy shortest-path
    /// backend (same worker count as the repeat run). The CH engine is
    /// pinned bitwise-equal to Dijkstra, so this must match too.
    pub ch_fingerprint: u64,
    /// Fingerprint of a run with the SIMD inference kernel forced to the
    /// scalar reference (`LHMM_KERNEL=scalar` equivalent, same worker
    /// count as the repeat run). Every dispatched kernel is pinned
    /// bitwise-equal to scalar, so this must match too.
    pub scalar_kernel_fingerprint: u64,
}

impl RacesReport {
    /// True when every run produced byte-identical verdicts.
    pub fn deterministic(&self) -> bool {
        self.fingerprints.0 == self.fingerprints.1
            && self.fingerprints.0 == self.repeat_fingerprint
            && self.fingerprints.0 == self.ch_fingerprint
            && self.fingerprints.0 == self.scalar_kernel_fingerprint
    }
}

/// Byte-level fingerprint of a batch of match verdicts.
fn fingerprint(results: &[Result<MatchResult, MatchError>]) -> u64 {
    let mut bytes = Vec::new();
    for r in results {
        match r {
            Ok(m) => {
                bytes.push(1u8);
                bytes.extend((m.path.segments.len() as u64).to_le_bytes());
                for s in &m.path.segments {
                    bytes.extend((s.0 as u64).to_le_bytes());
                }
                if let Some(sets) = &m.candidate_sets {
                    bytes.push(2u8);
                    for set in sets {
                        bytes.extend((set.len() as u64).to_le_bytes());
                        for s in set {
                            bytes.extend((s.0 as u64).to_le_bytes());
                        }
                    }
                }
            }
            Err(MatchError::EmptyTrajectory) => bytes.push(10u8),
            Err(MatchError::NoCandidates) => bytes.push(11u8),
            Err(MatchError::LayerMismatch { .. }) => bytes.push(12u8),
            Err(MatchError::EmptyLayer { .. }) => bytes.push(13u8),
        }
    }
    fnv1a64(&bytes)
}

/// Runs the smoke test. Learned scorers are ablated (`use_learned_* =
/// false`): training drops to milliseconds while the engine paths whose
/// scheduling could race — Viterbi, shortcuts, shortest-path caches, the
/// warm layer — are exercised identically.
pub fn run_races(seed: u64, workers: (usize, usize)) -> RacesReport {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(seed));
    let base: Vec<_> = ds
        .test
        .iter()
        .take(4)
        .map(|r| r.cellular.clone())
        .collect();
    let corpus = AdversarialCorpus::generate(&base, seed);
    let trajs: Vec<_> = corpus.cases.iter().map(|c| c.traj.clone()).collect();

    let mut cfg = LhmmConfig::fast_test(seed);
    cfg.use_learned_obs = false;
    cfg.use_learned_trans = false;
    let mut lhmm = Lhmm::train(&ds, cfg);
    let ctx = MatchContext {
        net: &ds.network,
        index: &ds.index,
        towers: &ds.towers,
    };

    let run_at = |lhmm: &Lhmm, w: usize| {
        let matcher = BatchMatcher::new(lhmm.model(), BatchConfig::with_workers(w));
        let (results, _) = matcher.try_match_batch(&ctx, &trajs);
        fingerprint(&results)
    };

    let fingerprints = (run_at(&lhmm, workers.0), run_at(&lhmm, workers.1));
    let repeat_fingerprint = run_at(&lhmm, workers.0);
    let scalar_kernel_fingerprint = {
        let _guard = lhmm_neural::kernel::force_scope(lhmm_neural::Kernel::Scalar);
        run_at(&lhmm, workers.0)
    };
    lhmm.set_sp_backend(&ds.network, SpBackend::Ch);
    let ch_fingerprint = run_at(&lhmm, workers.0);

    RacesReport {
        seed,
        cases: trajs.len(),
        worker_counts: workers,
        fingerprints,
        repeat_fingerprint,
        ch_fingerprint,
        scalar_kernel_fingerprint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn races_smoke_is_deterministic_across_worker_counts() {
        let report = run_races(0x5EED, (1, 3));
        assert!(report.cases > 0);
        assert!(
            report.deterministic(),
            "worker scheduling leaked into results: {report:?}"
        );
    }
}
