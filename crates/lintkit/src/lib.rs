//! `lhmm-lint` — workspace determinism & robustness linter.
//!
//! The repo's headline guarantees (parallel-vs-serial byte-equivalence,
//! bit-identical vectorized scoring, panic-free degradation, wire-served
//! routes identical to offline matching) rest on source-level invariants.
//! This crate enforces them *by construction* instead of after the fact:
//!
//! * [`lexer`] — a small Rust lexer that is exact about what is code and
//!   what is string/comment/test-gated content;
//! * [`rules`] — the rule registry (`float-cmp`, `nondeterminism`,
//!   `hash-iteration`, `panic-path`, `float-cast`, `lock-order`,
//!   `guard-across-blocking`, `unsafe-fence`) and the per-crate zone
//!   policy;
//! * [`concurrency`] — the concurrency pass behind the last three rules:
//!   guard-binding tracking, the per-crate lock-acquisition graph with
//!   per-file *and* workspace-wide cycle detection, and the unsafe fence
//!   (its runtime twin is `lhmm_core::sync`, DESIGN §15);
//! * [`engine`] — workspace walking, `lint:allow` waivers with mandatory
//!   justification, and the frozen-debt baseline;
//! * [`races`] — a dynamic smoke mode matching the seeded adversarial
//!   corpus at two worker counts and comparing result fingerprints, with
//!   the lock-hierarchy witness active on the serving lane.
//!
//! The `lhmm-lint` binary wires these into CI (`ci.sh` runs
//! `lhmm-lint --deny` before the test stages). See DESIGN §10 for the
//! policy rationale and the workflow for adding a rule.

pub mod concurrency;
pub mod engine;
pub mod lexer;
pub mod races;
pub mod rules;
