//! Concurrency analysis pass: `lock-order`, `guard-across-blocking`, and
//! the `unsafe-fence` audit (DESIGN §15).
//!
//! The pass walks one file's unmasked token stream tracking *guard
//! bindings*: `let [mut] NAME = <expr>;` where the initializer *ends in*
//! a `.lock()` / `.read()` / `.write()` call (zero-argument, so `io::Read`
//! and `io::Write` calls — which always take a buffer — never match) or a
//! `lock_unpoisoned(&…)` call. "Ends in" is the load-bearing part:
//! `let n = m.lock().take();` binds the *taken value*, not the guard —
//! the guard is a temporary that dies at the `;` — so only a trailing
//! acquisition marks the binding as a guard. A tracked guard is live
//! until its enclosing brace scope closes or an explicit `drop(NAME)`.
//!
//! * **lock-order** — while a guard is live, every further acquisition
//!   records a directed edge `held → acquired` keyed per crate
//!   (`crate/field`, so two crates' `inner` fields never alias). Cycle
//!   detection runs twice: per file (so fixtures and waivers work file-
//!   locally) and once more over the whole workspace in
//!   [`crate::engine::run`], where cross-file edges can close a cycle no
//!   single file shows. Workspace-level cycles cannot be waived — rank
//!   the locks instead (the runtime twin of this rule is
//!   `lhmm_core::sync`, which enforces the declared ranks on every test
//!   run).
//! * **guard-across-blocking** — a live guard held across a blocking
//!   call: `Condvar::wait*` consuming a *different* lock's guard,
//!   `TcpStream::connect`, stream I/O (`write_all`/`read_exact`/…), the
//!   wire-protocol helpers (`write_request`/`read_response`/…), the
//!   router's `rpc`, `JoinHandle::join`, mpsc `send`/`recv*`, and
//!   `thread::sleep`. A `Condvar` wait that consumes the guard it was
//!   paired with (receiver or first argument is the tracked guard) is the
//!   legal same-lock idiom and stays silent. Intended waits (the
//!   scheduler's dispatch serialization, the router's per-tile RPC
//!   serialization) are audited via reasoned `// lint:allow(...)`
//!   waivers.
//! * **unsafe-fence** — generalizes the PR 7 kernel fence: `unsafe`,
//!   `static mut`, and `static … OnceLock` dispatch tokens are legal only
//!   in the allowlisted SIMD modules (`crates/neural/src/{avec,kernel}.rs`,
//!   carved out in [`crate::rules::rule_applies`]).
//!
//! Like every rule here, this is a token-pattern approximation, not an
//! alias analysis: only `let`-bound guards are tracked (a temporary like
//! `self.dead.lock().merge(…)` still *emits edges* from live guards but
//! is not itself tracked), and nesting that spans function calls is
//! invisible — that half of the contract belongs to the runtime witness.

use crate::lexer::{Kind, Token};
use crate::rules::{is_i, is_p, Finding};
use std::collections::{BTreeMap, BTreeSet};

/// One nested acquisition: `to` was acquired at `path:line` while a guard
/// on `from` was live. Lock names are `crate/field` qualified.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    pub from: String,
    pub to: String,
    pub path: String,
    pub line: u32,
}

/// Blocking method calls (`.name(` form) that must not run under a guard.
const BLOCKING_METHODS: &[&str] = &[
    "join",
    "send",
    "recv",
    "recv_timeout",
    "send_timeout",
    "write_all",
    "read_exact",
    "read_to_end",
    "flush",
    "rpc",
];

/// `Condvar` waits: exempt when they consume the tracked guard itself.
const WAIT_METHODS: &[&str] = &["wait", "wait_timeout", "wait_while", "wait_timeout_while"];

/// Blocking free functions (`name(` form): `thread::sleep` and the wire
/// protocol's frame I/O helpers.
const BLOCKING_FREE_FNS: &[&str] = &[
    "sleep",
    "write_request",
    "read_request",
    "write_response",
    "read_response",
];

/// A live, tracked guard binding.
struct GuardInfo {
    name: String,
    /// Qualified lock name, when the receiver was resolvable.
    lock: Option<String>,
    /// Brace depth at the `let`; the guard dies when the scope closes.
    depth: usize,
}

/// An open `let` statement (from `let` to its terminating `;`).
struct PendingLet {
    name: Option<String>,
    braces: usize,
    parens: usize,
    brackets: usize,
    /// First acquisition seen inside the initializer, if any.
    acquired: Option<Option<String>>,
}

/// Crate qualifier for lock names: `crates/serve/src/x.rs` → `serve`.
fn crate_of(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("root")
}

/// Walks back over an index suffix (`conns[tile]` → `conns`) and returns
/// the receiver identifier, if the expression ends in one.
fn receiver_name(toks: &[&Token], mut j: usize) -> Option<String> {
    loop {
        if is_p(toks[j], "]") {
            let mut depth = 0usize;
            loop {
                if is_p(toks[j], "]") {
                    depth += 1;
                } else if is_p(toks[j], "[") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j = j.checked_sub(1)?;
            }
            j = j.checked_sub(1)?;
        } else {
            break;
        }
    }
    (toks[j].kind == Kind::Ident).then(|| toks[j].text.clone())
}

/// Last top-level identifier inside a call's parens, skipping indexing:
/// `lock_unpoisoned(&self.slots[tile])` → `slots`.
fn arg_path_last_ident(toks: &[&Token], open: usize) -> Option<String> {
    let mut parens = 0usize;
    let mut brackets = 0usize;
    let mut last = None;
    for t in toks.iter().skip(open) {
        if is_p(t, "(") {
            parens += 1;
        } else if is_p(t, ")") {
            parens -= 1;
            if parens == 0 {
                break;
            }
        } else if is_p(t, "[") {
            brackets += 1;
        } else if is_p(t, "]") {
            brackets = brackets.saturating_sub(1);
        } else if parens == 1 && brackets == 0 && t.kind == Kind::Ident {
            last = Some(t.text.clone());
        }
    }
    last
}

/// Index of the `)` matching the `(` at `open`.
fn matching_close(toks: &[&Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if is_p(t, "(") {
            depth += 1;
        } else if is_p(t, ")") {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// First identifier after a call's `(`, skipping `&`/`mut` sigils — the
/// guard argument of `cv.wait_timeout(guard, dur)`.
fn first_arg_ident(toks: &[&Token], open: usize) -> Option<String> {
    for t in toks.iter().skip(open + 1) {
        if is_p(t, "&") || is_i(t, "mut") {
            continue;
        }
        return (t.kind == Kind::Ident).then(|| t.text.clone());
    }
    None
}

fn held_list(guards: &[GuardInfo], skip: Option<&str>) -> String {
    let names: Vec<&str> = guards
        .iter()
        .filter(|g| Some(g.name.as_str()) != skip)
        .map(|g| g.name.as_str())
        .collect();
    names.join("`, `")
}

fn blocking_finding(
    rel: &str,
    line: u32,
    what: &str,
    guards: &[GuardInfo],
    skip: Option<&str>,
    out: &mut Vec<Finding>,
) {
    out.push(Finding {
        rule: "guard-across-blocking",
        path: rel.to_string(),
        line,
        message: format!(
            "blocking {what} while lock guard `{}` is live; drop or scope the guard first, \
             or waive with the intended-wait rationale",
            held_list(guards, skip)
        ),
        waived: false,
        baselined: false,
    });
}

/// Runs the concurrency pass over one file's unmasked tokens. Findings
/// for the enabled rules are appended to `out`; lock edges (when
/// `lock_graph` is on) to `edges` for per-file and workspace-level cycle
/// detection.
pub fn scan(
    rel: &str,
    toks: &[&Token],
    lock_graph: bool,
    blocking: bool,
    fence: bool,
    out: &mut Vec<Finding>,
    edges: &mut Vec<LockEdge>,
) {
    let krate = crate_of(rel);
    let mut braces = 0usize;
    let mut parens = 0usize;
    let mut brackets = 0usize;
    let mut guards: Vec<GuardInfo> = Vec::new();
    let mut pendings: Vec<PendingLet> = Vec::new();

    let commit = |p: PendingLet, guards: &mut Vec<GuardInfo>| {
        if let (Some(name), Some(lock)) = (p.name, p.acquired) {
            guards.push(GuardInfo {
                name,
                lock,
                depth: p.braces,
            });
        }
    };

    for i in 0..toks.len() {
        let t = toks[i];
        // Bracketing and statement/scope bookkeeping.
        if t.kind == Kind::Punct {
            match t.text.as_str() {
                "{" => braces += 1,
                "}" => {
                    braces = braces.saturating_sub(1);
                    while pendings.last().is_some_and(|p| p.braces > braces) {
                        if let Some(p) = pendings.pop() {
                            commit(p, &mut guards);
                        }
                    }
                    guards.retain(|g| g.depth <= braces);
                }
                "(" => parens += 1,
                ")" => parens = parens.saturating_sub(1),
                "[" => brackets += 1,
                "]" => brackets = brackets.saturating_sub(1),
                ";" => {
                    let closes_stmt = pendings.last().is_some_and(|p| {
                        p.braces == braces && p.parens == parens && p.brackets == brackets
                    });
                    if closes_stmt {
                        if let Some(p) = pendings.pop() {
                            commit(p, &mut guards);
                        }
                    }
                }
                _ => {}
            }
            continue;
        }
        if t.kind != Kind::Ident {
            continue;
        }
        let name = t.text.as_str();

        // `let [mut] NAME [: ty] = …` opens a pending guard binding;
        // tuple/enum patterns still open a (nameless) pending statement.
        if name == "let" {
            let mut j = i + 1;
            if j < toks.len() && is_i(toks[j], "mut") {
                j += 1;
            }
            // `let _ = …` drops its value at the end of the statement —
            // a guard bound to `_` is never live afterwards.
            let bound = (j + 1 < toks.len()
                && toks[j].kind == Kind::Ident
                && toks[j].text != "_"
                && (is_p(toks[j + 1], "=") || is_p(toks[j + 1], ":")))
            .then(|| toks[j].text.clone());
            pendings.push(PendingLet {
                name: bound,
                braces,
                parens,
                brackets,
                acquired: None,
            });
            continue;
        }

        // `drop(NAME)` releases the newest guard of that name.
        if name == "drop"
            && i + 3 < toks.len()
            && is_p(toks[i + 1], "(")
            && toks[i + 2].kind == Kind::Ident
            && is_p(toks[i + 3], ")")
        {
            if let Some(pos) = guards.iter().rposition(|g| g.name == toks[i + 2].text) {
                guards.remove(pos);
            }
            continue;
        }

        // Acquisitions: `.lock()` / `.read()` / `.write()` (zero-arg) and
        // `lock_unpoisoned(&path)`.
        let acquired_lock = if matches!(name, "lock" | "read" | "write")
            && i >= 2
            && is_p(toks[i - 1], ".")
            && i + 2 < toks.len()
            && is_p(toks[i + 1], "(")
            && is_p(toks[i + 2], ")")
        {
            Some((receiver_name(toks, i - 2), i + 2))
        } else if name == "lock_unpoisoned" && i + 1 < toks.len() && is_p(toks[i + 1], "(") {
            matching_close(toks, i + 1).map(|close| (arg_path_last_ident(toks, i + 1), close))
        } else {
            None
        };
        if let Some((lock, close)) = acquired_lock {
            let qualified = lock.map(|l| format!("{krate}/{l}"));
            if lock_graph {
                if let Some(to) = &qualified {
                    for g in &guards {
                        if let Some(from) = &g.lock {
                            edges.push(LockEdge {
                                from: from.clone(),
                                to: to.clone(),
                                path: rel.to_string(),
                                line: t.line,
                            });
                        }
                    }
                }
            }
            // Only a *trailing* acquisition makes the `let` a guard
            // binding: in `let n = m.lock().take();` the guard is a
            // temporary that dies at the `;`.
            let trailing = close + 1 < toks.len() && is_p(toks[close + 1], ";");
            if trailing {
                if let Some(p) = pendings.last_mut() {
                    if p.acquired.is_none() {
                        p.acquired = Some(qualified);
                    }
                }
            }
            continue;
        }

        // Blocking calls under a live guard.
        if blocking && !guards.is_empty() {
            let is_method_call = i >= 1
                && is_p(toks[i - 1], ".")
                && i + 1 < toks.len()
                && is_p(toks[i + 1], "(");
            if is_method_call && BLOCKING_METHODS.contains(&name) {
                blocking_finding(rel, t.line, &format!("`.{name}()` call"), &guards, None, out);
            } else if is_method_call && WAIT_METHODS.contains(&name) {
                // Same-lock wait: the guard consumed (receiver for the
                // OrderedGuard form, first argument for the Condvar form)
                // is exempt; any *other* live guard is a finding.
                let consumed = [
                    (i >= 2).then(|| receiver_name(toks, i - 2)).flatten(),
                    first_arg_ident(toks, i + 1),
                ]
                .into_iter()
                .flatten()
                .find(|n| guards.iter().any(|g| &g.name == n));
                let skip = consumed.as_deref();
                if guards.iter().any(|g| Some(g.name.as_str()) != skip) {
                    blocking_finding(
                        rel,
                        t.line,
                        &format!("`Condvar` `.{name}()` on a different lock"),
                        &guards,
                        skip,
                        out,
                    );
                }
            } else if BLOCKING_FREE_FNS.contains(&name)
                && i + 1 < toks.len()
                && is_p(toks[i + 1], "(")
            {
                blocking_finding(rel, t.line, &format!("`{name}(…)` call"), &guards, None, out);
            } else if name == "connect"
                && i >= 2
                && is_p(toks[i - 1], "::")
                && is_i(toks[i - 2], "TcpStream")
            {
                blocking_finding(rel, t.line, "`TcpStream::connect`", &guards, None, out);
            }
        }

        // The unsafe fence (independent of guard state).
        if fence {
            match name {
                "unsafe" => out.push(Finding {
                    rule: "unsafe-fence",
                    path: rel.to_string(),
                    line: t.line,
                    message: "`unsafe` outside the allowlisted SIMD modules (`avec`/`kernel`); \
                              the fence keeps the no-UB surface auditable"
                        .to_string(),
                    waived: false,
                    baselined: false,
                }),
                "static" if i + 1 < toks.len() && is_i(toks[i + 1], "mut") => {
                    out.push(Finding {
                        rule: "unsafe-fence",
                        path: rel.to_string(),
                        line: t.line,
                        message: "`static mut` outside the allowlisted SIMD modules; \
                                  use a rank-ordered lock or a local"
                            .to_string(),
                        waived: false,
                        baselined: false,
                    });
                }
                "OnceLock"
                    if toks[i.saturating_sub(6)..i].iter().any(|p| is_i(p, "static")) =>
                {
                    out.push(Finding {
                        rule: "unsafe-fence",
                        path: rel.to_string(),
                        line: t.line,
                        message: "global `static … OnceLock` dispatch state outside the \
                                  allowlisted kernel module"
                            .to_string(),
                        waived: false,
                        baselined: false,
                    });
                }
                _ => {}
            }
        }
    }
}

/// Cycle detection over an edge set (one file's, or the whole
/// workspace's): an edge is reported when its target can reach its source
/// through the graph — including the self-loop `m → m` of a re-entrant
/// `.lock()`. Output is deduplicated and deterministically ordered.
pub fn cycle_findings(edges: &[LockEdge]) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.from.as_str()).or_default().insert(e.to.as_str());
    }
    let mut cyclic: BTreeSet<(&str, u32, &str, &str)> = BTreeSet::new();
    for e in edges {
        if reaches(&adj, &e.to, &e.from) {
            cyclic.insert((e.path.as_str(), e.line, e.from.as_str(), e.to.as_str()));
        }
    }
    cyclic
        .into_iter()
        .map(|(path, line, from, to)| Finding {
            rule: "lock-order",
            path: path.to_string(),
            line,
            message: format!(
                "acquiring `{to}` while holding `{from}` closes a lock-order cycle \
                 (`{to}` ⇝ `{from}` elsewhere); acquire in one global rank order \
                 (see `lhmm_core::sync`)"
            ),
            waived: false,
            baselined: false,
        })
        .collect()
}

fn reaches(adj: &BTreeMap<&str, BTreeSet<&str>>, start: &str, target: &str) -> bool {
    let mut stack = vec![start];
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    while let Some(n) = stack.pop() {
        if let Some(next) = adj.get(n) {
            for m in next {
                if *m == target {
                    return true;
                }
                if seen.insert(m) {
                    stack.push(m);
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scan_src(src: &str) -> (Vec<Finding>, Vec<LockEdge>) {
        let lexed = lex(src);
        let toks: Vec<&Token> = lexed.tokens.iter().filter(|t| !t.masked).collect();
        let mut out = Vec::new();
        let mut edges = Vec::new();
        scan("crates/serve/src/x.rs", &toks, true, true, true, &mut out, &mut edges);
        (out, edges)
    }

    #[test]
    fn nested_acquisition_records_an_edge() {
        let (f, e) = scan_src("fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); use2(&a, &b); }");
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(e.len(), 1);
        assert_eq!((e[0].from.as_str(), e[0].to.as_str()), ("serve/alpha", "serve/beta"));
    }

    #[test]
    fn inverted_order_across_fns_is_a_cycle() {
        let (_, e) = scan_src(
            "fn ab(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }\n\
             fn ba(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); }",
        );
        assert_eq!(e.len(), 2);
        let f = cycle_findings(&e);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == "lock-order"));
    }

    #[test]
    fn reentrant_lock_is_a_self_cycle() {
        let (_, e) = scan_src("fn f(&self) { let a = self.m.lock(); let b = self.m.lock(); }");
        assert_eq!(cycle_findings(&e).len(), 1);
    }

    #[test]
    fn scope_and_drop_end_guards() {
        let (f, e) = scan_src(
            "fn f(&self) { { let a = self.alpha.lock(); a.touch(); } let b = self.beta.lock(); \
             drop(b); let c = self.alpha.lock(); std::thread::sleep(d); }",
        );
        // `a` died with its block and `b` was dropped, so no edges; the
        // sleep still runs under the live `c` guard.
        assert_eq!(e.len(), 0, "{e:?}");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "guard-across-blocking");
    }

    #[test]
    fn same_lock_condvar_wait_is_silent() {
        let (f, _) = scan_src(
            "fn f(&self) { let mut st = self.inner.lock(); loop { \
             let (next, res) = self.not_empty.wait_timeout(st, dur); st = next; } }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn guard_receiver_wait_is_silent() {
        let (f, _) = scan_src(
            "fn f(&self) { let mut st = self.inner.lock(); \
             let (next, timed) = st.wait_timeout(&self.not_empty, dur); }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn wait_on_a_different_lock_is_flagged() {
        let (f, _) = scan_src(
            "fn f(&self) { let held = self.table.lock(); let st = self.queue.lock(); \
             let st = self.cv.wait_timeout(st, dur); }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "guard-across-blocking");
    }

    #[test]
    fn chained_take_does_not_bind_a_guard() {
        // The guard in `let h = m.lock().take();` is a temporary dropped
        // at the `;` — `h` is the taken handle, and joining it is legal.
        let (f, _) = scan_src(
            "fn f(&self) { let accept = self.accept.lock().take(); \
             if let Some(h) = accept { let _ = h.join(); } }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn io_read_write_with_args_are_not_acquisitions() {
        let (f, e) = scan_src("fn f(s: &mut TcpStream, b: &mut [u8]) { let n = s.read(b); s.write(b); }");
        assert!(f.is_empty(), "{f:?}");
        assert!(e.is_empty(), "{e:?}");
    }

    #[test]
    fn unsafe_fence_fires_on_all_three_shapes() {
        let (f, _) = scan_src(
            "static D: OnceLock<u32> = OnceLock::new();\n\
             static mut S: u32 = 0;\n\
             fn f() { unsafe { g() } }",
        );
        let rules: Vec<_> = f.iter().map(|f| f.rule).collect();
        assert_eq!(rules, ["unsafe-fence", "unsafe-fence", "unsafe-fence"], "{f:?}");
    }
}
