//! A small, self-contained Rust lexer for the linter.
//!
//! This is deliberately *not* a full Rust parser: the rules in
//! [`crate::rules`] are token-pattern checks, so all the lexer has to get
//! right is the part that decides whether a byte of source is *code* at
//! all. Concretely it must never emit a code token for content inside:
//!
//! * string literals (plain, byte, raw `r"…"` / `r#"…"#` with any number
//!   of hashes),
//! * character and byte-character literals (and never confuse `'a'` with
//!   the lifetime `'a`),
//! * line comments and (nested) block comments,
//! * `#[cfg(test)]` / `#[test]`-gated items and `mod tests { … }` bodies,
//!   which are marked with [`Token::masked`] so rules can skip them.
//!
//! Line comments are additionally collected verbatim so the waiver parser
//! (`// lint:allow(rule): reason`) can see them. The property tests in
//! `tests/lexer_props.rs` pin the "content in strings/comments can never
//! produce a finding" guarantee.

/// Kind of a code token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`foo`, `fn`, `unwrap`).
    Ident,
    /// Integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `2e-3`, `4f32`).
    Float,
    /// Punctuation; two-character operators that matter to rules
    /// (`==`, `!=`, `<=`, `>=`, `::`, `->`, `=>`, `&&`, `||`) are merged
    /// into a single token, everything else is one character.
    Punct,
    /// Lifetime or loop label (`'a`, `'outer`). Kept distinct so rules
    /// never mistake one for an identifier.
    Lifetime,
}

/// One code token. String/char literal *contents* never become tokens; a
/// string literal is represented by a single `Punct` token with text `"\""`
/// placeholder? — no: literals are dropped entirely from the stream, which
/// is exactly what makes them invisible to rules.
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: Kind,
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// True when the token sits inside a `#[cfg(test)]`/`#[test]` item or
    /// a `mod tests { … }` body; rules skip masked tokens.
    pub masked: bool,
}

/// A line comment (`//`, `///`, `//!`), text without the leading slashes.
#[derive(Clone, Debug)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// Lexing result: the code token stream plus the comment side channel.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Lexes `src` and applies the test-region mask.
pub fn lex(src: &str) -> Lexed {
    let mut lx = Lexer {
        b: src.as_bytes(),
        i: 0,
        line: 1,
        out: Lexed::default(),
    };
    lx.run();
    let mut lexed = lx.out;
    apply_test_mask(&mut lexed.tokens);
    lexed
}

struct Lexer<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.b.get(self.i + ahead).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek(0);
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
        }
        c
    }

    fn push(&mut self, kind: Kind, text: String, line: u32) {
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            masked: false,
        });
    }

    fn run(&mut self) {
        while self.i < self.b.len() {
            let line = self.line;
            let c = self.peek(0);
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => self.string_literal(),
                b'\'' => self.quote(),
                b'0'..=b'9' => self.number(),
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident_or_prefixed_literal(),
                _ => {
                    self.bump();
                    let two = [c, self.peek(0)];
                    let merged = matches!(
                        &two,
                        b"==" | b"!=" | b"<=" | b">=" | b"::" | b"->" | b"=>" | b"&&" | b"||"
                    );
                    if merged {
                        self.bump();
                        let text = String::from_utf8_lossy(&two).into_owned();
                        self.push(Kind::Punct, text, line);
                    } else if c.is_ascii() {
                        self.push(Kind::Punct, (c as char).to_string(), line);
                    }
                    // Non-ASCII bytes (inside identifiers we don't support,
                    // or stray unicode) are dropped; rules only match ASCII
                    // patterns.
                }
            }
        }
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let start = self.i;
        while self.i < self.b.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        self.out.comments.push(Comment { line, text });
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while self.i < self.b.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                self.bump();
                self.bump();
                depth += 1;
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                self.bump();
                self.bump();
                depth -= 1;
            } else {
                self.bump();
            }
        }
    }

    /// Plain or byte string body, opening quote not yet consumed.
    fn string_literal(&mut self) {
        self.bump(); // opening "
        while self.i < self.b.len() {
            match self.bump() {
                b'\\' => {
                    // Any escape: consume the escaped byte blindly; `\u{…}`
                    // braces are plain string bytes afterwards.
                    self.bump();
                }
                b'"' => return,
                _ => {}
            }
        }
    }

    /// Raw string after the `r`/`br` prefix: `#…#"` … `"#…#`.
    fn raw_string(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            self.bump();
            hashes += 1;
        }
        if self.peek(0) != b'"' {
            return; // not actually a raw string (e.g. `r#ident`); bail.
        }
        self.bump();
        'scan: while self.i < self.b.len() {
            if self.bump() == b'"' {
                for k in 0..hashes {
                    if self.peek(k) != b'#' {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                return;
            }
        }
    }

    /// `'` — either a char literal or a lifetime/label.
    fn quote(&mut self) {
        let line = self.line;
        self.bump(); // '
        let c = self.peek(0);
        if c == b'\\' {
            // Escaped char literal: '\n', '\'', '\u{1F600}'.
            self.bump();
            self.bump();
            while self.i < self.b.len() && self.peek(0) != b'\'' {
                self.bump();
            }
            self.bump();
        } else if self.peek(1) == b'\'' && c != b'\'' {
            // Plain char literal 'x'.
            self.bump();
            self.bump();
        } else if is_ident_start(c) {
            // Lifetime or label: consume the identifier, no closing quote.
            let start = self.i;
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
            let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
            self.push(Kind::Lifetime, text, line);
        } else {
            // Degenerate ('' or '<punct>'): treat as empty char literal.
            if self.peek(0) == b'\'' {
                self.bump();
            }
        }
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.i;
        let mut float = false;
        if self.peek(0) == b'0' && matches!(self.peek(1), b'x' | b'b' | b'o') {
            self.bump();
            self.bump();
            while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == b'_' {
                self.bump();
            }
        } else {
            while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                self.bump();
            }
            // Fractional part only when a digit follows the dot — `x.0` tuple
            // access and `0..n` ranges stay integers.
            if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
                float = true;
                self.bump();
                while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                    self.bump();
                }
            }
            // Exponent.
            if matches!(self.peek(0), b'e' | b'E') {
                let (s1, s2) = (self.peek(1), self.peek(2));
                if s1.is_ascii_digit() || (matches!(s1, b'+' | b'-') && s2.is_ascii_digit()) {
                    float = true;
                    self.bump();
                    if matches!(self.peek(0), b'+' | b'-') {
                        self.bump();
                    }
                    while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                        self.bump();
                    }
                }
            }
            // Type suffix (`f64`, `u32`, …) — an `f` suffix makes it a float.
            if is_ident_start(self.peek(0)) {
                if self.peek(0) == b'f' {
                    float = true;
                }
                while is_ident_continue(self.peek(0)) {
                    self.bump();
                }
            }
        }
        let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        let kind = if float { Kind::Float } else { Kind::Int };
        self.push(kind, text, line);
    }

    fn ident_or_prefixed_literal(&mut self) {
        let line = self.line;
        let start = self.i;
        while is_ident_continue(self.peek(0)) {
            self.bump();
        }
        let text = &self.b[start..self.i];
        // String/char literal prefixes glued to a quote or raw-string hash.
        match text {
            b"r" | b"br" | b"rb" if matches!(self.peek(0), b'"' | b'#') => {
                self.raw_string();
                return;
            }
            b"b" if self.peek(0) == b'"' => {
                self.string_literal();
                return;
            }
            b"b" if self.peek(0) == b'\'' => {
                self.quote();
                return;
            }
            _ => {}
        }
        let text = String::from_utf8_lossy(text).into_owned();
        self.push(Kind::Ident, text, line);
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Marks tokens inside test-only regions:
///
/// * items following `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, …))]`
///   or `#[cfg(all(test, …))]` attributes (any attribute whose first path
///   segment is `cfg` and that mentions `test` outside a `not(…)`), and
/// * `mod tests { … }` / `mod test { … }` bodies.
///
/// Inner attributes (`#![…]`, e.g. the crate-level
/// `#![cfg_attr(not(test), deny(…))]`) never mask anything.
fn apply_test_mask(tokens: &mut [Token]) {
    let mut i = 0;
    while i < tokens.len() {
        if is_punct(&tokens[i], "#") && i + 1 < tokens.len() && is_punct(&tokens[i + 1], "[") {
            let (attr_end, masks) = scan_attribute(tokens, i + 1);
            if masks {
                // Skip any further outer attributes between this one and
                // the item itself (`#[cfg(test)] #[derive(Debug)] struct …`).
                let mut j = attr_end;
                while j + 1 < tokens.len()
                    && is_punct(&tokens[j], "#")
                    && is_punct(&tokens[j + 1], "[")
                {
                    j = scan_attribute(tokens, j + 1).0;
                }
                let item_end = scan_item(tokens, j);
                for t in &mut tokens[i..item_end] {
                    t.masked = true;
                }
                i = item_end;
                continue;
            }
            i = attr_end;
            continue;
        }
        if is_ident(&tokens[i], "mod")
            && i + 2 < tokens.len()
            && matches!(tokens[i + 1].text.as_str(), "tests" | "test")
            && tokens[i + 1].kind == Kind::Ident
            && is_punct(&tokens[i + 2], "{")
        {
            let end = matching_brace(tokens, i + 2);
            for t in &mut tokens[i..end] {
                t.masked = true;
            }
            i = end;
            continue;
        }
        i += 1;
    }
}

fn is_punct(t: &Token, s: &str) -> bool {
    t.kind == Kind::Punct && t.text == s
}

fn is_ident(t: &Token, s: &str) -> bool {
    t.kind == Kind::Ident && t.text == s
}

/// Scans an attribute starting at its `[` token; returns (index one past
/// the closing `]`, whether the attribute marks a test-only item).
fn scan_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut idents: Vec<&str> = Vec::new();
    let mut j = open;
    while j < tokens.len() {
        let t = &tokens[j];
        if is_punct(t, "[") {
            depth += 1;
        } else if is_punct(t, "]") {
            depth -= 1;
            if depth == 0 {
                j += 1;
                break;
            }
        } else if t.kind == Kind::Ident {
            idents.push(t.text.as_str());
        }
        j += 1;
    }
    let masks = match idents.first() {
        Some(&"test") => idents.len() == 1,
        Some(&"cfg") => idents.contains(&"test") && !idents.contains(&"not"),
        _ => false,
    };
    (j, masks)
}

/// Scans one item starting at `start`: through the matching `}` of the
/// first top-level `{`, or through the first top-level `;` when the item
/// has no body (`#[cfg(test)] use …;`).
fn scan_item(tokens: &[Token], start: usize) -> usize {
    let mut j = start;
    while j < tokens.len() {
        let t = &tokens[j];
        if is_punct(t, "{") {
            return matching_brace(tokens, j);
        }
        if is_punct(t, ";") {
            return j + 1;
        }
        j += 1;
    }
    j
}

/// Index one past the `}` matching the `{` at `open`.
fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < tokens.len() {
        if is_punct(&tokens[j], "{") {
            depth += 1;
        } else if is_punct(&tokens[j], "}") {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| !t.masked)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn strings_and_comments_are_invisible() {
        let src = r###"
            let x = "a.partial_cmp(b) == 0.0"; // partial_cmp in comment
            /* unwrap() in /* nested */ block */
            let y = r#"thread_rng() "quoted" here"#;
            let z = b"Instant::now()";
        "###;
        let ts = texts(src);
        assert!(!ts.iter().any(|t| t == "partial_cmp"));
        assert!(!ts.iter().any(|t| t == "unwrap"));
        assert!(!ts.iter().any(|t| t == "thread_rng"));
        assert!(!ts.iter().any(|t| t == "Instant"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; let esc = '\\''; }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        // 'x' must not leak an ident token `x`… beyond the binding names.
        let idents: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(
            idents,
            vec!["fn", "f", "x", "str", "let", "c", "let", "esc"]
        );
    }

    #[test]
    fn floats_vs_tuple_access_and_ranges() {
        let lexed = lex("a.1.partial_cmp(&b.1); for i in 0..10 {} let f = 1.5e-3f64; let g = 2f32; let h = 7;");
        let floats: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Float)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(floats, vec!["1.5e-3f64", "2f32"]);
        // Tuple indices and range bounds stay integers.
        let ints: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Int)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(ints, vec!["1", "1", "0", "10", "7"]);
    }

    #[test]
    fn cfg_test_items_and_mod_tests_are_masked() {
        let src = r#"
            fn live() { x.unwrap(); }
            #[cfg(test)]
            fn gated() { y.unwrap(); }
            #[cfg(all(test, feature = "slow"))]
            mod gated_mod { fn g() { z.unwrap(); } }
            #[cfg(not(test))]
            fn prod() { w.unwrap(); }
            mod tests { fn t() { v.unwrap(); } }
        "#;
        let lexed = lex(src);
        let unmasked: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| !t.masked && t.text == "unwrap")
            .map(|t| t.line)
            .collect();
        // Only `live` (line 2) and the `#[cfg(not(test))] prod` fn survive.
        assert_eq!(unmasked.len(), 2, "masked set wrong: {lexed:?}");
    }

    #[test]
    fn inner_attributes_do_not_mask() {
        let src = "#![cfg_attr(not(test), deny(clippy::unwrap_used))]\nfn f() { a.unwrap(); }";
        let lexed = lex(src);
        assert!(lexed
            .tokens
            .iter()
            .any(|t| !t.masked && t.text == "unwrap"));
    }

    #[test]
    fn raw_string_hashes_balance() {
        let src = r####"let s = r##"contains "# inside"##; let after = unwrap;"####;
        let lexed = lex(src);
        assert!(lexed.tokens.iter().any(|t| t.text == "after"));
        assert!(lexed.tokens.iter().any(|t| t.text == "unwrap"));
        assert!(!lexed.tokens.iter().any(|t| t.text == "contains"));
    }

    #[test]
    fn line_comments_are_collected_for_waivers() {
        let src = "let a = 1; // lint:allow(float-cmp): tolerance documented\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("lint:allow(float-cmp)"));
        assert_eq!(lexed.comments[0].line, 1);
    }
}
