//! Workspace walking, waiver application, and baseline bookkeeping.
//!
//! # Waivers
//!
//! A finding can be waived inline with
//! `// lint:allow(<rule>): <reason>` on the finding's line or the line
//! directly above. The reason is mandatory: a waiver without one (or
//! naming an unknown rule) is itself reported under the `waiver` rule and
//! can be neither waived nor baselined.
//!
//! # Baseline
//!
//! `lint-baseline.txt` freezes pre-existing debt so only *new* findings
//! fail CI. Entries are keyed by `(rule, path, hash of the trimmed source
//! line)` — stable under line-number drift — with multiset semantics for
//! identical lines. Inference-zone findings are **never** baselined or
//! consumed from the baseline: the inference zone must be fixed, not
//! frozen (see DESIGN §10).

use crate::concurrency::{cycle_findings, LockEdge};
use crate::lexer::{lex, Comment};
use crate::rules::{check_file_edges, zone_of, Finding, Zone, RULES};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lint run over the workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, with `waived`/`baselined` resolved.
    pub findings: Vec<Finding>,
    /// Source line text per finding (same order), for display and keying.
    pub excerpts: Vec<String>,
    /// Baseline entries that matched no current finding (fixed debt) or
    /// that pointed into the inference zone (never honored).
    pub stale_baseline: usize,
    /// Files linted.
    pub files: usize,
}

impl Report {
    /// Findings that fail a `--deny` run: not waived, not baselined.
    pub fn new_findings(&self) -> impl Iterator<Item = (&Finding, &str)> {
        self.findings
            .iter()
            .zip(self.excerpts.iter())
            .filter(|(f, _)| !f.waived && !f.baselined)
            .map(|(f, e)| (f, e.as_str()))
    }

    pub fn count_new(&self) -> usize {
        self.new_findings().count()
    }

    pub fn count_waived(&self) -> usize {
        self.findings.iter().filter(|f| f.waived).count()
    }

    pub fn count_baselined(&self) -> usize {
        self.findings.iter().filter(|f| f.baselined).count()
    }

    /// Waived or baselined findings inside the inference zone — the
    /// acceptance bar requires this to be zero, and `--deny` prints it.
    pub fn inference_debt(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| (f.waived || f.baselined) && zone_of(&f.path) == Some(Zone::Inference))
            .count()
    }
}

/// FNV-1a 64-bit — same construction the fault corpus fingerprint uses.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A parsed `lint:allow` waiver.
struct Waiver {
    line: u32,
    rule: String,
    /// `Some(finding)` when the waiver itself is malformed.
    defect: Option<&'static str>,
    /// Set once the waiver suppressed a finding on its own line; a consumed
    /// trailing waiver does not spill onto the next line.
    used: bool,
}

fn parse_waivers(rel: &str, comments: &[Comment], out: &mut Vec<Finding>) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for c in comments {
        // Waivers are directives in plain `//` comments; doc comments
        // (`///`, `//!`) merely *talk about* waivers.
        if c.text.starts_with('/') || c.text.starts_with('!') {
            continue;
        }
        let Some(at) = c.text.find("lint:allow(") else {
            continue;
        };
        let rest = &c.text[at + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else {
            push_waiver_finding(rel, c.line, "unterminated `lint:allow(` waiver", out);
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let tail = rest[close + 1..].trim_start();
        let reason = tail.strip_prefix(':').map(str::trim).unwrap_or("");
        let defect = if !RULES.contains(&rule.as_str()) || rule == "waiver" {
            Some("waiver names an unknown rule")
        } else if reason.is_empty() {
            Some("waiver without a justification; write `lint:allow(rule): <reason>`")
        } else {
            None
        };
        if let Some(msg) = defect {
            push_waiver_finding(rel, c.line, msg, out);
        }
        waivers.push(Waiver {
            line: c.line,
            rule,
            defect,
            used: false,
        });
    }
    waivers
}

fn push_waiver_finding(rel: &str, line: u32, msg: &str, out: &mut Vec<Finding>) {
    out.push(Finding {
        rule: "waiver",
        path: rel.to_string(),
        line,
        message: msg.to_string(),
        waived: false,
        baselined: false,
    });
}

/// Lints one file's source text (exposed for the fixture tests).
pub fn check_source(rel: &str, zone: Zone, src: &str) -> Vec<Finding> {
    check_source_full(rel, zone, src).0
}

/// [`check_source`] plus the file's lock-acquisition edges. Cycles among
/// the file's *own* edges are reported here (and are waivable like any
/// finding); [`run`] re-runs cycle detection over the whole workspace's
/// edges, where cross-file cycles surface — those cannot be waived.
pub fn check_source_full(rel: &str, zone: Zone, src: &str) -> (Vec<Finding>, Vec<LockEdge>) {
    let lexed = lex(src);
    let (mut findings, edges) = check_file_edges(rel, zone, &lexed);
    findings.extend(cycle_findings(&edges));
    let mut waiver_findings = Vec::new();
    let mut waivers = parse_waivers(rel, &lexed.comments, &mut waiver_findings);
    // Same-line (trailing) coverage first …
    for f in &mut findings {
        for w in &mut waivers {
            if w.defect.is_none() && w.rule == f.rule && w.line == f.line {
                f.waived = true;
                w.used = true;
            }
        }
    }
    // … then standalone waiver comments cover the line below. A waiver
    // already consumed on its own line does not spill downward.
    for f in &mut findings {
        if f.waived {
            continue;
        }
        let covered = waivers
            .iter()
            .any(|w| w.defect.is_none() && !w.used && w.rule == f.rule && w.line + 1 == f.line);
        if covered {
            f.waived = true;
        }
    }
    findings.extend(waiver_findings);
    findings.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.cmp(b.rule)));
    (findings, edges)
}

/// Recursively collects `.rs` files under `dir`, repo-relative, sorted.
fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return Ok(()), // absent tree (e.g. no root src/) is fine
    };
    for entry in entries {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

fn rel_str(p: &Path) -> String {
    // Forward slashes so baseline entries are platform-stable.
    p.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Runs the linter over the workspace at `root`, applying the baseline at
/// `baseline_path` when it exists.
pub fn run(root: &Path, baseline_path: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_rs(root, &root.join("crates"), &mut files)?;
    collect_rs(root, &root.join("src"), &mut files)?;
    files.sort();

    let mut report = Report::default();
    let mut all_edges: Vec<LockEdge> = Vec::new();
    // Trimmed source lines of files that contributed lock edges, for
    // excerpting workspace-level cycle findings after the walk.
    let mut edge_file_lines: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for rel in &files {
        let rel_s = rel_str(rel);
        let Some(zone) = zone_of(&rel_s) else {
            continue;
        };
        report.files += 1;
        let src = fs::read_to_string(root.join(rel))?;
        let lines: Vec<&str> = src.lines().collect();
        let (findings, edges) = check_source_full(&rel_s, zone, &src);
        for f in findings {
            let excerpt = lines
                .get(f.line.saturating_sub(1) as usize)
                .map(|l| l.trim().to_string())
                .unwrap_or_default();
            report.findings.push(f);
            report.excerpts.push(excerpt);
        }
        if !edges.is_empty() {
            edge_file_lines.insert(rel_s, lines.iter().map(|l| l.trim().to_string()).collect());
            all_edges.extend(edges);
        }
    }

    // Workspace-wide lock-order pass: cross-file edges can close a cycle
    // no single file shows. Intra-file cycles were already reported (and
    // possibly waived) above — skip any line that already carries a
    // lock-order finding. Cross-file cycles are deliberately unwaivable:
    // re-rank the locks instead.
    let reported: BTreeMap<(String, u32), ()> = report
        .findings
        .iter()
        .filter(|f| f.rule == "lock-order")
        .map(|f| ((f.path.clone(), f.line), ()))
        .collect();
    for f in cycle_findings(&all_edges) {
        if reported.contains_key(&(f.path.clone(), f.line)) {
            continue;
        }
        let excerpt = edge_file_lines
            .get(&f.path)
            .and_then(|lines| lines.get(f.line.saturating_sub(1) as usize))
            .cloned()
            .unwrap_or_default();
        report.findings.push(f);
        report.excerpts.push(excerpt);
    }

    apply_baseline(&mut report, baseline_path);
    Ok(report)
}

fn baseline_key(f: &Finding, excerpt: &str) -> String {
    let h = fnv1a64(format!("{}\n{}\n{}", f.rule, f.path, excerpt).as_bytes());
    format!("{}\t{}\t{h:016x}", f.rule, f.path)
}

fn apply_baseline(report: &mut Report, path: &Path) {
    let Ok(text) = fs::read_to_string(path) else {
        return; // no baseline: every finding is new
    };
    // Multiset of frozen entries. BTreeMap: the linter practices what it
    // preaches about hash iteration.
    let mut frozen: BTreeMap<String, u32> = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Inference-zone entries are never honored.
        if let Some(p) = line.split('\t').nth(1) {
            if zone_of(p) == Some(Zone::Inference) {
                report.stale_baseline += 1;
                continue;
            }
        }
        *frozen.entry(line.to_string()).or_insert(0) += 1;
    }
    for (f, excerpt) in report
        .findings
        .iter_mut()
        .zip(report.excerpts.iter())
        .filter(|(f, _)| !f.waived && f.rule != "waiver")
    {
        if zone_of(&f.path) == Some(Zone::Inference) {
            continue;
        }
        if let Some(n) = frozen.get_mut(&baseline_key(f, excerpt)) {
            if *n > 0 {
                *n -= 1;
                f.baselined = true;
            }
        }
    }
    report.stale_baseline += frozen.values().map(|&n| n as usize).sum::<usize>();
}

/// Writes the current non-inference, non-waived findings as the new
/// baseline. Inference-zone findings are skipped by design — returns
/// `(written, skipped_inference)`.
pub fn write_baseline(report: &Report, path: &Path) -> io::Result<(usize, usize)> {
    let mut entries: Vec<String> = Vec::new();
    let mut skipped = 0usize;
    for (f, excerpt) in report.findings.iter().zip(report.excerpts.iter()) {
        if f.waived || f.rule == "waiver" {
            continue;
        }
        if zone_of(&f.path) == Some(Zone::Inference) {
            skipped += 1;
            continue;
        }
        entries.push(baseline_key(f, excerpt));
    }
    entries.sort();
    let mut text = String::from(
        "# lhmm-lint baseline: frozen pre-existing findings (tooling/service zones only).\n\
         # Regenerate with `lhmm-lint --write-baseline`; inference-zone findings are\n\
         # never baselined — fix them instead. Format: rule<TAB>path<TAB>line-hash.\n",
    );
    for e in &entries {
        text.push_str(e);
        text.push('\n');
    }
    fs::write(path, text)?;
    Ok((entries.len(), skipped))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiver_with_reason_suppresses_same_and_next_line() {
        let src = "\
// lint:allow(panic-path): startup config, operator-facing
let a = x.unwrap();
let b = y.unwrap(); // lint:allow(panic-path): ditto
let c = z.unwrap();
";
        let f = check_source("crates/eval/src/x.rs", Zone::Tooling, src);
        let new: Vec<_> = f.iter().filter(|f| !f.waived).collect();
        assert_eq!(new.len(), 1, "{f:?}");
        assert_eq!(new[0].line, 4);
    }

    #[test]
    fn waiver_without_reason_is_a_finding_and_does_not_suppress() {
        let src = "let a = x.unwrap(); // lint:allow(panic-path)\n";
        let f = check_source("crates/eval/src/x.rs", Zone::Tooling, src);
        assert!(f.iter().any(|f| f.rule == "waiver"));
        assert!(f.iter().any(|f| f.rule == "panic-path" && !f.waived));
    }

    #[test]
    fn waiver_naming_unknown_rule_is_rejected() {
        let src = "let a = x.unwrap(); // lint:allow(everything): please\n";
        let f = check_source("crates/eval/src/x.rs", Zone::Tooling, src);
        assert!(f.iter().any(|f| f.rule == "waiver"));
        assert!(f.iter().any(|f| f.rule == "panic-path" && !f.waived));
    }

    #[test]
    fn fnv_vector() {
        // FNV-1a("a") reference value.
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
    }
}
