//! The Het-Graph Encoder (paper §IV-B, Eq. 4–5) and its ablation variants.
//!
//! Nodes start from a learnable table (the `W_init · one-hot` of the paper);
//! each layer sends per-relation messages through relation-specific weight
//! matrices, mean-aggregates them over neighbor groups, and fuses them with
//! the node's own state. The encoder is trained self-supervised by edge
//! reconstruction: embeddings of connected nodes should score higher than
//! random pairs under a dot-product decoder — the standard R-GCN link
//! prediction setup of Schlichtkrull et al. \[43\].

use crate::relgraph::{MultiRelGraph, Relation, RELATIONS};
use lhmm_cellsim::tower::TowerId;
use lhmm_network::graph::SegmentId;
use lhmm_neural::layers::Linear;
use lhmm_neural::loss::bce_with_logits;
use lhmm_neural::optim::{clip_grad_norm, Adam};
use lhmm_neural::sparse::SparseMatrix;
use lhmm_neural::tape::{ParamStore, Tape, Var};
use lhmm_neural::{init, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::rc::Rc;

/// Which encoder architecture to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EncoderKind {
    /// The full Het-Graph Encoder: per-relation message passing (LHMM).
    Heterogeneous,
    /// A homogeneous GCN over the merged edge set (ablation LHMM-H).
    Homogeneous,
    /// A plain trainable embedding table with a dense layer, no message
    /// passing (ablation LHMM-E).
    MlpEmbedding,
}

/// Encoder hyperparameters.
#[derive(Clone, Debug)]
pub struct EncoderConfig {
    /// Embedding width (paper: 128).
    pub dim: usize,
    /// Message-passing iterations `q` (paper: 2).
    pub layers: usize,
    /// Training steps (each step samples a fresh edge batch).
    pub epochs: usize,
    /// Positive edges per step.
    pub batch_edges: usize,
    /// Negative samples per positive.
    pub neg_per_pos: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
    /// Architecture variant.
    pub kind: EncoderKind,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        EncoderConfig {
            dim: 64,
            layers: 2,
            epochs: 120,
            batch_edges: 512,
            neg_per_pos: 1,
            lr: 3e-3,
            seed: 0,
            kind: EncoderKind::Heterogeneous,
        }
    }
}

/// Frozen node embeddings produced by encoder training.
#[derive(Clone, Debug)]
pub struct Embeddings {
    /// Embedding width.
    pub dim: usize,
    /// Tower count (row offset of the first segment).
    pub num_towers: usize,
    data: Matrix,
}

impl Embeddings {
    /// Embedding row of a tower.
    pub fn tower(&self, t: TowerId) -> &[f32] {
        self.data.row(t.idx())
    }

    /// Embedding row of a segment.
    pub fn segment(&self, s: SegmentId) -> &[f32] {
        self.data.row(self.num_towers + s.idx())
    }

    /// The full N×d embedding matrix (towers first).
    pub fn matrix(&self) -> &Matrix {
        &self.data
    }

    /// Cosine similarity between a tower and a segment embedding.
    pub fn tower_segment_similarity(&self, t: TowerId, s: SegmentId) -> f32 {
        cosine(self.tower(t), self.segment(s))
    }

    /// Serializes the embedding table.
    pub fn export_weights(&self, enc: &mut lhmm_neural::persist::Encoder) {
        enc.matrix(&self.data);
    }

    /// Loads an embedding table written by [`Self::export_weights`]; the
    /// shape must match this instance's.
    pub fn import_weights(
        &mut self,
        dec: &mut lhmm_neural::persist::Decoder<'_>,
    ) -> Result<(), lhmm_neural::persist::DecodeError> {
        let m = dec.matrix()?;
        if m.shape() != self.data.shape() {
            return Err(lhmm_neural::persist::DecodeError::ShapeMismatch);
        }
        self.data = m;
        Ok(())
    }
}

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if lhmm_geo::exactly_zero_f32(na) || lhmm_geo::exactly_zero_f32(nb) {
        0.0
    } else {
        dot / (na * nb)
    }
}

struct EncoderModel {
    store: ParamStore,
    h0: lhmm_neural::tape::ParamId,
    // Heterogeneous: per-layer, per-relation weights + self weight; shared
    // aggregation weight.
    rel_weights: Vec<Vec<Linear>>, // [layer][relation]
    self_weights: Vec<Linear>,     // [layer]
    agg: Option<Linear>,
    mlp_proj: Option<Linear>, // MlpEmbedding variant
    kind: EncoderKind,
    adj: Vec<Rc<SparseMatrix>>, // per relation (or merged for homogeneous)
}

impl EncoderModel {
    fn new(graph: &MultiRelGraph, cfg: &EncoderConfig, rng: &mut StdRng) -> Self {
        let n = graph.num_nodes();
        let d = cfg.dim;
        let mut store = ParamStore::new();
        let h0 = store.alloc(init::xavier_uniform(n, d, rng));

        let mut rel_weights = Vec::new();
        let mut self_weights = Vec::new();
        let mut agg = None;
        let mut mlp_proj = None;
        let adj: Vec<Rc<SparseMatrix>>;

        match cfg.kind {
            EncoderKind::Heterogeneous => {
                adj = RELATIONS
                    .iter()
                    .map(|&r| Rc::new(normalized_adjacency(graph, &[r])))
                    .collect();
                for _ in 0..cfg.layers {
                    rel_weights.push(
                        (0..RELATIONS.len())
                            .map(|_| Linear::new_no_bias(&mut store, d, d, rng))
                            .collect(),
                    );
                    self_weights.push(Linear::new_no_bias(&mut store, d, d, rng));
                }
                agg = Some(Linear::new_no_bias(&mut store, d, d, rng));
            }
            EncoderKind::Homogeneous => {
                adj = vec![Rc::new(normalized_adjacency(graph, &RELATIONS))];
                for _ in 0..cfg.layers {
                    rel_weights.push(vec![Linear::new_no_bias(&mut store, d, d, rng)]);
                    self_weights.push(Linear::new_no_bias(&mut store, d, d, rng));
                }
            }
            EncoderKind::MlpEmbedding => {
                adj = Vec::new();
                mlp_proj = Some(Linear::new(&mut store, d, d, rng));
            }
        }

        EncoderModel {
            store,
            h0,
            rel_weights,
            self_weights,
            agg,
            mlp_proj,
            kind: cfg.kind,
            adj,
        }
    }

    /// Full-graph forward pass; returns the final N×d node states.
    fn forward(&self, tape: &mut Tape) -> Var {
        let mut h = tape.param(&self.store, self.h0);
        match self.kind {
            EncoderKind::MlpEmbedding => {
                // `new` always builds the projection for this kind; if the
                // invariant is ever broken, degrade to the raw embedding
                // table rather than panic.
                match self.mlp_proj.as_ref() {
                    Some(proj) => {
                        let z = proj.forward(tape, &self.store, h);
                        tape.tanh(z)
                    }
                    None => h,
                }
            }
            EncoderKind::Heterogeneous => {
                let h0 = h;
                for l in 0..self.rel_weights.len() {
                    // Eq. 4: z_rel = mean over relation neighbors of W_rel h.
                    let mut msg: Option<Var> = None;
                    for (r, w_rel) in self.rel_weights[l].iter().enumerate() {
                        let hw = w_rel.forward(tape, &self.store, h);
                        let z = tape.spmm(&self.adj[r], hw);
                        msg = Some(match msg {
                            Some(m) => tape.add(m, z),
                            None => z,
                        });
                    }
                    // Eq. 5: h' = relu(W_agg Σ z_rel + W_0 h). A layer
                    // with no relations or a missing aggregator (broken
                    // construction invariant) stops message passing early
                    // instead of panicking.
                    let (Some(m), Some(agg)) = (msg, self.agg.as_ref()) else {
                        break;
                    };
                    let ma = agg.forward(tape, &self.store, m);
                    let hs = self.self_weights[l].forward(tape, &self.store, h);
                    let s = tape.add(ma, hs);
                    h = tape.relu(s);
                }
                // Residual to the initial table: q rounds of ReLU message
                // passing over-smooth node identity (adjacent nodes converge
                // to similar vectors), which hurts the downstream point-road
                // discrimination; the skip connection keeps both views.
                tape.add(h, h0)
            }
            EncoderKind::Homogeneous => {
                for l in 0..self.rel_weights.len() {
                    let hw = self.rel_weights[l][0].forward(tape, &self.store, h);
                    let z = tape.spmm(&self.adj[0], hw);
                    let hs = self.self_weights[l].forward(tape, &self.store, h);
                    let s = tape.add(z, hs);
                    h = tape.relu(s);
                }
                h
            }
        }
    }
}

/// Row-normalized incoming adjacency over the union of the given relations.
fn normalized_adjacency(graph: &MultiRelGraph, rels: &[Relation]) -> SparseMatrix {
    let n = graph.num_nodes();
    let mut rows: Vec<Vec<(u32, f32)>> = vec![Vec::new(); n];
    for &rel in rels {
        for (dst, neighbors) in graph.adjacency(rel).iter().enumerate() {
            rows[dst].extend_from_slice(neighbors);
        }
    }
    let mut sp = SparseMatrix::from_rows(n, n, &rows);
    sp.row_normalize();
    sp
}

/// Trains an encoder on the graph and returns frozen embeddings.
pub fn train_encoder(graph: &MultiRelGraph, cfg: &EncoderConfig) -> Embeddings {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0xEC0DE));
    let model = EncoderModel::new(graph, cfg, &mut rng);
    train_model(graph, cfg, model, &mut rng)
}

fn train_model(
    graph: &MultiRelGraph,
    cfg: &EncoderConfig,
    mut model: EncoderModel,
    rng: &mut StdRng,
) -> Embeddings {
    // Pre-collect positive edges per relation.
    let edge_sets: Vec<Vec<(u32, u32)>> = RELATIONS
        .iter()
        .map(|&r| {
            graph
                .edges(r)
                .into_iter()
                .map(|(s, d, _)| (s, d))
                .collect()
        })
        .collect();
    let total_edges: usize = edge_sets.iter().map(Vec::len).sum();
    assert!(total_edges > 0, "graph has no edges to train on");

    let n = graph.num_nodes() as u32;
    let mut opt = Adam::new(cfg.lr, 1e-4);

    for _ in 0..cfg.epochs {
        // Sample a mixed batch of positive edges proportional to relation
        // sizes, plus uniform negatives.
        let mut srcs = Vec::with_capacity(cfg.batch_edges * (1 + cfg.neg_per_pos));
        let mut dsts = Vec::with_capacity(srcs.capacity());
        let mut targets = Vec::with_capacity(srcs.capacity());
        for _ in 0..cfg.batch_edges {
            let mut pick = rng.gen_range(0..total_edges);
            let mut chosen = None;
            for set in &edge_sets {
                if pick < set.len() {
                    chosen = Some(set[pick]);
                    break;
                }
                pick -= set.len();
            }
            // `pick < total_edges` = Σ set lens, so a miss is impossible;
            // skip the draw rather than panic if the count ever drifts.
            let Some((s, d)) = chosen else { continue };
            srcs.push(s as usize);
            dsts.push(d as usize);
            targets.push(1.0f32);
            for _ in 0..cfg.neg_per_pos {
                srcs.push(s as usize);
                dsts.push(rng.gen_range(0..n) as usize);
                targets.push(0.0);
            }
        }

        let mut tape = Tape::new();
        let h = model.forward(&mut tape);
        let hs = tape.gather_rows(h, &srcs);
        let hd = tape.gather_rows(h, &dsts);
        let prod = tape.mul(hs, hd);
        let ones = tape.constant(Matrix::full(cfg.dim, 1, 1.0));
        let logits = tape.matmul(prod, ones); // batch×1 dot products
        let target_m = Matrix::col_vector(targets);
        let (_, grad) = bce_with_logits(tape.value(logits), &target_m, 0.0);
        let grads = tape.backward(logits, grad);
        let mut pg = tape.param_grads(&grads);
        clip_grad_norm(&mut pg, 5.0);
        opt.step(&mut model.store, &pg);
    }

    // Extract frozen embeddings with a final forward pass.
    let mut tape = Tape::new();
    let h = model.forward(&mut tape);
    Embeddings {
        dim: cfg.dim,
        num_towers: graph.num_towers,
        data: tape.value(h).clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhmm_cellsim::dataset::{Dataset, DatasetConfig};

    fn setup() -> (Dataset, MultiRelGraph) {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(31));
        let g = MultiRelGraph::build(&ds.network, ds.towers.len(), &ds.train);
        (ds, g)
    }

    fn small_cfg(kind: EncoderKind) -> EncoderConfig {
        EncoderConfig {
            dim: 16,
            epochs: 40,
            batch_edges: 256,
            kind,
            ..Default::default()
        }
    }

    #[test]
    fn training_produces_finite_embeddings_of_right_shape() {
        let (ds, g) = setup();
        let emb = train_encoder(&g, &small_cfg(EncoderKind::Heterogeneous));
        assert_eq!(emb.matrix().rows(), g.num_nodes());
        assert_eq!(emb.matrix().cols(), 16);
        assert!(emb.matrix().is_finite());
        assert_eq!(emb.tower(TowerId(0)).len(), 16);
        assert_eq!(emb.segment(SegmentId(0)).len(), 16);
        assert_eq!(emb.num_towers, ds.towers.len());
    }

    #[test]
    fn co_linked_pairs_score_higher_than_random() {
        let (ds, g) = setup();
        let emb = train_encoder(&g, &small_cfg(EncoderKind::Heterogeneous));
        // Average similarity of CO-linked (tower, segment) pairs vs random pairs.
        let mut linked = Vec::new();
        for t in 0..ds.towers.len() as u32 {
            for (s, _) in g.co_segments(TowerId(t)) {
                linked.push(emb.tower_segment_similarity(TowerId(t), s));
            }
        }
        assert!(!linked.is_empty());
        let linked_mean: f32 = linked.iter().sum::<f32>() / linked.len() as f32;
        let mut rng = StdRng::seed_from_u64(5);
        let rand_mean: f32 = (0..500)
            .map(|_| {
                let t = TowerId(rng.gen_range(0..ds.towers.len() as u32));
                let s = SegmentId(rng.gen_range(0..ds.network.num_segments() as u32));
                emb.tower_segment_similarity(t, s)
            })
            .sum::<f32>()
            / 500.0;
        assert!(
            linked_mean > rand_mean + 0.05,
            "linked {linked_mean} vs random {rand_mean}"
        );
    }

    #[test]
    fn all_variants_train() {
        let (_, g) = setup();
        for kind in [
            EncoderKind::Heterogeneous,
            EncoderKind::Homogeneous,
            EncoderKind::MlpEmbedding,
        ] {
            let emb = train_encoder(&g, &small_cfg(kind));
            assert!(emb.matrix().is_finite(), "{kind:?} diverged");
        }
    }

    #[test]
    fn training_is_deterministic() {
        let (_, g) = setup();
        let a = train_encoder(&g, &small_cfg(EncoderKind::Heterogeneous));
        let b = train_encoder(&g, &small_cfg(EncoderKind::Heterogeneous));
        assert_eq!(a.matrix(), b.matrix());
    }

    #[test]
    fn adjacent_segments_are_similar_under_tp() {
        let (ds, g) = setup();
        let emb = train_encoder(&g, &small_cfg(EncoderKind::Heterogeneous));
        // Adjacent segments should be more similar than random segment pairs
        // on average (TP relation + shared neighborhoods).
        let mut adj_sims = Vec::new();
        for s in ds.network.segment_ids().take(300) {
            for &succ in ds.network.successors(s) {
                if succ != s {
                    adj_sims.push(cosine(emb.segment(s), emb.segment(succ)));
                }
            }
        }
        let adj_mean: f32 = adj_sims.iter().sum::<f32>() / adj_sims.len() as f32;
        let mut rng = StdRng::seed_from_u64(6);
        let rand_mean: f32 = (0..500)
            .map(|_| {
                let a = SegmentId(rng.gen_range(0..ds.network.num_segments() as u32));
                let b = SegmentId(rng.gen_range(0..ds.network.num_segments() as u32));
                cosine(emb.segment(a), emb.segment(b))
            })
            .sum::<f32>()
            / 500.0;
        assert!(
            adj_mean > rand_mean,
            "adjacent {adj_mean} vs random {rand_mean}"
        );
    }
}
