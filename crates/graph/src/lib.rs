//! Multi-relational representation learning for LHMM (paper §IV-B).
//!
//! * [`relgraph::MultiRelGraph`] — the heterogeneous graph over cell towers
//!   and road segments with three relation types:
//!   - **CO** (co-occurrence): a tower and a traveled road co-occur when the
//!     tower is the trajectory's closest observation to that road,
//!   - **SQ** (sequentiality): consecutive towers in trajectories,
//!   - **TP** (topology): adjacent road segments.
//! * [`encoder`] — the Het-Graph Encoder: R-GCN-style message passing
//!   (Eq. 4–5) trained with self-supervised edge reconstruction, plus the
//!   homogeneous-GCN and plain-embedding variants used by the LHMM-H and
//!   LHMM-E ablations.
//!
//! ```no_run
//! use lhmm_cellsim::dataset::{Dataset, DatasetConfig};
//! use lhmm_graph::encoder::{train_encoder, EncoderConfig};
//! use lhmm_graph::relgraph::MultiRelGraph;
//!
//! let ds = Dataset::generate(&DatasetConfig::tiny_test(1));
//! let graph = MultiRelGraph::build(&ds.network, ds.towers.len(), &ds.train);
//! let embeddings = train_encoder(&graph, &EncoderConfig::default());
//! assert_eq!(embeddings.matrix().rows(), graph.num_nodes());
//! ```

#![forbid(unsafe_code)]

pub mod encoder;
pub mod relgraph;

pub use encoder::{train_encoder, Embeddings, EncoderConfig, EncoderKind};
pub use relgraph::{MultiRelGraph, Relation};
