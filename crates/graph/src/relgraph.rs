//! The multi-relational graph over cell towers and road segments.

use lhmm_cellsim::tower::TowerId;
use lhmm_cellsim::traj::TrajectoryRecord;
use lhmm_network::graph::{RoadNetwork, SegmentId};
use std::collections::HashMap;

/// The three relation types of the paper's multi-relational graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Relation {
    /// Tower ↔ road co-occurrence mined from matched historical trips.
    Co,
    /// Tower → tower sequentiality in trajectories.
    Sq,
    /// Road ↔ road topological adjacency.
    Tp,
}

/// All relations, in a stable order.
pub const RELATIONS: [Relation; 3] = [Relation::Co, Relation::Sq, Relation::Tp];

/// The heterogeneous graph 𝒢 = (𝒱_e, 𝒱_ct, ℰ).
///
/// Nodes use a unified index: towers occupy `[0, num_towers)` and segments
/// `[num_towers, num_towers + num_segments)`. Adjacency is stored as
/// *incoming* neighbor lists per node (the form message passing consumes).
#[derive(Clone)]
pub struct MultiRelGraph {
    /// Number of cell-tower nodes.
    pub num_towers: usize,
    /// Number of road-segment nodes.
    pub num_segments: usize,
    co: Vec<Vec<(u32, f32)>>,
    sq: Vec<Vec<(u32, f32)>>,
    tp: Vec<Vec<(u32, f32)>>,
    /// Directed co-occurrence counts (tower, segment) → weight; the explicit
    /// observation feature of Eq. 8.
    co_counts: HashMap<(u32, u32), f32>,
    /// Total co-occurrence mass per tower (for frequency normalization).
    tower_co_total: Vec<f32>,
}

impl MultiRelGraph {
    /// Unified node index of a tower.
    #[inline]
    pub fn tower_node(&self, t: TowerId) -> usize {
        t.idx()
    }

    /// Unified node index of a segment.
    #[inline]
    pub fn segment_node(&self, s: SegmentId) -> usize {
        self.num_towers + s.idx()
    }

    /// Total node count.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_towers + self.num_segments
    }

    /// Incoming adjacency lists of one relation.
    pub fn adjacency(&self, rel: Relation) -> &[Vec<(u32, f32)>] {
        match rel {
            Relation::Co => &self.co,
            Relation::Sq => &self.sq,
            Relation::Tp => &self.tp,
        }
    }

    /// Directed edge list `(src, dst, weight)` of one relation (each
    /// symmetric edge appears once per direction).
    pub fn edges(&self, rel: Relation) -> Vec<(u32, u32, f32)> {
        let adj = self.adjacency(rel);
        let mut out = Vec::new();
        for (dst, neighbors) in adj.iter().enumerate() {
            for &(src, w) in neighbors {
                out.push((src, dst as u32, w));
            }
        }
        out
    }

    /// Raw co-occurrence count between a tower and a segment.
    pub fn co_count(&self, t: TowerId, s: SegmentId) -> f32 {
        *self.co_counts.get(&(t.0, s.0)).unwrap_or(&0.0)
    }

    /// Deterministic byte encoding of the co-occurrence table (keys in
    /// sorted order, weights as IEEE bits). Model manifests fold this into
    /// their fingerprint so a refreshed candidate — identical neural
    /// weights, different co-occurrence mass — is distinguishable from
    /// its parent.
    pub fn co_digest_bytes(&self) -> Vec<u8> {
        let mut entries: Vec<(&(u32, u32), &f32)> = self.co_counts.iter().collect();
        entries.sort_by_key(|(k, _)| **k);
        let mut bytes = Vec::with_capacity(entries.len() * 12);
        for (&(t, s), w) in entries {
            bytes.extend(t.to_le_bytes());
            bytes.extend(s.to_le_bytes());
            bytes.extend(w.to_bits().to_le_bytes());
        }
        bytes
    }

    /// Co-occurrence frequency: the fraction of the tower's co-occurrence
    /// mass that falls on this segment (0 when the tower was never seen).
    pub fn co_frequency(&self, t: TowerId, s: SegmentId) -> f32 {
        let total = self.tower_co_total[t.idx()];
        if total <= 0.0 {
            0.0
        } else {
            self.co_count(t, s) / total
        }
    }

    /// Segments with positive co-occurrence for a tower, with counts.
    /// (The tower node's CO adjacency holds exactly these segments.)
    pub fn co_segments(&self, t: TowerId) -> Vec<(SegmentId, f32)> {
        self.co[self.tower_node(t)]
            .iter()
            .map(|&(n, w)| (SegmentId(n - self.num_towers as u32), w))
            .collect()
    }

    /// Builds the graph from the road network topology and the *training*
    /// trajectories (CO and SQ must never see validation/test data).
    pub fn build(
        net: &RoadNetwork,
        num_towers: usize,
        train: &[TrajectoryRecord],
    ) -> Self {
        let num_segments = net.num_segments();
        let n = num_towers + num_segments;
        let mut g = MultiRelGraph {
            num_towers,
            num_segments,
            co: vec![Vec::new(); n],
            sq: vec![Vec::new(); n],
            tp: vec![Vec::new(); n],
            co_counts: HashMap::new(),
            tower_co_total: vec![0.0; num_towers],
        };

        // TP: adjacent road segments, symmetric.
        for s in net.segment_ids() {
            let s_node = g.segment_node(s) as u32;
            for &succ in net.successors(s) {
                if succ == s {
                    continue;
                }
                let succ_node = g.segment_node(succ) as u32;
                g.tp[succ_node as usize].push((s_node, 1.0));
                g.tp[s_node as usize].push((succ_node, 1.0));
            }
        }

        // CO and SQ from training trajectories.
        let mut co_acc: HashMap<(u32, u32), f32> = HashMap::new();
        let mut sq_acc: HashMap<(u32, u32), f32> = HashMap::new();
        for rec in train {
            let points = &rec.cellular.points;
            if points.is_empty() {
                continue;
            }
            // Co-occurrence: each traveled road pairs with the *closest*
            // trajectory point (paper's definition).
            for &seg in &rec.truth.segments {
                let mid = net.segment_midpoint(seg);
                let Some(closest) = points
                    .iter()
                    .min_by(|a, b| a.pos.distance(mid).total_cmp(&b.pos.distance(mid)))
                else {
                    // Unreachable: `points` was checked non-empty above.
                    continue;
                };
                *co_acc.entry((closest.tower.0, seg.0)).or_insert(0.0) += 1.0;
            }
            // Sequentiality between consecutive towers (skip self-loops from
            // repeated serving towers).
            for w in points.windows(2) {
                if w[0].tower != w[1].tower {
                    *sq_acc.entry((w[0].tower.0, w[1].tower.0)).or_insert(0.0) += 1.0;
                }
            }
        }

        // HashMap iteration order is nondeterministic across instances;
        // sort so that adjacency lists (and everything trained from them)
        // are reproducible under a fixed seed.
        let mut co_sorted: Vec<((u32, u32), f32)> =
            co_acc.iter().map(|(&k, &w)| (k, w)).collect();
        co_sorted.sort_unstable_by_key(|&(k, _)| k);
        for ((t, s), w) in co_sorted {
            let t_node = t;
            let s_node = g.segment_node(SegmentId(s)) as u32;
            // Symmetric propagation edges.
            g.co[s_node as usize].push((t_node, w));
            g.co[t_node as usize].push((s_node, w));
            g.tower_co_total[t as usize] += w;
        }
        g.co_counts = co_acc;

        let mut sq_sorted: Vec<((u32, u32), f32)> =
            sq_acc.iter().map(|(&k, &w)| (k, w)).collect();
        sq_sorted.sort_unstable_by_key(|&(k, _)| k);
        for ((a, b), w) in sq_sorted {
            g.sq[b as usize].push((a, w));
            g.sq[a as usize].push((b, w));
        }

        g
    }

    /// Folds freshly observed (tower, segment) co-occurrence counts into
    /// the CO relation — the online-refresh path. Mirrors the CO fold of
    /// [`MultiRelGraph::build`]: symmetric propagation edges, per-tower
    /// mass, and the explicit count table all absorb the new weight.
    /// Existing edges accumulate; unseen pairs gain a new edge. Iteration
    /// is over a `BTreeMap`, so the fold is deterministic for a given
    /// count multiset. Pairs referencing out-of-range towers or segments
    /// are skipped (stale counters from a foreign topology must not
    /// corrupt adjacency).
    pub fn fold_co(&mut self, counts: &std::collections::BTreeMap<(u32, u32), u64>) {
        for (&(t, s), &c) in counts {
            if c == 0 || (t as usize) >= self.num_towers || (s as usize) >= self.num_segments {
                continue;
            }
            let w = c as f32;
            let t_node = t;
            let s_node = self.segment_node(SegmentId(s)) as u32;
            match self.co[s_node as usize]
                .iter_mut()
                .find(|(n, _)| *n == t_node)
            {
                Some((_, old)) => *old += w,
                None => self.co[s_node as usize].push((t_node, w)),
            }
            match self.co[t_node as usize]
                .iter_mut()
                .find(|(n, _)| *n == s_node)
            {
                Some((_, old)) => *old += w,
                None => self.co[t_node as usize].push((s_node, w)),
            }
            self.tower_co_total[t as usize] += w;
            *self.co_counts.entry((t, s)).or_insert(0.0) += w;
        }
    }

    /// Summary counts per relation `(co, sq, tp)` — directed edge totals.
    pub fn edge_counts(&self) -> (usize, usize, usize) {
        let count = |adj: &[Vec<(u32, f32)>]| adj.iter().map(Vec::len).sum();
        (count(&self.co), count(&self.sq), count(&self.tp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhmm_cellsim::dataset::{Dataset, DatasetConfig};

    fn build() -> (Dataset, MultiRelGraph) {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(21));
        let g = MultiRelGraph::build(&ds.network, ds.towers.len(), &ds.train);
        (ds, g)
    }

    #[test]
    fn node_indexing_is_disjoint() {
        let (ds, g) = build();
        assert_eq!(g.num_nodes(), ds.towers.len() + ds.network.num_segments());
        let t = g.tower_node(TowerId(0));
        let s = g.segment_node(SegmentId(0));
        assert_ne!(t, s);
        assert_eq!(s, ds.towers.len());
    }

    #[test]
    fn all_relations_are_populated() {
        let (_, g) = build();
        let (co, sq, tp) = g.edge_counts();
        assert!(co > 0, "no co-occurrence edges");
        assert!(sq > 0, "no sequentiality edges");
        assert!(tp > 0, "no topology edges");
    }

    #[test]
    fn co_edges_connect_towers_to_segments_only() {
        let (_, g) = build();
        for (dst, neighbors) in g.adjacency(Relation::Co).iter().enumerate() {
            for &(src, w) in neighbors {
                assert!(w > 0.0);
                let dst_is_tower = dst < g.num_towers;
                let src_is_tower = (src as usize) < g.num_towers;
                assert_ne!(dst_is_tower, src_is_tower, "CO edge within one type");
            }
        }
    }

    #[test]
    fn sq_edges_connect_towers_only() {
        let (_, g) = build();
        for (dst, neighbors) in g.adjacency(Relation::Sq).iter().enumerate() {
            if dst >= g.num_towers {
                assert!(neighbors.is_empty(), "SQ edge touching a segment");
            }
            for &(src, _) in neighbors {
                assert!((src as usize) < g.num_towers);
            }
        }
    }

    #[test]
    fn tp_matches_network_adjacency() {
        let (ds, g) = build();
        // Spot-check a handful of segments.
        for sid in ds.network.segment_ids().take(25) {
            let node = g.segment_node(sid);
            let from_tp: std::collections::HashSet<u32> = g.adjacency(Relation::Tp)[node]
                .iter()
                .map(|&(s, _)| s)
                .collect();
            for &succ in ds.network.successors(sid) {
                if succ != sid {
                    assert!(
                        from_tp.contains(&(g.segment_node(succ) as u32)),
                        "missing TP edge {sid:?} -> {succ:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn co_frequency_normalizes_to_one() {
        let (_, g) = build();
        let mut checked = 0;
        for t in 0..g.num_towers as u32 {
            let tid = TowerId(t);
            let segs = g.co_segments(tid);
            if segs.is_empty() {
                continue;
            }
            let total: f32 = segs.iter().map(|&(s, _)| g.co_frequency(tid, s)).sum();
            assert!((total - 1.0).abs() < 1e-5, "tower {t} freq sum {total}");
            checked += 1;
        }
        assert!(checked > 0, "no tower had co-occurrences");
    }

    #[test]
    fn co_counts_reflect_closest_point_rule() {
        let (ds, g) = build();
        // For each record, the closest point to the first truth segment must
        // have a positive co count with it.
        for rec in ds.train.iter().take(10) {
            let seg = rec.truth.segments[0];
            let mid = ds.network.segment_midpoint(seg);
            let closest = rec
                .cellular
                .points
                .iter()
                .min_by(|a, b| {
                    a.pos
                        .distance(mid)
                        .partial_cmp(&b.pos.distance(mid))
                        .unwrap()
                })
                .unwrap();
            assert!(g.co_count(closest.tower, seg) > 0.0);
        }
    }

    #[test]
    fn fold_co_accumulates_and_grows_edges() {
        let (ds, mut g) = build();
        let (co_before, _, _) = g.edge_counts();
        // An existing pair: pick one from a training record's closest-point
        // rule so a CO edge certainly exists.
        let rec = &ds.train[0];
        let seg = rec.truth.segments[0];
        let mid = ds.network.segment_midpoint(seg);
        let closest = rec
            .cellular
            .points
            .iter()
            .min_by(|a, b| a.pos.distance(mid).total_cmp(&b.pos.distance(mid)))
            .unwrap();
        let t = closest.tower;
        let before_count = g.co_count(t, seg);
        let before_total = g.tower_co_total[t.idx()];
        // An unseen pair for the same tower (a segment with zero count).
        let fresh = ds
            .network
            .segment_ids()
            .find(|&s| g.co_count(t, s) == 0.0)
            .expect("some segment unseen by this tower");
        let mut counts = std::collections::BTreeMap::new();
        counts.insert((t.0, seg.0), 3u64);
        counts.insert((t.0, fresh.0), 2u64);
        // Out-of-range pairs must be ignored, not panic or corrupt.
        counts.insert((u32::MAX, seg.0), 5u64);
        counts.insert((t.0, u32::MAX), 5u64);
        g.fold_co(&counts);
        assert_eq!(g.co_count(t, seg), before_count + 3.0);
        assert_eq!(g.co_count(t, fresh), 2.0);
        assert_eq!(g.tower_co_total[t.idx()], before_total + 5.0);
        let (co_after, _, _) = g.edge_counts();
        // Exactly one new symmetric edge pair (the fresh segment).
        assert_eq!(co_after, co_before + 2);
        // The fresh segment now appears in the tower's CO adjacency.
        assert!(g.co_segments(t).iter().any(|&(s, w)| s == fresh && w == 2.0));
        // Frequencies still normalize.
        let total: f32 = g
            .co_segments(t)
            .iter()
            .map(|&(s, _)| g.co_frequency(t, s))
            .sum();
        assert!((total - 1.0).abs() < 1e-5);
    }

    #[test]
    fn edges_listing_matches_adjacency() {
        let (_, g) = build();
        let edges = g.edges(Relation::Tp);
        let (_, _, tp) = g.edge_counts();
        assert_eq!(edges.len(), tp);
    }
}
