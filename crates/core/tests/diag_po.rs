//! Diagnostic (run with `--ignored`): learned P_O candidate-ranking quality
//! compared against distance / co-occurrence / implicit-only rankings.
use lhmm_cellsim::dataset::{Dataset, DatasetConfig};
use lhmm_core::observation::{ObsConfig, ObservationLearner};
use lhmm_graph::encoder::{train_encoder, EncoderConfig, EncoderKind};
use lhmm_graph::relgraph::MultiRelGraph;
use lhmm_network::graph::SegmentId;

#[test]
#[ignore]
fn diag() {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(63));
    let graph = MultiRelGraph::build(&ds.network, ds.towers.len(), &ds.train);
    let emb = train_encoder(&graph, &EncoderConfig { dim: 16, epochs: 60, batch_edges: 256, kind: EncoderKind::Heterogeneous, ..Default::default() });
    let learner = ObservationLearner::train(&ds.network, &ds.index, &emb, &graph, &ds.train, &ObsConfig { epochs: 60, fuse_epochs: 30, batch_points: 12, ..Default::default() });
    let k = 10;
    let radius = 2000.0;
    let max_scored = 80;
    let mut stats = [0usize; 5]; // pool, dist, cofreq, implicit, fused
    let mut total = 0usize;
    for rec in &ds.test {
        let truth = rec.truth.segment_set();
        let towers = rec.cellular.towers();
        for (i, p) in rec.cellular.points.iter().enumerate() {
            let pos = p.effective_pos();
            let mut pool: Vec<SegmentId> = ds.index.k_nearest(&ds.network, pos, max_scored, radius).into_iter().map(|(s,_)| s).collect();
            for (s, _) in graph.co_segments(p.tower) { if ds.network.distance_to_segment(pos, s) <= radius { pool.push(s); } }
            pool.sort_unstable(); pool.dedup();
            if pool.is_empty() { continue; }
            total += 1;
            let hit = |segs: &[SegmentId]| segs.iter().any(|s| truth.contains(s));
            if hit(&pool) { stats[0] += 1; }
            // distance ranking
            let mut by_dist = pool.clone();
            by_dist.sort_by(|a,b| ds.network.distance_to_segment(pos,*a).partial_cmp(&ds.network.distance_to_segment(pos,*b)).unwrap());
            if hit(&by_dist[..k.min(by_dist.len())]) { stats[1] += 1; }
            // cofreq ranking
            let mut by_co = pool.clone();
            by_co.sort_by(|a,b| graph.co_frequency(p.tower,*b).partial_cmp(&graph.co_frequency(p.tower,*a)).unwrap());
            if hit(&by_co[..k.min(by_co.len())]) { stats[2] += 1; }
            // implicit + fused
            let ctx = learner.context_row(&emb, &towers, i);
            let implicit = learner.implicit_scores(&emb, &ctx, &pool);
            let mut by_imp: Vec<_> = pool.iter().copied().zip(implicit).collect();
            by_imp.sort_by(|a,b| b.1.partial_cmp(&a.1).unwrap());
            let imp_top: Vec<SegmentId> = by_imp.iter().take(k).map(|x| x.0).collect();
            if hit(&imp_top) { stats[3] += 1; }
            let fused = learner.score(&ds.network, &graph, &emb, &ctx, pos, p.tower, &pool);
            let mut by_f: Vec<_> = pool.iter().copied().zip(fused).collect();
            by_f.sort_by(|a,b| b.1.partial_cmp(&a.1).unwrap());
            let f_top: Vec<SegmentId> = by_f.iter().take(k).map(|x| x.0).collect();
            if hit(&f_top) { stats[4] += 1; }
        }
    }
    let t = total as f64;
    println!("total {total}  pool {:.3} dist {:.3} cofreq {:.3} implicit {:.3} fused {:.3}",
        stats[0] as f64/t, stats[1] as f64/t, stats[2] as f64/t, stats[3] as f64/t, stats[4] as f64/t);
}
