//! Property tests for the registry manifest format (`b"LHMR"` v1).
//!
//! The manifest table is the durable record of what is deployed, so its
//! decoder must uphold two contracts under arbitrary input: every valid
//! table round-trips bit-exactly, and *nothing* — truncation, bit flips,
//! random garbage — ever panics; corruption always comes back as a typed
//! [`RegistryError`].
//!
//! The encoder here mirrors `ModelRegistry::manifest_bytes` field for
//! field (the layout is a compatibility surface: a mismatch between this
//! test and the registry is itself a bug worth failing on), which lets the
//! round-trip property range over arbitrary tables instead of only tables
//! a trained model can produce.

use lhmm_core::registry::{ModelManifest, ModelRegistry, ModelVersion, RegistryError};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Reference encoder: same layout as `ModelRegistry::manifest_bytes`.
fn encode(active: u32, manifests: &[ModelManifest]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(b"LHMR");
    buf.push(1u8);
    buf.extend_from_slice(&active.to_le_bytes());
    buf.extend_from_slice(&(manifests.len() as u32).to_le_bytes());
    for m in manifests {
        buf.extend_from_slice(&m.version.0.to_le_bytes());
        buf.extend_from_slice(&m.parent.map_or(0, |p| p.0).to_le_bytes());
        buf.extend_from_slice(&m.fingerprint.to_le_bytes());
        buf.extend_from_slice(&m.weight_bytes.to_le_bytes());
        buf.extend_from_slice(&(m.label.len() as u32).to_le_bytes());
        buf.extend_from_slice(m.label.as_bytes());
    }
    buf
}

const LABEL_CHARSET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ._/-";

/// A structurally valid manifest table: unique nonzero versions in
/// ascending order (the registry's BTreeMap iteration order), parents
/// drawn from the listed versions, and an active version that is listed.
fn valid_table() -> impl Strategy<Value = (u32, Vec<ModelManifest>)> {
    (
        vec(1u32..10_000, 1..16),
        vec((0u64..u64::MAX, 0u64..u64::MAX), 16),
        vec(vec(0usize..LABEL_CHARSET.len(), 0..48), 16),
        vec((0usize..1_000_000, 0u32..4), 16),
        0usize..1_000_000,
    )
        .prop_map(|(raw_versions, prints, labels, parents, active_pick)| {
            let versions: Vec<u32> = raw_versions
                .into_iter()
                .collect::<BTreeSet<u32>>()
                .into_iter()
                .collect();
            let manifests: Vec<ModelManifest> = versions
                .iter()
                .enumerate()
                .map(|(i, &v)| ModelManifest {
                    version: ModelVersion(v),
                    fingerprint: prints[i].0,
                    weight_bytes: prints[i].1,
                    parent: (parents[i].1 != 0)
                        .then(|| ModelVersion(versions[parents[i].0 % versions.len()])),
                    label: labels[i]
                        .iter()
                        .map(|&c| LABEL_CHARSET[c] as char)
                        .collect(),
                })
                .collect();
            let active = versions[active_pick % versions.len()];
            (active, manifests)
        })
}

proptest! {
    #[test]
    fn valid_tables_roundtrip_bit_exactly((active, manifests) in valid_table()) {
        let bytes = encode(active, &manifests);
        let (got_active, got) = match ModelRegistry::decode_manifest(&bytes) {
            Ok(pair) => pair,
            Err(e) => return Err(TestCaseError::Fail(format!("valid table rejected: {e:?}"))),
        };
        prop_assert_eq!(got_active, ModelVersion(active));
        prop_assert_eq!(got, manifests);
    }

    #[test]
    fn every_strict_prefix_is_a_typed_error((active, manifests) in valid_table()) {
        // The encoding is minimal-length for its declared count, so no
        // strict prefix can decode: it must fail, and fail typed.
        let bytes = encode(active, &manifests);
        for cut in 0..bytes.len() {
            prop_assert!(ModelRegistry::decode_manifest(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn random_bytes_never_panic(raw in vec(0u32..256, 0..256)) {
        let bytes: Vec<u8> = raw.into_iter().map(|b| b as u8).collect();
        // Any result is fine; reaching this line at all is the property.
        let _ = ModelRegistry::decode_manifest(&bytes);
    }

    #[test]
    fn single_byte_corruption_never_panics_and_never_forges_structure(
        (active, manifests) in valid_table(),
        at in 0usize..1_000_000,
        flip in 1u32..256,
    ) {
        let mut bytes = encode(active, &manifests);
        let at = at % bytes.len();
        bytes[at] ^= flip as u8;
        match ModelRegistry::decode_manifest(&bytes) {
            // A flip in a fingerprint/size/label byte can still decode;
            // the structural invariants must hold on whatever comes back.
            Ok((got_active, got)) => {
                let seen: BTreeSet<u32> = got.iter().map(|m| m.version.0).collect();
                prop_assert_eq!(seen.len(), got.len(), "duplicate versions forged");
                prop_assert!(seen.contains(&got_active.0), "active not listed");
                for m in &got {
                    if let Some(p) = m.parent {
                        prop_assert!(seen.contains(&p.0), "dangling parent");
                    }
                }
            }
            Err(RegistryError::BadMagic)
            | Err(RegistryError::BadVersion(_))
            | Err(RegistryError::Truncated)
            | Err(RegistryError::TrailingBytes)
            | Err(RegistryError::BadLabel)
            | Err(RegistryError::Inconsistent(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other:?}"),
        }
    }
}
