//! Runtime lock-hierarchy witness tests (DESIGN §15).
//!
//! The static `lock-order` lint sees one file at a time; the witness in
//! [`lhmm_core::sync`] is its runtime twin, checking the *declared ranks*
//! on every acquisition of every test run. These tests seed real
//! inversions on two threads and assert the witness names both locks and
//! both acquisition sites in the panic payload — the property the serving
//! suites then inherit for free by running witness-enabled.
//!
//! The witness is compiled under `debug_assertions` (every `cargo test`)
//! and under the `lock-witness` feature (the ci.sh release lanes); the
//! assertions branch on [`witness_enabled`] so the suite is also correct
//! in a plain release build where the wrappers are zero-cost passthroughs.

use lhmm_core::sync::{witness_acquisitions, witness_enabled, witness_rank_table};
use lhmm_core::{OrderedMutex, OrderedRwLock};
use std::sync::Condvar;
use std::time::Duration;

/// Joins the thread and returns the panic message, if it panicked.
fn panic_message(
    handle: std::thread::JoinHandle<()>,
) -> Option<String> {
    match handle.join() {
        Ok(()) => None,
        Err(payload) => Some(
            payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string panic payload>".to_string()),
        ),
    }
}

#[test]
fn ordered_nesting_is_silent() {
    let low = OrderedMutex::new(10, "witness.ordered.low", 1u32);
    let high = OrderedMutex::new(20, "witness.ordered.high", 2u32);
    let a = low.lock();
    let b = high.lock();
    assert_eq!(*a + *b, 3);
}

#[test]
fn two_thread_inversion_is_caught_with_both_sites() {
    static LOW: OrderedMutex<u32> = OrderedMutex::new(10, "witness.inv.low", 0);
    static HIGH: OrderedMutex<u32> = OrderedMutex::new(20, "witness.inv.high", 0);

    // Thread 1 follows the hierarchy: low then high. Always clean.
    let t1 = std::thread::spawn(|| {
        let a = LOW.lock();
        let b = HIGH.lock();
        drop((a, b));
    });
    assert!(panic_message(t1).is_none());

    // Thread 2 inverts it: high then low. The witness fires on the
    // *acquisition attempt* — before the raw lock is touched — so this is
    // caught deterministically, with no interleaving required, and the
    // unwinding thread releases its raw lock instead of deadlocking.
    let t2 = std::thread::spawn(|| {
        let b = HIGH.lock();
        let a = LOW.lock();
        drop((a, b));
    });
    match panic_message(t2) {
        Some(msg) => {
            assert!(witness_enabled());
            assert!(msg.contains("lock-order inversion"), "{msg}");
            assert!(msg.contains("witness.inv.low"), "{msg}");
            assert!(msg.contains("witness.inv.high"), "{msg}");
            // Both acquisition sites (this file) are named in the payload.
            assert!(msg.matches("lock_witness.rs").count() >= 2, "{msg}");
        }
        None => assert!(
            !witness_enabled(),
            "inversion went unreported with the witness enabled"
        ),
    }
}

#[test]
fn equal_ranks_cannot_nest() {
    let a = OrderedMutex::new(30, "witness.eq.a", ());
    let b = OrderedMutex::new(30, "witness.eq.b", ());
    let t = std::thread::spawn(move || {
        let ga = a.lock();
        let gb = b.lock();
        drop((ga, gb));
    });
    let msg = panic_message(t);
    if witness_enabled() {
        assert!(
            msg.is_some_and(|m| m.contains("lock-order inversion")),
            "equal-rank nesting must be rejected: ranks must strictly increase"
        );
    }
}

#[test]
fn one_name_one_rank() {
    let a = OrderedMutex::new(40, "witness.dup", ());
    let b = OrderedMutex::new(41, "witness.dup", ());
    let t = std::thread::spawn(move || {
        drop(a.lock());
        drop(b.lock());
    });
    let msg = panic_message(t);
    if witness_enabled() {
        assert!(
            msg.is_some_and(|m| m.contains("rank table conflict")),
            "re-registering a lock name at a new rank must be rejected"
        );
    }
}

#[test]
fn rwlock_guards_participate() {
    static TABLE: OrderedRwLock<u32> = OrderedRwLock::new(50, "witness.rw.table", 7);
    static LEAF: OrderedMutex<u32> = OrderedMutex::new(45, "witness.rw.leaf", 0);

    // Read guards register like any acquisition: holding the rank-50 read
    // guard while taking a rank-45 mutex is an inversion.
    let t = std::thread::spawn(|| {
        let r = TABLE.read();
        let l = LEAF.lock();
        drop((l, r));
    });
    match panic_message(t) {
        Some(msg) => {
            assert!(witness_enabled());
            assert!(msg.contains("witness.rw.table"), "{msg}");
        }
        None => assert!(!witness_enabled()),
    }

    // Write-after-read on the same lock requires releasing the read guard
    // first (a re-entrant upgrade would self-invert and, on a real RwLock,
    // deadlock against itself).
    let n = {
        let r = TABLE.read();
        *r
    };
    let mut w = TABLE.write();
    *w += n;
    assert_eq!(*w, 14);
}

#[test]
fn wait_timeout_keeps_the_guard_registered() {
    let q = OrderedMutex::new(60, "witness.wait.queue", 0u32);
    let cv = Condvar::new();
    let st = q.lock();
    // The deadline wait consumes and returns the guard; the witness entry
    // survives the round-trip, so the returned guard still guards.
    let (mut st, timed_out) = st.wait_timeout(&cv, Duration::from_millis(5));
    assert!(timed_out);
    *st += 1;
    assert_eq!(*st, 1);
}

#[test]
fn witness_observability_surfaces() {
    let m = OrderedMutex::new(70, "witness.obs.m", ());
    let before = witness_acquisitions();
    drop(m.lock());
    drop(m.lock());
    let after = witness_acquisitions();
    if witness_enabled() {
        assert!(after >= before + 2, "counter must advance per acquisition");
        assert!(
            witness_rank_table().iter().any(|(n, r)| *n == "witness.obs.m" && *r == 70),
            "registered locks must appear in the rank table"
        );
    } else {
        assert_eq!(after, 0);
        assert!(witness_rank_table().is_empty());
    }
}
