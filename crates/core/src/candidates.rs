//! Candidate preparation (paper §IV-E1, Step 1).

use crate::types::{Candidate, HmmProbabilities};
use lhmm_geo::{Point, Projection};
use lhmm_network::graph::{RoadNetwork, SegmentId};
use lhmm_network::spatial::SpatialIndex;

/// The `k` segments nearest to `pos` within `radius`, each with its
/// projection. Sorted by ascending distance.
pub fn nearest_segments(
    net: &RoadNetwork,
    index: &SpatialIndex,
    pos: Point,
    k: usize,
    radius: f64,
) -> Vec<(SegmentId, Projection)> {
    index
        .k_nearest(net, pos, k, radius)
        .into_iter()
        .map(|(seg, _)| (seg, net.project(pos, seg)))
        .collect()
}

/// Converts `(segment, projection)` pairs into scored candidates using the
/// model's observation probability for point `i`.
pub fn to_candidates<M: HmmProbabilities>(
    model: &mut M,
    i: usize,
    pairs: &[(SegmentId, Projection)],
) -> Vec<Candidate> {
    pairs
        .iter()
        .map(|&(seg, proj)| Candidate {
            seg,
            t: proj.t,
            obs: model.observation(i, seg, proj.distance),
        })
        .collect()
}

/// Distance-based candidate layers for a whole trajectory: the classic
/// preparation every HMM baseline uses. Points with no candidate within
/// `radius` are dropped; the returned mask marks kept points.
pub fn distance_layers<M: HmmProbabilities>(
    net: &RoadNetwork,
    index: &SpatialIndex,
    positions: &[Point],
    k: usize,
    radius: f64,
    model: &mut M,
) -> (Vec<Vec<Candidate>>, Vec<bool>) {
    let mut layers = Vec::with_capacity(positions.len());
    let mut kept = Vec::with_capacity(positions.len());
    for (i, &pos) in positions.iter().enumerate() {
        let pairs = nearest_segments(net, index, pos, k, radius);
        if pairs.is_empty() {
            kept.push(false);
            continue;
        }
        kept.push(true);
        layers.push(to_candidates(model, i, &pairs));
    }
    (layers, kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classic::{ClassicModel, ClassicObservation, ClassicTransition};
    use lhmm_network::generators::{generate_city, GeneratorConfig};

    #[test]
    fn nearest_segments_are_sorted_and_projected() {
        let net = generate_city(&GeneratorConfig::small_test(3));
        let index = SpatialIndex::build(&net, 200.0);
        let pos = Point::new(700.0, 700.0);
        let pairs = nearest_segments(&net, &index, pos, 8, 5_000.0);
        assert_eq!(pairs.len(), 8);
        for w in pairs.windows(2) {
            assert!(w[0].1.distance <= w[1].1.distance);
        }
        for (seg, proj) in &pairs {
            assert!((proj.distance - net.distance_to_segment(pos, *seg)).abs() < 1e-9);
        }
    }

    #[test]
    fn distance_layers_drop_uncovered_points() {
        let net = generate_city(&GeneratorConfig::small_test(3));
        let index = SpatialIndex::build(&net, 200.0);
        let positions = vec![
            Point::new(500.0, 500.0),
            Point::new(1e7, 1e7), // far outside any radius
            Point::new(900.0, 500.0),
        ];
        let mut model = ClassicModel::new(
            ClassicObservation::cellular(),
            ClassicTransition::cellular(),
            positions.clone(),
        );
        let (layers, kept) =
            distance_layers(&net, &index, &positions, 5, 3_000.0, &mut model);
        assert_eq!(kept, vec![true, false, true]);
        assert_eq!(layers.len(), 2);
        // Observation probabilities decrease with candidate rank.
        for layer in &layers {
            for w in layer.windows(2) {
                assert!(w[0].obs >= w[1].obs - 1e-12);
            }
        }
    }
}
