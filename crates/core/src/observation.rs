//! The learned observation probability `P_O` (paper §IV-C, Eq. 6–8).
//!
//! Pipeline per trajectory point:
//! 1. **Context** (Eq. 6): additive attention over the trajectory's tower
//!    embeddings turns the raw point embedding into a context-aware
//!    representation, so the same tower can match different roads under
//!    different trajectory contexts.
//! 2. **Implicit correlation** (Eq. 7): an MLP over `[road ⊕ context]`
//!    scores how plausible the candidate road is for the point.
//! 3. **Fusion** (Eq. 8): a second MLP combines the implicit score with the
//!    explicit features — normalized point-road distance and co-occurrence
//!    frequency — into the final `P_O`.
//!
//! Training follows the paper's two stages: the implicit classifier learns
//! from positive roads (those the point co-occurs with on the traveled
//! path) against undersampled surrounding negatives; the fusion MLP is then
//! fine-tuned on the same labels with the implicit score treated as a fixed
//! input.

use lhmm_cellsim::tower::TowerId;
use lhmm_cellsim::traj::TrajectoryRecord;
use lhmm_geo::Point;
use lhmm_graph::encoder::Embeddings;
use lhmm_graph::relgraph::MultiRelGraph;
use lhmm_network::graph::{RoadNetwork, SegmentId};
use lhmm_network::spatial::SpatialIndex;
use lhmm_neural::layers::{Activation, AdditiveAttention, Mlp};
use lhmm_neural::loss::bce_with_logits;
use lhmm_neural::optim::{clip_grad_norm, Adam};
use lhmm_neural::tape::{ParamStore, Tape};
use lhmm_neural::{Matrix, Scratch};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Observation-learner hyperparameters.
#[derive(Clone, Debug)]
pub struct ObsConfig {
    /// Implicit-stage training steps.
    pub epochs: usize,
    /// Fusion-stage training steps.
    pub fuse_epochs: usize,
    /// Points sampled per step.
    pub batch_points: usize,
    /// Negative roads per positive (undersampling balance).
    pub neg_per_pos: usize,
    /// Radius for sampling surrounding negative roads, meters.
    pub radius: f64,
    /// Hidden width of both MLPs.
    pub hidden: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            epochs: 150,
            fuse_epochs: 80,
            batch_points: 24,
            neg_per_pos: 3,
            radius: 2_500.0,
            hidden: 64,
            lr: 2e-3,
            seed: 0,
        }
    }
}

/// Normalization statistics for the explicit distance feature
/// (the paper's "batch-normalized Euclidean distance").
#[derive(Clone, Copy, Debug)]
pub struct FeatNorm {
    mean: f32,
    std: f32,
}

impl FeatNorm {
    fn apply(&self, v: f32) -> f32 {
        (v - self.mean) / self.std
    }
}

/// Number of explicit features in `D_O` (distance, co-occurrence).
const N_EXPLICIT: usize = 2;

/// The trained observation probability model.
#[derive(Clone)]
pub struct ObservationLearner {
    implicit_store: ParamStore,
    fuse_store: ParamStore,
    attention: AdditiveAttention,
    implicit_mlp: Mlp,
    fuse_mlp: Mlp,
    dist_norm: FeatNorm,
    dim: usize,
}

impl ObservationLearner {
    /// Embedding width the learner was built for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Trains the learner on the training split.
    pub fn train(
        net: &RoadNetwork,
        index: &SpatialIndex,
        emb: &Embeddings,
        graph: &MultiRelGraph,
        records: &[TrajectoryRecord],
        cfg: &ObsConfig,
    ) -> Self {
        let dim = emb.dim;
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0x0B5));
        let mut implicit_store = ParamStore::new();
        let attention = AdditiveAttention::new(&mut implicit_store, dim, dim, &mut rng);
        let implicit_mlp = Mlp::new(
            &mut implicit_store,
            &[2 * dim, cfg.hidden, 1],
            Activation::Relu,
            &mut rng,
        );
        let mut fuse_store = ParamStore::new();
        let fuse_mlp = Mlp::new(
            &mut fuse_store,
            &[1 + N_EXPLICIT, (cfg.hidden / 2).max(4), 1],
            Activation::Relu,
            &mut rng,
        );

        let samples = build_point_samples(net, records);
        assert!(!samples.is_empty(), "no training samples for P_O");
        let dist_norm = estimate_dist_norm(net, index, records, cfg, &mut rng);

        let mut learner = ObservationLearner {
            implicit_store,
            fuse_store,
            attention,
            implicit_mlp,
            fuse_mlp,
            dist_norm,
            dim,
        };

        // ---------------- Stage 1: implicit classifier ----------------
        let mut opt = Adam::new(cfg.lr, 1e-4);
        for _ in 0..cfg.epochs {
            let mut tape = Tape::new();
            let mut logits_var = None;
            let mut targets: Vec<f32> = Vec::new();
            for _ in 0..cfg.batch_points {
                let Some((rec_idx, pt_idx, pos_segs)) = pick_sample(&samples, &mut rng)
                else {
                    continue;
                };
                let rec = &records[rec_idx];
                let (segs, labels) =
                    sample_roads(net, index, rec, pt_idx, pos_segs, cfg, &mut rng);
                if segs.is_empty() {
                    continue;
                }
                let towers = rec.cellular.towers();
                let keys_m = tower_rows(emb, &towers);
                let query =
                    tape.constant(Matrix::row_vector(keys_m.row(pt_idx).to_vec()));
                let keys = tape.constant(keys_m);
                let (attended, _) = learner.attention.forward(
                    &mut tape,
                    &learner.implicit_store,
                    query,
                    keys,
                    keys,
                );
                // Residual connection: the context must stay anchored to the
                // *current* point's identity, otherwise near-uniform
                // attention collapses every point of a trajectory to the
                // same representation (and the matched path to one spot).
                let ctx = tape.add(query, attended);
                let n = segs.len();
                let ctx_rep = tape.repeat_row(ctx, n);
                let seg_v = tape.constant(segment_rows(emb, &segs));
                let cat = tape.concat_cols(seg_v, ctx_rep);
                let logit =
                    learner
                        .implicit_mlp
                        .forward(&mut tape, &learner.implicit_store, cat);
                logits_var = Some(match logits_var {
                    None => logit,
                    Some(acc) => tape.concat_rows(acc, logit),
                });
                targets.extend(labels);
            }
            let Some(lv) = logits_var else { continue };
            let target_m = Matrix::col_vector(targets);
            let (_, grad) = bce_with_logits(tape.value(lv), &target_m, 0.1);
            let grads = tape.backward(lv, grad);
            let mut pg = tape.param_grads(&grads);
            clip_grad_norm(&mut pg, 5.0);
            opt.step(&mut learner.implicit_store, &pg);
        }

        // ---------------- Stage 2: fusion fine-tuning ----------------
        let mut fuse_opt = Adam::new(cfg.lr, 1e-4);
        for _ in 0..cfg.fuse_epochs {
            let mut inputs: Vec<f32> = Vec::new();
            let mut targets: Vec<f32> = Vec::new();
            let mut rows = 0usize;
            for _ in 0..cfg.batch_points {
                let Some((rec_idx, pt_idx, pos_segs)) = pick_sample(&samples, &mut rng)
                else {
                    continue;
                };
                let rec = &records[rec_idx];
                let (segs, labels) =
                    sample_roads(net, index, rec, pt_idx, pos_segs, cfg, &mut rng);
                if segs.is_empty() {
                    continue;
                }
                let towers = rec.cellular.towers();
                let ctx = learner.context_row(emb, &towers, pt_idx);
                let implicit = learner.implicit_logits(emb, &ctx, &segs);
                let pos = rec.cellular.points[pt_idx].effective_pos();
                let tower = rec.cellular.points[pt_idx].tower;
                for ((&seg, &imp), &label) in segs.iter().zip(&implicit).zip(&labels) {
                    let feats = learner.explicit_features(net, graph, pos, tower, seg);
                    inputs.push(imp);
                    inputs.extend_from_slice(&feats);
                    targets.push(label);
                    rows += 1;
                }
            }
            if rows == 0 {
                continue;
            }
            let mut tape = Tape::new();
            let x = tape.constant(Matrix::from_vec(rows, 1 + N_EXPLICIT, inputs));
            let logit = learner.fuse_mlp.forward(&mut tape, &learner.fuse_store, x);
            let target_m = Matrix::col_vector(targets);
            let (_, grad) = bce_with_logits(tape.value(logit), &target_m, 0.1);
            let grads = tape.backward(logit, grad);
            let mut pg = tape.param_grads(&grads);
            clip_grad_norm(&mut pg, 5.0);
            fuse_opt.step(&mut learner.fuse_store, &pg);
        }

        learner
    }

    /// Serializes the learner's weights (both stages plus the distance
    /// normalizer) into the encoder.
    pub fn export_weights(&self, enc: &mut lhmm_neural::persist::Encoder) {
        enc.param_store(&self.implicit_store);
        enc.param_store(&self.fuse_store);
        enc.matrix(&Matrix::row_vector(vec![
            self.dist_norm.mean,
            self.dist_norm.std,
        ]));
    }

    /// Loads weights previously written by [`Self::export_weights`] into a
    /// structurally identical learner.
    pub fn import_weights(
        &mut self,
        dec: &mut lhmm_neural::persist::Decoder<'_>,
    ) -> Result<(), lhmm_neural::persist::DecodeError> {
        dec.param_store_into(&mut self.implicit_store)?;
        dec.param_store_into(&mut self.fuse_store)?;
        let norm = dec.matrix()?;
        if norm.shape() != (1, 2) {
            return Err(lhmm_neural::persist::DecodeError::ShapeMismatch);
        }
        self.dist_norm = FeatNorm {
            mean: norm.data()[0],
            std: norm.data()[1],
        };
        Ok(())
    }

    /// Context-aware point representation (Eq. 6 with a residual anchor),
    /// tape-free.
    pub fn context_row(&self, emb: &Embeddings, towers: &[TowerId], i: usize) -> Vec<f32> {
        let keys = tower_rows(emb, towers);
        let query = Matrix::row_vector(keys.row(i).to_vec());
        let attended = self
            .attention
            .infer(&self.implicit_store, &query, &keys, &keys);
        query.add(&attended).row(0).to_vec()
    }

    /// All per-point contexts of one trajectory; projects the keys once
    /// instead of per point.
    pub fn context_rows(&self, emb: &Embeddings, towers: &[TowerId]) -> Vec<Vec<f32>> {
        let keys = tower_rows(emb, towers);
        let projected = self.attention.project_keys(&self.implicit_store, &keys);
        (0..towers.len())
            .map(|i| {
                let query = Matrix::row_vector(keys.row(i).to_vec());
                let attended = self.attention.infer_projected(
                    &self.implicit_store,
                    &query,
                    &projected,
                    &keys,
                );
                query.add(&attended).row(0).to_vec()
            })
            .collect()
    }

    /// Implicit point-road correlation (Eq. 7) for a candidate batch,
    /// tape-free, as sigmoid probabilities.
    pub fn implicit_scores(
        &self,
        emb: &Embeddings,
        context: &[f32],
        segs: &[SegmentId],
    ) -> Vec<f32> {
        self.implicit_logits(emb, context, segs)
            .into_iter()
            .map(|x| 1.0 / (1.0 + (-x).exp()))
            .collect()
    }

    /// Raw implicit correlation logits (pre-sigmoid). The fusion stage
    /// consumes logits rather than probabilities: near-certain candidates
    /// saturate a sigmoid, destroying the ranking information the fusion
    /// MLP needs.
    pub fn implicit_logits(
        &self,
        emb: &Embeddings,
        context: &[f32],
        segs: &[SegmentId],
    ) -> Vec<f32> {
        if segs.is_empty() {
            return Vec::new();
        }
        let n = segs.len();
        let seg_m = segment_rows(emb, segs);
        let mut cat = Matrix::zeros(n, 2 * self.dim);
        for r in 0..n {
            cat.row_mut(r)[..self.dim].copy_from_slice(seg_m.row(r));
            cat.row_mut(r)[self.dim..].copy_from_slice(context);
        }
        let logits = self.implicit_mlp.infer(&self.implicit_store, &cat);
        logits.data().to_vec()
    }

    /// Explicit features `D_O`: normalized distance + co-occurrence
    /// frequency (Eq. 8).
    pub fn explicit_features(
        &self,
        net: &RoadNetwork,
        graph: &MultiRelGraph,
        pos: Point,
        tower: TowerId,
        seg: SegmentId,
    ) -> [f32; N_EXPLICIT] {
        let dist = net.distance_to_segment(pos, seg) as f32;
        let co = graph.co_frequency(tower, seg);
        [self.dist_norm.apply(dist), co.sqrt()]
    }

    /// Final learned `P_O` (Eq. 8) for a batch of candidate segments of one
    /// trajectory point. `context` comes from [`Self::context_row`].
    #[allow(clippy::too_many_arguments)] // mirrors Eq. 8's inputs one-to-one
    pub fn score(
        &self,
        net: &RoadNetwork,
        graph: &MultiRelGraph,
        emb: &Embeddings,
        context: &[f32],
        pos: Point,
        tower: TowerId,
        segs: &[SegmentId],
    ) -> Vec<f32> {
        if segs.is_empty() {
            return Vec::new();
        }
        let implicit = self.implicit_logits(emb, context, segs);
        let n = segs.len();
        let mut x = Matrix::zeros(n, 1 + N_EXPLICIT);
        for (r, (&seg, &imp)) in segs.iter().zip(&implicit).enumerate() {
            let feats = self.explicit_features(net, graph, pos, tower, seg);
            x.row_mut(r)[0] = imp;
            x.row_mut(r)[1..].copy_from_slice(&feats);
        }
        let logits = self.fuse_mlp.infer(&self.fuse_store, &x);
        logits
            .data()
            .iter()
            .map(|&v| 1.0 / (1.0 + (-v).exp()))
            .collect()
    }

    /// Builds the per-trajectory scorer: computes every point's attention
    /// context once up front (batched through the fused kernels unless
    /// `scalar` asks for the reference path) and reuses them for all
    /// candidate batches of the trajectory. The scratch arena is loaned in
    /// by the caller and handed back from [`ObsTrajScorer::finish`], so a
    /// warm arena carries across trajectories.
    pub fn traj_scorer<'a>(
        &'a self,
        emb: &'a Embeddings,
        towers: &[TowerId],
        mut scratch: Scratch,
        scalar: bool,
    ) -> ObsTrajScorer<'a> {
        let n = towers.len();
        let d = self.dim;
        let mut contexts = scratch.take(n, d);
        if scalar {
            for (i, ctx) in self.context_rows(emb, towers).iter().enumerate() {
                contexts.row_mut(i).copy_from_slice(ctx);
            }
        } else if n > 0 {
            let mut keys = scratch.take(n, d);
            for (r, &t) in towers.iter().enumerate() {
                keys.row_mut(r).copy_from_slice(emb.tower(t));
            }
            let p = self.attention.proj_dim();
            let mut kproj = scratch.take(n, p);
            self.attention
                .project_keys_into(&self.implicit_store, &keys, &mut kproj);
            // Every point of the trajectory queries the same key set; one
            // batched projection replaces n single-row matmuls
            // (bit-identically — see `project_queries_into`). The tanh
            // halves are memoized up front: n·p evaluations here instead of
            // n²·2p inside the per-query attention (see `attend_tanh`).
            let mut qproj = scratch.take(n, p);
            self.attention
                .project_queries_into(&self.implicit_store, &keys, &mut qproj);
            for v in kproj.data_mut() {
                *v = v.tanh();
            }
            for v in qproj.data_mut() {
                *v = v.tanh();
            }
            // Transpose the memoized key half once (p×n): the restructured
            // score loop in `attend_tanh_t` walks keys contiguously along
            // the key axis, which the SIMD kernels vectorize —
            // bit-identical to `attend_tanh` over the untransposed half.
            let mut kproj_t = scratch.take(p, n);
            kproj.transpose_into(&mut kproj_t);
            for i in 0..n {
                self.attention.attend_tanh_t(
                    &self.implicit_store,
                    qproj.row(i),
                    &kproj_t,
                    &keys,
                    &mut scratch,
                    contexts.row_mut(i),
                );
                // Residual anchor, same operand order as `context_row`'s
                // `query.add(&attended)` — `*o += k` would flip the addends
                // and is not guaranteed bit-identical.
                #[allow(clippy::assign_op_pattern)]
                for (o, &k) in contexts.row_mut(i).iter_mut().zip(keys.row(i)) {
                    *o = k + *o;
                }
            }
            scratch.give(kproj_t);
            scratch.give(qproj);
            scratch.give(kproj);
            scratch.give(keys);
        }
        ObsTrajScorer {
            learner: self,
            emb,
            contexts,
            scratch,
            scalar,
            stats: ScorerStats::default(),
        }
    }
}

/// Timing and volume counters accumulated by a per-trajectory scorer.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScorerStats {
    /// Wall time spent scoring, in seconds.
    pub time_s: f64,
    /// Number of scoring calls (candidate batches or transition pairs).
    pub calls: u64,
    /// Total rows scored across all calls.
    pub rows: u64,
}

/// Per-trajectory observation scorer: the vectorized fast path for `P_O`.
///
/// Holds the trajectory's context matrix (attention evaluated once per
/// point at construction) and a [`Scratch`] arena; [`Self::score_into`]
/// then evaluates whole candidate batches through the fused kernels with
/// zero steady-state heap allocations. With `scalar = true` every score is
/// routed through the allocating reference implementation
/// ([`ObservationLearner::score`]) instead — both modes are bit-identical.
pub struct ObsTrajScorer<'a> {
    learner: &'a ObservationLearner,
    emb: &'a Embeddings,
    contexts: Matrix,
    scratch: Scratch,
    scalar: bool,
    stats: ScorerStats,
}

impl<'a> ObsTrajScorer<'a> {
    /// Context row for trajectory point `i` (diagnostics / tests).
    pub fn context(&self, i: usize) -> &[f32] {
        self.contexts.row(i)
    }

    /// Scores all candidate `segs` of trajectory point `point_idx`,
    /// writing `P_O` values into `out` (cleared first).
    #[allow(clippy::too_many_arguments)] // mirrors Eq. 8's inputs one-to-one
    pub fn score_into(
        &mut self,
        net: &RoadNetwork,
        graph: &MultiRelGraph,
        pos: Point,
        tower: TowerId,
        point_idx: usize,
        segs: &[SegmentId],
        out: &mut Vec<f32>,
    ) {
        out.clear();
        if segs.is_empty() {
            return;
        }
        let t0 = crate::timing::StageTimer::start();
        if self.scalar {
            let scores = self.learner.score(
                net,
                graph,
                self.emb,
                self.contexts.row(point_idx),
                pos,
                tower,
                segs,
            );
            out.extend_from_slice(&scores);
        } else {
            let n = segs.len();
            let d = self.learner.dim;
            let context = self.contexts.row(point_idx);
            let mut cat = self.scratch.take(n, 2 * d);
            for (r, &s) in segs.iter().enumerate() {
                let row = cat.row_mut(r);
                row[..d].copy_from_slice(self.emb.segment(s));
                row[d..].copy_from_slice(context);
            }
            let implicit = self.learner.implicit_mlp.infer_with(
                &self.learner.implicit_store,
                &cat,
                &mut self.scratch,
            );
            let mut x = self.scratch.take(n, 1 + N_EXPLICIT);
            for (r, &seg) in segs.iter().enumerate() {
                let feats = self
                    .learner
                    .explicit_features(net, graph, pos, tower, seg);
                let row = x.row_mut(r);
                row[0] = implicit.data()[r];
                row[1..].copy_from_slice(&feats);
            }
            let logits =
                self.learner
                    .fuse_mlp
                    .infer_with(&self.learner.fuse_store, &x, &mut self.scratch);
            out.extend(logits.data().iter().map(|&v| 1.0 / (1.0 + (-v).exp())));
            self.scratch.give(cat);
            self.scratch.give(implicit);
            self.scratch.give(x);
            self.scratch.give(logits);
        }
        self.stats.time_s += t0.elapsed_s();
        self.stats.calls += 1;
        self.stats.rows += segs.len() as u64;
    }

    /// Accumulated timing/volume counters.
    pub fn stats(&self) -> ScorerStats {
        self.stats
    }

    /// `(fresh_allocs, high_water_bytes)` of the loaned scratch arena.
    pub fn scratch_stats(&self) -> (u64, u64) {
        (self.scratch.fresh_allocs(), self.scratch.high_water_bytes())
    }

    /// Returns the scratch arena (with the context matrix recycled into it)
    /// and the accumulated stats.
    pub fn finish(mut self) -> (Scratch, ScorerStats) {
        let contexts = std::mem::replace(&mut self.contexts, Matrix::zeros(0, 0));
        self.scratch.give(contexts);
        (self.scratch, self.stats)
    }
}

/// Stacks tower embedding rows for a trajectory.
pub(crate) fn tower_rows(emb: &Embeddings, towers: &[TowerId]) -> Matrix {
    let mut m = Matrix::zeros(towers.len(), emb.dim);
    for (r, &t) in towers.iter().enumerate() {
        m.row_mut(r).copy_from_slice(emb.tower(t));
    }
    m
}

/// Stacks segment embedding rows.
pub(crate) fn segment_rows(emb: &Embeddings, segs: &[SegmentId]) -> Matrix {
    let mut m = Matrix::zeros(segs.len(), emb.dim);
    for (r, &s) in segs.iter().enumerate() {
        m.row_mut(r).copy_from_slice(emb.segment(s));
    }
    m
}

/// `(record, point, positive segments)` triples with non-empty positives.
type PointSample = (usize, usize, Vec<SegmentId>);

/// Assigns each truth segment to the closest trajectory point (the
/// co-occurrence definition) and keeps points with at least one positive.
fn build_point_samples(net: &RoadNetwork, records: &[TrajectoryRecord]) -> Vec<PointSample> {
    let mut samples = Vec::new();
    for (ri, rec) in records.iter().enumerate() {
        let points = &rec.cellular.points;
        if points.is_empty() {
            continue;
        }
        let mut pos_sets: Vec<Vec<SegmentId>> = vec![Vec::new(); points.len()];
        for &seg in &rec.truth.segments {
            let mid = net.segment_midpoint(seg);
            // `points` is non-empty (checked above), so a minimum always
            // exists; `total_cmp` keeps the choice deterministic.
            let best = points
                .iter()
                .enumerate()
                .map(|(i, p)| (i, p.pos.distance(mid)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .map_or(0, |(i, _)| i);
            pos_sets[best].push(seg);
        }
        for (pi, set) in pos_sets.into_iter().enumerate() {
            if !set.is_empty() {
                samples.push((ri, pi, set));
            }
        }
    }
    samples
}

fn pick_sample<'a>(
    samples: &'a [PointSample],
    rng: &mut StdRng,
) -> Option<(usize, usize, &'a [SegmentId])> {
    if samples.is_empty() {
        return None;
    }
    let (ri, pi, segs) = &samples[rng.gen_range(0..samples.len())];
    Some((*ri, *pi, segs))
}

/// One positive road plus undersampled surrounding negatives for a point.
fn sample_roads(
    net: &RoadNetwork,
    index: &SpatialIndex,
    rec: &TrajectoryRecord,
    pt_idx: usize,
    positives: &[SegmentId],
    cfg: &ObsConfig,
    rng: &mut StdRng,
) -> (Vec<SegmentId>, Vec<f32>) {
    let pos = rec.cellular.points[pt_idx].effective_pos();
    let truth: std::collections::HashSet<SegmentId> = rec.truth.segment_set();
    let mut negs: Vec<SegmentId> = index
        .segments_within(net, pos, cfg.radius)
        .into_iter()
        .map(|(s, _)| s)
        .filter(|s| !truth.contains(s))
        .collect();
    let mut segs = Vec::with_capacity(1 + cfg.neg_per_pos);
    let mut labels = Vec::with_capacity(segs.capacity());
    segs.push(positives[rng.gen_range(0..positives.len())]);
    labels.push(1.0);
    negs.shuffle(rng);
    for &n in negs.iter().take(cfg.neg_per_pos) {
        segs.push(n);
        labels.push(0.0);
    }
    (segs, labels)
}

fn estimate_dist_norm(
    net: &RoadNetwork,
    index: &SpatialIndex,
    records: &[TrajectoryRecord],
    cfg: &ObsConfig,
    rng: &mut StdRng,
) -> FeatNorm {
    let mut dists: Vec<f32> = Vec::new();
    for _ in 0..400 {
        let rec = &records[rng.gen_range(0..records.len())];
        if rec.cellular.is_empty() {
            continue;
        }
        let pi = rng.gen_range(0..rec.cellular.len());
        let pos = rec.cellular.points[pi].effective_pos();
        for (s, _) in index.segments_within(net, pos, cfg.radius).iter().take(10) {
            dists.push(net.distance_to_segment(pos, *s) as f32);
        }
    }
    if dists.is_empty() {
        return FeatNorm {
            mean: 0.0,
            std: 1_000.0,
        };
    }
    let mean = dists.iter().sum::<f32>() / dists.len() as f32;
    let var = dists.iter().map(|d| (d - mean) * (d - mean)).sum::<f32>() / dists.len() as f32;
    FeatNorm {
        mean,
        std: var.sqrt().max(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhmm_cellsim::dataset::{Dataset, DatasetConfig};
    use lhmm_graph::encoder::{train_encoder, EncoderConfig, EncoderKind};

    fn quick_setup() -> (Dataset, MultiRelGraph, Embeddings) {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(41));
        let graph = MultiRelGraph::build(&ds.network, ds.towers.len(), &ds.train);
        let emb = train_encoder(
            &graph,
            &EncoderConfig {
                dim: 16,
                epochs: 60,
                batch_edges: 256,
                kind: EncoderKind::Heterogeneous,
                ..Default::default()
            },
        );
        (ds, graph, emb)
    }

    fn quick_cfg() -> ObsConfig {
        ObsConfig {
            epochs: 60,
            fuse_epochs: 30,
            batch_points: 12,
            ..Default::default()
        }
    }

    #[test]
    fn training_is_finite_and_scores_are_probabilities() {
        let (ds, graph, emb) = quick_setup();
        let learner = ObservationLearner::train(
            &ds.network,
            &ds.index,
            &emb,
            &graph,
            &ds.train,
            &quick_cfg(),
        );
        let rec = &ds.test[0];
        let towers = rec.cellular.towers();
        let ctx = learner.context_row(&emb, &towers, 0);
        assert_eq!(ctx.len(), 16);
        let pos = rec.cellular.points[0].effective_pos();
        let segs: Vec<SegmentId> = ds
            .index
            .k_nearest(&ds.network, pos, 20, 3_000.0)
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        let scores = learner.score(
            &ds.network,
            &graph,
            &emb,
            &ctx,
            pos,
            rec.cellular.points[0].tower,
            &segs,
        );
        assert_eq!(scores.len(), segs.len());
        assert!(scores
            .iter()
            .all(|&s| (0.0..=1.0).contains(&s) && s.is_finite()));
    }

    #[test]
    fn learned_po_ranks_true_roads_above_other_roads() {
        let (ds, graph, emb) = quick_setup();
        let learner = ObservationLearner::train(
            &ds.network,
            &ds.index,
            &emb,
            &graph,
            &ds.train,
            &quick_cfg(),
        );
        let mut truth_scores = Vec::new();
        let mut other_scores = Vec::new();
        for rec in ds.test.iter().take(8) {
            let towers = rec.cellular.towers();
            let truth = rec.truth.segment_set();
            for (i, p) in rec.cellular.points.iter().enumerate() {
                let ctx = learner.context_row(&emb, &towers, i);
                let pos = p.effective_pos();
                let segs: Vec<SegmentId> = ds
                    .index
                    .segments_within(&ds.network, pos, 2_000.0)
                    .into_iter()
                    .map(|(s, _)| s)
                    .collect();
                if segs.is_empty() {
                    continue;
                }
                let scores =
                    learner.score(&ds.network, &graph, &emb, &ctx, pos, p.tower, &segs);
                for (&s, &sc) in segs.iter().zip(&scores) {
                    if truth.contains(&s) {
                        truth_scores.push(sc);
                    } else {
                        other_scores.push(sc);
                    }
                }
            }
        }
        assert!(!truth_scores.is_empty() && !other_scores.is_empty());
        let tm: f32 = truth_scores.iter().sum::<f32>() / truth_scores.len() as f32;
        let om: f32 = other_scores.iter().sum::<f32>() / other_scores.len() as f32;
        assert!(
            tm > om,
            "learned P_O failed to separate truth ({tm}) from noise ({om})"
        );
    }

    #[test]
    fn traj_scorer_fast_path_is_bitwise_identical_to_scalar() {
        let (ds, graph, emb) = quick_setup();
        let learner = ObservationLearner::train(
            &ds.network,
            &ds.index,
            &emb,
            &graph,
            &ds.train,
            &quick_cfg(),
        );
        for rec in ds.test.iter().take(4) {
            let towers = rec.cellular.towers();
            if towers.is_empty() {
                continue;
            }
            let mut scalar =
                learner.traj_scorer(&emb, &towers, Scratch::new(), true);
            let mut fast = learner.traj_scorer(&emb, &towers, Scratch::new(), false);
            let (mut s_out, mut f_out) = (Vec::new(), Vec::new());
            for (i, p) in rec.cellular.points.iter().enumerate() {
                assert_eq!(
                    scalar
                        .context(i)
                        .iter()
                        .map(|v| v.to_bits())
                        .collect::<Vec<_>>(),
                    fast.context(i)
                        .iter()
                        .map(|v| v.to_bits())
                        .collect::<Vec<_>>(),
                    "context diverged at point {i}"
                );
                let pos = p.effective_pos();
                let segs: Vec<SegmentId> = ds
                    .index
                    .k_nearest(&ds.network, pos, 12, 3_000.0)
                    .into_iter()
                    .map(|(s, _)| s)
                    .collect();
                scalar.score_into(&ds.network, &graph, pos, p.tower, i, &segs, &mut s_out);
                fast.score_into(&ds.network, &graph, pos, p.tower, i, &segs, &mut f_out);
                assert_eq!(s_out.len(), f_out.len());
                for (a, b) in s_out.iter().zip(&f_out) {
                    assert_eq!(a.to_bits(), b.to_bits(), "P_O diverged at point {i}");
                }
            }
        }
    }

    #[test]
    fn empty_candidate_batch_is_safe() {
        let (ds, graph, emb) = quick_setup();
        let learner = ObservationLearner::train(
            &ds.network,
            &ds.index,
            &emb,
            &graph,
            &ds.train,
            &ObsConfig {
                epochs: 5,
                fuse_epochs: 5,
                ..quick_cfg()
            },
        );
        let scores = learner.score(
            &ds.network,
            &graph,
            &emb,
            &[0.0; 16],
            Point::ORIGIN,
            TowerId(0),
            &[],
        );
        assert!(scores.is_empty());
    }
}
