//! The classic heuristic probabilities of HMM map matching (paper Eq. 2–3).
//!
//! These drive the GPS-era baselines (STM, IVMM, …) and stand in for the
//! learned components in the LHMM-O / LHMM-T ablations.

use crate::types::{Candidate, HmmProbabilities, RouteInfo};
use lhmm_geo::Point;
use lhmm_network::graph::SegmentId;

/// Gaussian observation probability over point-to-road distance (Eq. 2).
#[derive(Clone, Copy, Debug)]
pub struct ClassicObservation {
    /// Distance mean μ₁ (0 for GPS; positive for cellular data where the
    /// true road is rarely at the tower).
    pub mu: f64,
    /// Distance standard deviation σ₁ in meters (tens of meters for GPS,
    /// hundreds for cellular).
    pub sigma: f64,
}

impl ClassicObservation {
    /// A GPS-tuned instance (σ = 30 m).
    pub fn gps() -> Self {
        ClassicObservation {
            mu: 0.0,
            sigma: 30.0,
        }
    }

    /// A cellular-tuned instance (σ = 600 m), following the CTMM baselines.
    pub fn cellular() -> Self {
        ClassicObservation {
            mu: 0.0,
            sigma: 600.0,
        }
    }

    /// `P_O` for a projection distance, normalized to a max of 1 at μ.
    #[inline]
    pub fn prob(&self, dist: f64) -> f64 {
        let z = (dist - self.mu) / self.sigma;
        (-0.5 * z * z).exp()
    }
}

/// Exponential transition probability over the difference between the
/// great-circle hop and the route length (Eq. 3).
#[derive(Clone, Copy, Debug)]
pub struct ClassicTransition {
    /// Scale σ₂ in meters.
    pub beta: f64,
}

impl ClassicTransition {
    /// A GPS-tuned instance.
    pub fn gps() -> Self {
        ClassicTransition { beta: 200.0 }
    }

    /// A cellular-tuned instance (larger slack: tower hops are long).
    pub fn cellular() -> Self {
        ClassicTransition { beta: 800.0 }
    }

    /// `P_T` for a straight-line hop of `d_straight` matched to a route of
    /// `route_len` meters.
    #[inline]
    pub fn prob(&self, d_straight: f64, route_len: f64) -> f64 {
        (-((d_straight - route_len).abs()) / self.beta).exp()
    }
}

/// A complete classic HMM model: Eq. 2 + Eq. 3 with the per-point positions
/// needed to evaluate distances.
pub struct ClassicModel {
    /// Observation component.
    pub obs: ClassicObservation,
    /// Transition component.
    pub trans: ClassicTransition,
    /// Effective positions per trajectory point.
    pub positions: Vec<Point>,
    /// Distance from each point to each candidate is recomputed from these
    /// positions via the network; the engine passes the distance directly.
    pub net_distances: (),
}

impl ClassicModel {
    /// Builds the model for one trajectory.
    pub fn new(
        obs: ClassicObservation,
        trans: ClassicTransition,
        positions: Vec<Point>,
    ) -> Self {
        ClassicModel {
            obs,
            trans,
            positions,
            net_distances: (),
        }
    }
}

impl HmmProbabilities for ClassicModel {
    fn observation(&mut self, _i: usize, _seg: SegmentId, dist: f64) -> f64 {
        self.obs.prob(dist)
    }

    fn transition(
        &mut self,
        i: usize,
        _prev: &Candidate,
        _cur: &Candidate,
        route: &RouteInfo,
    ) -> f64 {
        if !route.found {
            return 0.0;
        }
        let d = self.positions[i - 1].distance(self.positions[i]);
        self.trans.prob(d, route.length)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observation_decreases_with_distance() {
        let o = ClassicObservation::cellular();
        assert!(o.prob(0.0) > o.prob(500.0));
        assert!(o.prob(500.0) > o.prob(2_000.0));
        assert!((o.prob(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transition_peaks_at_equal_lengths() {
        let t = ClassicTransition::cellular();
        assert!((t.prob(1_000.0, 1_000.0) - 1.0).abs() < 1e-12);
        assert!(t.prob(1_000.0, 1_500.0) < 1.0);
        assert!(t.prob(1_000.0, 1_500.0) > t.prob(1_000.0, 3_000.0));
        // Symmetric in the deviation.
        assert_eq!(t.prob(1_000.0, 1_400.0), t.prob(1_400.0, 1_000.0));
    }

    #[test]
    fn model_returns_zero_for_missing_routes() {
        let mut m = ClassicModel::new(
            ClassicObservation::cellular(),
            ClassicTransition::cellular(),
            vec![Point::new(0.0, 0.0), Point::new(1_000.0, 0.0)],
        );
        let c = Candidate {
            seg: SegmentId(0),
            t: 0.5,
            obs: 1.0,
        };
        assert_eq!(m.transition(1, &c, &c, &RouteInfo::missing()), 0.0);
        let ok = RouteInfo {
            found: true,
            length: 1_000.0,
            segments: vec![],
        };
        assert!(m.transition(1, &c, &c, &ok) > 0.99);
    }

    #[test]
    fn probabilities_stay_in_unit_interval() {
        let o = ClassicObservation::gps();
        let t = ClassicTransition::gps();
        for d in [0.0, 10.0, 100.0, 1e4, 1e6] {
            assert!((0.0..=1.0).contains(&o.prob(d)));
            assert!((0.0..=1.0).contains(&t.prob(d, 500.0)));
        }
    }
}
