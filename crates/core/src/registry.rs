//! Versioned model registry with atomic hot swap, shadow serving and
//! online refresh statistics.
//!
//! A [`ModelRegistry`] holds every deployable [`LhmmModel`] as an
//! `Arc<VersionedModel>` behind a manifest (monotonic version, weight
//! fingerprint, provenance). The serving layer resolves the **active**
//! version at admission time and pins it for the whole request/session —
//! swapping the active version ([`ModelRegistry::promote`] /
//! [`ModelRegistry::rollback`]) is one pointer update under a short lock,
//! so in-flight work finishes on the version it started with while new
//! admissions pick up the new one. No request ever observes a half-swapped
//! model, and no version is freed while anything still pins its `Arc`.
//!
//! Shadow A/B serving mirrors a deterministic every-Nth slice of admitted
//! traffic through a candidate version ([`ModelRegistry::set_shadow`] +
//! [`ModelRegistry::shadow_pick`]); shadow verdicts are compared against
//! the active version's and never reach clients.
//!
//! The registry also accumulates online refresh statistics: served matches
//! [`observe`](ModelRegistry::observe) their (tower, matched-segment)
//! co-occurrences exactly as offline graph construction counts them, and
//! [`refresh`](ModelRegistry::refresh) folds the drained counters into a
//! cloned active model ([`LhmmModel::refreshed`]), registering the result
//! as a new *candidate* version (promotion stays an explicit decision) —
//! the accumulate → refresh → swap loop, end to end.

use crate::lhmm::LhmmModel;
use lhmm_cellsim::traj::CellularPoint;
use lhmm_network::graph::{RoadNetwork, SegmentId};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{rank, OrderedMutex};
use std::sync::Arc;

/// Magic bytes leading a serialized registry manifest.
const MANIFEST_MAGIC: &[u8; 4] = b"LHMR";
/// Manifest format version.
const MANIFEST_VERSION: u8 = 1;
/// Manifest labels longer than this are refused while decoding (an
/// allocation bound against corrupt or hostile length fields).
const MAX_LABEL: usize = 4096;

/// A monotonic model version number. Version numbers start at 1; on the
/// wire, 0 is the "currently active" sentinel and never names an entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModelVersion(pub u32);

impl fmt::Display for ModelVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Provenance metadata of one registered model version.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelManifest {
    /// The version this manifest describes.
    pub version: ModelVersion,
    /// FNV-1a fingerprint of the model's persisted weights
    /// ([`LhmmModel::save_weights`]) concatenated with its co-occurrence
    /// digest: equal iff both are byte-identical, so a manifest pins its
    /// version bit-exactly and a refreshed candidate (same neural weights,
    /// new folded-in statistics) never shares its parent's fingerprint.
    pub fingerprint: u64,
    /// Size of the persisted weights, bytes.
    pub weight_bytes: u64,
    /// The version this one was derived from (`None` for roots; set for
    /// refresh-derived candidates).
    pub parent: Option<ModelVersion>,
    /// Free-form provenance label ("seed", "refresh-3", ...).
    pub label: String,
}

/// One registry entry: a manifest plus the immutable model it describes.
pub struct VersionedModel {
    /// Provenance and fingerprint.
    pub manifest: ModelManifest,
    /// The trained model. Immutable once registered.
    pub model: LhmmModel,
}

impl VersionedModel {
    /// Shorthand for the entry's version number.
    pub fn version(&self) -> ModelVersion {
        self.manifest.version
    }
}

/// Mergeable online (tower, matched-segment) co-occurrence statistics,
/// accumulated from served matches and folded into a refreshed model.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RefreshStats {
    /// Co-occurrence counts keyed `(tower id, segment id)`. A `BTreeMap`
    /// so draining and folding iterate in a deterministic order.
    pub counts: BTreeMap<(u32, u32), u64>,
    /// Matches observed into these counters.
    pub observed_matches: u64,
}

impl RefreshStats {
    /// True when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Folds another collector's counts into this one. Addition is
    /// commutative and associative, so per-shard collectors may merge in
    /// any order.
    pub fn merge(&mut self, other: &RefreshStats) {
        for (&k, &c) in &other.counts {
            *self.counts.entry(k).or_insert(0) += c;
        }
        self.observed_matches += other.observed_matches;
    }

    /// Credits one served match: every matched segment pairs with the
    /// *closest* trajectory point — byte-for-byte the closest-point rule
    /// offline graph construction uses (`MultiRelGraph::build`), so a
    /// refresh folds statistics of the same definition the model was
    /// trained on. Raw point positions are used (not smoothed ones),
    /// again mirroring offline construction.
    pub fn observe(
        &mut self,
        net: &RoadNetwork,
        points: &[CellularPoint],
        segments: &[SegmentId],
    ) {
        if points.is_empty() || segments.is_empty() {
            return;
        }
        for &seg in segments {
            let mid = net.segment_midpoint(seg);
            let Some(closest) = points
                .iter()
                .min_by(|a, b| a.pos.distance(mid).total_cmp(&b.pos.distance(mid)))
            else {
                continue;
            };
            *self.counts.entry((closest.tower.0, seg.0)).or_insert(0) += 1;
        }
        self.observed_matches += 1;
    }
}

/// Everything that can go wrong talking to the registry or decoding a
/// manifest. Corrupt bytes are typed errors, never panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegistryError {
    /// No entry with this version number exists.
    UnknownVersion(u32),
    /// Rollback was requested but no previous active version is recorded.
    NoPreviousVersion,
    /// Refresh was requested with no accumulated statistics.
    EmptyStats,
    /// Manifest bytes do not start with the expected magic.
    BadMagic,
    /// Unsupported manifest format version.
    BadVersion(u8),
    /// Manifest bytes ended before the declared content.
    Truncated,
    /// Bytes remain after the declared content.
    TrailingBytes,
    /// A label is oversized or not valid UTF-8.
    BadLabel,
    /// A decoded entry is structurally inconsistent (duplicate or zero
    /// version, unknown parent/active reference).
    Inconsistent(&'static str),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownVersion(v) => write!(f, "unknown model version v{v}"),
            RegistryError::NoPreviousVersion => {
                write!(f, "no previous version to roll back to")
            }
            RegistryError::EmptyStats => {
                write!(f, "no refresh statistics have been accumulated")
            }
            RegistryError::BadMagic => write!(f, "not a registry manifest"),
            RegistryError::BadVersion(v) => {
                write!(f, "unsupported manifest format version {v}")
            }
            RegistryError::Truncated => write!(f, "manifest is truncated"),
            RegistryError::TrailingBytes => {
                write!(f, "trailing bytes after manifest content")
            }
            RegistryError::BadLabel => write!(f, "manifest label is invalid"),
            RegistryError::Inconsistent(what) => {
                write!(f, "manifest is inconsistent: {what}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// The shadow routing plan: mirror every `mirror_every`-th admission
/// through `version`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct ShadowPlan {
    version: u32,
    mirror_every: u32,
}

struct Inner {
    entries: BTreeMap<u32, Arc<VersionedModel>>,
    active: u32,
    previous: Option<u32>,
    shadow: Option<ShadowPlan>,
    next: u32,
}

/// The versioned model registry. All methods are `&self` and thread-safe;
/// the hot path ([`ModelRegistry::active`], [`ModelRegistry::shadow_pick`])
/// holds the lock only long enough to clone an `Arc`.
pub struct ModelRegistry {
    inner: OrderedMutex<Inner>,
    stats: OrderedMutex<RefreshStats>,
    shadow_counter: AtomicU64,
    swaps: AtomicU64,
    refreshes: AtomicU64,
}

fn manifest_for(version: u32, model: &LhmmModel, label: &str, parent: Option<u32>) -> ModelManifest {
    let mut bytes = model.save_weights();
    let weight_bytes = bytes.len() as u64;
    // The co-occurrence digest rides along so a refreshed candidate —
    // identical neural weights, different folded-in statistics — gets a
    // fingerprint distinct from its parent's.
    bytes.extend(model.graph().co_digest_bytes());
    ModelManifest {
        version: ModelVersion(version),
        fingerprint: lhmm_neural::persist::fingerprint64(&bytes),
        weight_bytes,
        parent: parent.map(ModelVersion),
        label: label.to_string(),
    }
}

impl ModelRegistry {
    /// A registry seeded with one model, registered as version 1 and made
    /// active.
    pub fn new(model: LhmmModel, label: &str) -> Self {
        let manifest = manifest_for(1, &model, label, None);
        let mut entries = BTreeMap::new();
        entries.insert(1, Arc::new(VersionedModel { manifest, model }));
        ModelRegistry {
            // Rank-ordered locks (DESIGN §15): the registry is a leaf in
            // the workspace hierarchy — its methods never take another
            // lock, and poison is ridden exactly as `lock_unpoisoned` did.
            inner: OrderedMutex::new(rank::REGISTRY_INNER, "registry.inner", Inner {
                entries,
                active: 1,
                previous: None,
                shadow: None,
                next: 2,
            }),
            stats: OrderedMutex::new(rank::REGISTRY_STATS, "registry.stats", RefreshStats::default()),
            shadow_counter: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            refreshes: AtomicU64::new(0),
        }
    }

    /// Registers a new model as a candidate version (not active until
    /// promoted). Returns the assigned version number.
    pub fn register(
        &self,
        model: LhmmModel,
        label: &str,
        parent: Option<ModelVersion>,
    ) -> ModelVersion {
        let mut inner = self.inner.lock();
        let version = inner.next;
        inner.next += 1;
        let manifest = manifest_for(version, &model, label, parent.map(|v| v.0));
        inner
            .entries
            .insert(version, Arc::new(VersionedModel { manifest, model }));
        ModelVersion(version)
    }

    /// The active version's entry — **the pinning primitive**. Callers
    /// clone the `Arc` once at admission and keep serving from it; a
    /// concurrent promote cannot change what the clone points at.
    pub fn active(&self) -> Arc<VersionedModel> {
        let inner = self.inner.lock();
        // The active version always names an entry (promote/rollback
        // validate before updating), so this lookup cannot miss; the
        // unreachable fallback keeps the path panic-free regardless.
        match inner.entries.get(&inner.active) {
            Some(e) => Arc::clone(e),
            None => match inner.entries.values().next() {
                Some(e) => Arc::clone(e),
                None => unreachable!("registry always holds at least one entry"),
            },
        }
    }

    /// The active version number.
    pub fn active_version(&self) -> ModelVersion {
        ModelVersion(self.inner.lock().active)
    }

    /// The previously active version (rollback target), when any swap has
    /// happened.
    pub fn previous_version(&self) -> Option<ModelVersion> {
        self.inner.lock().previous.map(ModelVersion)
    }

    /// Resolves a wire version number: 0 means "the currently active
    /// version", anything else must name a registered entry.
    pub fn resolve(&self, version: u32) -> Result<Arc<VersionedModel>, RegistryError> {
        if version == 0 {
            return Ok(self.active());
        }
        let inner = self.inner.lock();
        inner
            .entries
            .get(&version)
            .map(Arc::clone)
            .ok_or(RegistryError::UnknownVersion(version))
    }

    /// Atomically makes `version` the active one. In-flight work pinned to
    /// the old version is unaffected; the old version becomes the rollback
    /// target. Promoting the already-active version is a no-op (not a
    /// counted swap). Promoting the shadow candidate clears the shadow
    /// plan (it is no longer a candidate).
    pub fn promote(&self, version: ModelVersion) -> Result<(), RegistryError> {
        let mut inner = self.inner.lock();
        if !inner.entries.contains_key(&version.0) {
            return Err(RegistryError::UnknownVersion(version.0));
        }
        if inner.active == version.0 {
            return Ok(());
        }
        inner.previous = Some(inner.active);
        inner.active = version.0;
        if inner.shadow.map(|s| s.version) == Some(version.0) {
            inner.shadow = None;
        }
        self.swaps.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Swaps back to the previously active version. Returns the version
    /// now active.
    pub fn rollback(&self) -> Result<ModelVersion, RegistryError> {
        let mut inner = self.inner.lock();
        let Some(previous) = inner.previous else {
            return Err(RegistryError::NoPreviousVersion);
        };
        if !inner.entries.contains_key(&previous) {
            return Err(RegistryError::UnknownVersion(previous));
        }
        inner.previous = Some(inner.active);
        inner.active = previous;
        self.swaps.fetch_add(1, Ordering::Relaxed);
        Ok(ModelVersion(previous))
    }

    /// Completed promote/rollback swaps.
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Arms shadow serving: every `mirror_every`-th admission is mirrored
    /// through `version` (clamped to at least 1 — every admission). The
    /// deterministic cadence replaces random sampling so serving stays
    /// RNG-free.
    pub fn set_shadow(&self, version: ModelVersion, mirror_every: u32) -> Result<(), RegistryError> {
        let mut inner = self.inner.lock();
        if !inner.entries.contains_key(&version.0) {
            return Err(RegistryError::UnknownVersion(version.0));
        }
        inner.shadow = Some(ShadowPlan {
            version: version.0,
            mirror_every: mirror_every.max(1),
        });
        Ok(())
    }

    /// Disarms shadow serving.
    pub fn clear_shadow(&self) {
        self.inner.lock().shadow = None;
    }

    /// The armed shadow plan, `(version, mirror_every)`.
    pub fn shadow_plan(&self) -> Option<(ModelVersion, u32)> {
        self.inner.lock()
            .shadow
            .map(|s| (ModelVersion(s.version), s.mirror_every))
    }

    /// Called once per admission: returns the shadow entry when this
    /// admission is one of the mirrored every-Nth slice, else `None`.
    pub fn shadow_pick(&self) -> Option<Arc<VersionedModel>> {
        let inner = self.inner.lock();
        let plan = inner.shadow?;
        let n = self.shadow_counter.fetch_add(1, Ordering::Relaxed) + 1;
        if !n.is_multiple_of(u64::from(plan.mirror_every)) {
            return None;
        }
        inner.entries.get(&plan.version).map(Arc::clone)
    }

    /// Every registered manifest, in version order.
    pub fn manifests(&self) -> Vec<ModelManifest> {
        self.inner.lock()
            .entries
            .values()
            .map(|e| e.manifest.clone())
            .collect()
    }

    /// Credits one served match into the refresh statistics collector (see
    /// [`RefreshStats::observe`]).
    pub fn observe(&self, net: &RoadNetwork, points: &[CellularPoint], segments: &[SegmentId]) {
        self.stats.lock().observe(net, points, segments);
    }

    /// Folds an externally accumulated collector (e.g. a per-shard one)
    /// into the registry's.
    pub fn merge_stats(&self, other: &RefreshStats) {
        self.stats.lock().merge(other);
    }

    /// A copy of the currently accumulated refresh statistics.
    pub fn stats(&self) -> RefreshStats {
        self.stats.lock().clone()
    }

    /// Takes the accumulated refresh statistics, leaving the collector
    /// empty.
    pub fn drain_stats(&self) -> RefreshStats {
        std::mem::take(&mut *self.stats.lock())
    }

    /// Completed refreshes.
    pub fn refresh_count(&self) -> u64 {
        self.refreshes.load(Ordering::Relaxed)
    }

    /// The refresh entry point: drains the accumulated statistics, folds
    /// them into a clone of the active model ([`LhmmModel::refreshed`])
    /// and registers the result as a new candidate version whose parent is
    /// the active version. The active version keeps serving unchanged;
    /// promotion is a separate, explicit step. [`RegistryError::EmptyStats`]
    /// when nothing has been observed (nothing is drained in that case).
    pub fn refresh(&self, label: &str) -> Result<ModelVersion, RegistryError> {
        let stats = self.drain_stats();
        if stats.is_empty() {
            return Err(RegistryError::EmptyStats);
        }
        let base = self.active();
        let refreshed = base.model.refreshed(&stats.counts);
        let version = self.register(refreshed, label, Some(base.version()));
        self.refreshes.fetch_add(1, Ordering::Relaxed);
        Ok(version)
    }

    /// Serializes the manifest table (active version + every manifest) —
    /// the durable record of what is deployed. Weights travel separately
    /// via [`LhmmModel::save_weights`]; a loaded weight file is checked
    /// against its manifest fingerprint by the caller.
    pub fn manifest_bytes(&self) -> Vec<u8> {
        let inner = self.inner.lock();
        let mut buf = Vec::new();
        buf.extend_from_slice(MANIFEST_MAGIC);
        buf.push(MANIFEST_VERSION);
        buf.extend_from_slice(&inner.active.to_le_bytes());
        buf.extend_from_slice(&(inner.entries.len() as u32).to_le_bytes());
        for entry in inner.entries.values() {
            let m = &entry.manifest;
            buf.extend_from_slice(&m.version.0.to_le_bytes());
            buf.extend_from_slice(&m.parent.map_or(0, |p| p.0).to_le_bytes());
            buf.extend_from_slice(&m.fingerprint.to_le_bytes());
            buf.extend_from_slice(&m.weight_bytes.to_le_bytes());
            buf.extend_from_slice(&(m.label.len() as u32).to_le_bytes());
            buf.extend_from_slice(m.label.as_bytes());
        }
        buf
    }

    /// Decodes a manifest table serialized by
    /// [`ModelRegistry::manifest_bytes`]: returns the recorded active
    /// version and every manifest, in version order. Corrupt or truncated
    /// bytes come back as typed [`RegistryError`]s, never panics.
    pub fn decode_manifest(bytes: &[u8]) -> Result<(ModelVersion, Vec<ModelManifest>), RegistryError> {
        let mut c = ManifestCursor { buf: bytes, at: 0 };
        let magic = c.take(4)?;
        if magic != MANIFEST_MAGIC {
            return Err(RegistryError::BadMagic);
        }
        let version = c.take(1)?[0];
        if version != MANIFEST_VERSION {
            return Err(RegistryError::BadVersion(version));
        }
        let active = c.u32()?;
        let count = c.u32()? as usize;
        let mut manifests: Vec<ModelManifest> = Vec::with_capacity(count.min(4096));
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..count {
            let v = c.u32()?;
            let parent = c.u32()?;
            let fingerprint = c.u64()?;
            let weight_bytes = c.u64()?;
            let label_len = c.u32()? as usize;
            if label_len > MAX_LABEL {
                return Err(RegistryError::BadLabel);
            }
            let label = std::str::from_utf8(c.take(label_len)?)
                .map_err(|_| RegistryError::BadLabel)?
                .to_string();
            if v == 0 {
                return Err(RegistryError::Inconsistent("version 0 is reserved"));
            }
            if !seen.insert(v) {
                return Err(RegistryError::Inconsistent("duplicate version"));
            }
            manifests.push(ModelManifest {
                version: ModelVersion(v),
                fingerprint,
                weight_bytes,
                parent: (parent != 0).then_some(ModelVersion(parent)),
                label,
            });
        }
        if c.at != bytes.len() {
            return Err(RegistryError::TrailingBytes);
        }
        if !seen.contains(&active) {
            return Err(RegistryError::Inconsistent("active version not listed"));
        }
        for m in &manifests {
            if let Some(p) = m.parent {
                if !seen.contains(&p.0) {
                    return Err(RegistryError::Inconsistent("parent version not listed"));
                }
            }
        }
        Ok((ModelVersion(active), manifests))
    }
}

struct ManifestCursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> ManifestCursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], RegistryError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(RegistryError::Truncated)?;
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, RegistryError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, RegistryError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lhmm::LhmmConfig;
    use lhmm_cellsim::dataset::{Dataset, DatasetConfig};

    fn cheap_model(ds: &Dataset, seed: u64) -> LhmmModel {
        let mut cfg = LhmmConfig::fast_test(seed);
        cfg.use_learned_obs = false;
        cfg.use_learned_trans = false;
        LhmmModel::train(ds, cfg)
    }

    fn registry() -> (Dataset, ModelRegistry) {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(701));
        let model = cheap_model(&ds, 701);
        let reg = ModelRegistry::new(model, "seed");
        (ds, reg)
    }

    #[test]
    fn registration_promote_rollback_cycle() {
        let (_, reg) = registry();
        assert_eq!(reg.active_version(), ModelVersion(1));
        assert_eq!(reg.previous_version(), None);
        assert_eq!(reg.swap_count(), 0);

        let mut variant = reg.active().model.clone();
        variant.config.k = 3;
        let v2 = reg.register(variant, "k3", Some(ModelVersion(1)));
        assert_eq!(v2, ModelVersion(2));
        // Registration does not swap.
        assert_eq!(reg.active_version(), ModelVersion(1));

        reg.promote(v2).expect("promote");
        assert_eq!(reg.active_version(), ModelVersion(2));
        assert_eq!(reg.previous_version(), Some(ModelVersion(1)));
        assert_eq!(reg.swap_count(), 1);
        assert_eq!(reg.active().model.config.k, 3);

        // Re-promoting the active version is a no-op, not a swap.
        reg.promote(v2).expect("idempotent promote");
        assert_eq!(reg.swap_count(), 1);

        let back = reg.rollback().expect("rollback");
        assert_eq!(back, ModelVersion(1));
        assert_eq!(reg.active_version(), ModelVersion(1));
        assert_eq!(reg.previous_version(), Some(ModelVersion(2)));
        assert_eq!(reg.swap_count(), 2);

        assert_eq!(
            reg.promote(ModelVersion(99)),
            Err(RegistryError::UnknownVersion(99))
        );
        assert_eq!(reg.resolve(0).expect("active").version(), ModelVersion(1));
        assert_eq!(reg.resolve(2).expect("v2").version(), ModelVersion(2));
        assert!(matches!(reg.resolve(7), Err(RegistryError::UnknownVersion(7))));
    }

    #[test]
    fn rollback_without_history_is_typed() {
        let (_, reg) = registry();
        assert_eq!(reg.rollback(), Err(RegistryError::NoPreviousVersion));
    }

    #[test]
    fn shadow_pick_is_every_nth_and_never_leaks_without_a_plan() {
        let (_, reg) = registry();
        assert!(reg.shadow_pick().is_none());
        let variant = reg.active().model.clone();
        let v2 = reg.register(variant, "cand", None);
        reg.set_shadow(v2, 3).expect("set shadow");
        assert_eq!(reg.shadow_plan(), Some((v2, 3)));
        let picks: Vec<bool> = (0..9).map(|_| reg.shadow_pick().is_some()).collect();
        assert_eq!(
            picks,
            [false, false, true, false, false, true, false, false, true]
        );
        // Promoting the shadow candidate clears the plan.
        reg.promote(v2).expect("promote");
        assert_eq!(reg.shadow_plan(), None);
        assert!(reg.shadow_pick().is_none());
        assert_eq!(
            reg.set_shadow(ModelVersion(42), 1),
            Err(RegistryError::UnknownVersion(42))
        );
    }

    #[test]
    fn observe_refresh_registers_a_derived_candidate() {
        let (ds, reg) = registry();
        assert_eq!(reg.refresh("r"), Err(RegistryError::EmptyStats));

        let rec = &ds.train[0];
        reg.observe(&ds.network, &rec.cellular.points, &rec.truth.segments);
        reg.observe(&ds.network, &rec.cellular.points, &rec.truth.segments);
        let stats = reg.stats();
        assert!(!stats.is_empty());
        assert_eq!(stats.observed_matches, 2);

        // The observe rule is byte-for-byte the offline closest-point rule.
        let seg = rec.truth.segments[0];
        let mid = ds.network.segment_midpoint(seg);
        let closest = rec
            .cellular
            .points
            .iter()
            .min_by(|a, b| a.pos.distance(mid).total_cmp(&b.pos.distance(mid)))
            .expect("points");
        assert!(stats.counts.get(&(closest.tower.0, seg.0)).copied() >= Some(2));

        let before = reg.active().model.graph().co_count(closest.tower, seg);
        let v = reg.refresh("refresh-1").expect("refresh");
        assert_eq!(reg.refresh_count(), 1);
        // Stats drained; refresh is not auto-promoted.
        assert!(reg.stats().is_empty());
        assert_eq!(reg.active_version(), ModelVersion(1));
        let entry = reg.resolve(v.0).expect("candidate");
        assert_eq!(entry.manifest.parent, Some(ModelVersion(1)));
        assert_eq!(entry.manifest.label, "refresh-1");
        let after = entry.model.graph().co_count(closest.tower, seg);
        assert!(after >= before + 2.0, "co mass must grow: {before} -> {after}");
        // Same neural weights, new statistics: the candidate's fingerprint
        // must not collide with its parent's.
        assert_ne!(
            entry.manifest.fingerprint,
            reg.active().manifest.fingerprint
        );
        // The served version's graph is untouched.
        assert_eq!(
            reg.active().model.graph().co_count(closest.tower, seg),
            before
        );
    }

    #[test]
    fn refresh_stats_merge_is_commutative() {
        let mut a = RefreshStats::default();
        a.counts.insert((1, 2), 3);
        a.counts.insert((4, 5), 1);
        a.observed_matches = 2;
        let mut b = RefreshStats::default();
        b.counts.insert((1, 2), 1);
        b.counts.insert((9, 9), 7);
        b.observed_matches = 1;
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counts.get(&(1, 2)), Some(&4));
        assert_eq!(ab.observed_matches, 3);
    }

    #[test]
    fn manifest_roundtrip_and_fingerprint_pin() {
        let (_, reg) = registry();
        let mut variant = reg.active().model.clone();
        variant.config.k = 4;
        let v2 = reg.register(variant, "variant", Some(ModelVersion(1)));
        reg.promote(v2).expect("promote");

        let bytes = reg.manifest_bytes();
        let (active, manifests) =
            ModelRegistry::decode_manifest(&bytes).expect("roundtrip");
        assert_eq!(active, ModelVersion(2));
        assert_eq!(manifests, reg.manifests());
        // The fingerprint pins the persisted weights + co digest bit-exactly.
        let weights = reg.active().model.save_weights();
        let mut pinned = weights.clone();
        pinned.extend(reg.active().model.graph().co_digest_bytes());
        assert_eq!(
            manifests[1].fingerprint,
            lhmm_neural::persist::fingerprint64(&pinned)
        );
        assert_eq!(manifests[1].weight_bytes, weights.len() as u64);
    }

    #[test]
    fn corrupt_manifests_are_typed_errors() {
        let (_, reg) = registry();
        let bytes = reg.manifest_bytes();
        assert_eq!(
            ModelRegistry::decode_manifest(b"LH"),
            Err(RegistryError::Truncated)
        );
        assert_eq!(
            ModelRegistry::decode_manifest(b"XXXXXmore"),
            Err(RegistryError::BadMagic)
        );
        let mut wrong = bytes.clone();
        wrong[4] = 9;
        assert_eq!(
            ModelRegistry::decode_manifest(&wrong),
            Err(RegistryError::BadVersion(9))
        );
        let mut cut = bytes.clone();
        cut.truncate(bytes.len() - 2);
        assert_eq!(
            ModelRegistry::decode_manifest(&cut),
            Err(RegistryError::Truncated)
        );
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(
            ModelRegistry::decode_manifest(&long),
            Err(RegistryError::TrailingBytes)
        );
    }
}
