//! Parallel batch matching over a shared [`LhmmModel`].
//!
//! # Architecture
//!
//! [`BatchMatcher`] matches a slice of trajectories across `N` workers on
//! `std::thread::scope` — no runtime dependencies. The design has three
//! moving parts:
//!
//! * **Sharded shortest-path caches.** Each worker owns a private
//!   [`HmmEngine`] whose [`SpCache`] shard it alone mutates; there is no
//!   locking on the hot path. All shards additionally consult a shared
//!   read-only [`WarmLayer`] (an `Arc`) before running a Dijkstra search.
//!
//! * **Warm layer from candidate-pair statistics.** Before spawning, a
//!   warmup pass samples trajectories from the batch, prepares their
//!   candidate layers, and counts how often each `(segment end, segment
//!   start)` node pair connects consecutive layers. The most frequent
//!   pairs — the queries every worker is about to issue — are precomputed
//!   once with true shortest-path searches and published to all shards.
//!
//! * **Work stealing.** Workers draw trajectory indices from one shared
//!   `AtomicUsize` (`fetch_add`), so a worker stuck on a long trajectory
//!   never idles the others; there is no static partition to balance.
//!
//! # Determinism guarantee
//!
//! Output order is deterministic by construction: each worker records
//! `(input index, result)` and results are scattered back to their input
//! slot after the join, so `results[i]` always corresponds to `trajs[i]`
//! regardless of which worker matched it or in what order.
//!
//! Result *content* is also bit-identical to a serial
//! [`Lhmm`](crate::lhmm::Lhmm) loop, for a stronger reason than ordering:
//! cache state cannot change answers. A [`SpCache`] entry (private or warm)
//! only answers a query when the answer provably equals what a fresh
//! Dijkstra search bounded by the query's own bound would return, and the
//! [`DijkstraEngine`](lhmm_network::shortest_path::DijkstraEngine) resets
//! per query via epoch stamping. Matching is therefore a pure function of
//! `(model, trajectory)` — worker count, scheduling order, and cache
//! warm-up only affect speed. `tests/batch_equivalence.rs` verifies this
//! end to end for 1, 2 and 4 workers.

use crate::error::{Degradation, MatchError};
use crate::lhmm::LhmmModel;
use crate::types::{MatchContext, MatchResult, MatchStats};
use crate::viterbi::HmmEngine;
use lhmm_cellsim::traj::CellularTrajectory;
use lhmm_network::graph::NodeId;
use lhmm_network::sp_cache::{SpCache, WarmLayer};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

/// Batch-matching parameters.
#[derive(Clone, Debug)]
pub struct BatchConfig {
    /// Worker threads. `0` means one worker per available CPU.
    pub workers: usize,
    /// Capacity of each worker's private cache shard, in node pairs.
    pub cache_capacity: usize,
    /// Maximum node pairs precomputed into the shared warm layer;
    /// `0` disables the warmup pass entirely.
    pub warm_pairs: usize,
    /// How many trajectories (spread evenly across the batch) the warmup
    /// pass samples for candidate-pair statistics.
    pub warm_sample: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            workers: 0,
            cache_capacity: HmmEngine::DEFAULT_CACHE_CAPACITY,
            warm_pairs: 20_000,
            warm_sample: 8,
        }
    }
}

impl BatchConfig {
    /// A config with an explicit worker count and defaults elsewhere.
    pub fn with_workers(workers: usize) -> Self {
        BatchConfig {
            workers,
            ..Default::default()
        }
    }

    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// Telemetry for one worker thread.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerStats {
    /// Trajectories this worker matched.
    pub matched: usize,
    /// Trajectories whose result was degraded (any [`Degradation`] event,
    /// including typed failures mapped to empty results).
    pub degraded: usize,
    /// Aggregated per-trajectory engine telemetry.
    pub stats: MatchStats,
}

/// Telemetry for one batch run.
#[derive(Clone, Debug, Default)]
pub struct BatchStats {
    /// One entry per worker (cache shard), in worker order.
    pub per_worker: Vec<WorkerStats>,
    /// Node pairs published to the shared warm layer.
    pub warm_entries: usize,
    /// Wall-clock seconds spent in the warmup pass.
    pub warm_time_s: f64,
}

impl BatchStats {
    /// All workers' telemetry merged.
    pub fn total(&self) -> MatchStats {
        let mut total = MatchStats::default();
        for w in &self.per_worker {
            total.merge(&w.stats);
        }
        total
    }
}

/// Matches trajectory batches in parallel against one trained model.
pub struct BatchMatcher<'a> {
    model: &'a LhmmModel,
    config: BatchConfig,
}

impl<'a> BatchMatcher<'a> {
    /// Creates a batch matcher over `model`.
    pub fn new(model: &'a LhmmModel, config: BatchConfig) -> Self {
        BatchMatcher { model, config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BatchConfig {
        &self.config
    }

    /// Matches every trajectory in `trajs`. `results[i]` corresponds to
    /// `trajs[i]`; content is identical to matching serially (see module
    /// docs for the determinism argument).
    ///
    /// Infallible wrapper around [`BatchMatcher::try_match_batch`]:
    /// unmatchable trajectories yield [`MatchResult::empty`], with the
    /// failure visible in the worker stats (`degraded` counter and
    /// `degradation.failed_matches`).
    pub fn match_batch(
        &self,
        ctx: &MatchContext<'_>,
        trajs: &[CellularTrajectory],
    ) -> (Vec<MatchResult>, BatchStats) {
        let (results, stats) = self.try_match_batch(ctx, trajs);
        let results = results
            .into_iter()
            .map(|r| r.unwrap_or_else(|_| MatchResult::empty()))
            .collect();
        (results, stats)
    }

    /// [`BatchMatcher::match_batch`] with per-trajectory error reporting:
    /// `results[i]` is `Err` when trajectory `i` was unmatchable (empty, or
    /// entirely outside network coverage), with the same determinism
    /// guarantees — a trajectory's verdict does not depend on worker count
    /// or scheduling.
    pub fn try_match_batch(
        &self,
        ctx: &MatchContext<'_>,
        trajs: &[CellularTrajectory],
    ) -> (Vec<Result<MatchResult, MatchError>>, BatchStats) {
        let mut stats = BatchStats::default();
        if trajs.is_empty() {
            return (Vec::new(), stats);
        }
        let workers = self.config.effective_workers().min(trajs.len());

        let warm_start = crate::timing::StageTimer::start();
        let warm = Arc::new(self.build_warm_layer(ctx, trajs));
        stats.warm_entries = warm.len();
        stats.warm_time_s = warm_start.elapsed_s();

        let next = AtomicUsize::new(0);
        let model = self.model;
        let engine_cfg = self.model.engine_config();
        let cache_capacity = self.config.cache_capacity;

        let mut worker_outputs: Vec<WorkerOutput> =
            thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let warm = Arc::clone(&warm);
                        let next = &next;
                        let engine_cfg = engine_cfg.clone();
                        s.spawn(move || {
                            let cache = SpCache::with_warm_layer_backend(
                                ctx.net,
                                cache_capacity,
                                warm,
                                &engine_cfg.sp,
                            );
                            let mut engine =
                                HmmEngine::with_cache(ctx.net, engine_cfg, cache);
                            let mut out = Vec::new();
                            let mut wstats = WorkerStats::default();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= trajs.len() {
                                    break;
                                }
                                let result = model
                                    .try_match_with_engine_stats(ctx, &trajs[i], &mut engine);
                                wstats.matched += 1;
                                let result = match result {
                                    Ok((r, mstats)) => {
                                        if mstats.degraded() {
                                            wstats.degraded += 1;
                                        }
                                        wstats.stats.merge(&mstats);
                                        Ok(r)
                                    }
                                    Err(e) => {
                                        wstats.degraded += 1;
                                        wstats.stats.degradation.merge(&Degradation {
                                            failed_matches: 1,
                                            ..Degradation::default()
                                        });
                                        Err(e)
                                    }
                                };
                                out.push((i, result));
                            }
                            (out, wstats)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    // Re-raise a worker panic on the caller thread with the
                    // original payload (a panicking test/assert inside a
                    // worker must not be swallowed or rewrapped).
                    .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                    .collect()
            });

        // Deterministic scatter: every result lands at its input index.
        let mut results: Vec<Option<Result<MatchResult, MatchError>>> =
            (0..trajs.len()).map(|_| None).collect();
        for (out, wstats) in worker_outputs.drain(..) {
            stats.per_worker.push(wstats);
            for (i, r) in out {
                debug_assert!(results[i].is_none(), "index {i} matched twice");
                results[i] = Some(r);
            }
        }
        let results = results
            .into_iter()
            .enumerate()
            .map(|(i, r)| match r {
                Some(r) => r,
                // The work-stealing counter hands out every index in
                // 0..len exactly once, so an unclaimed slot is impossible.
                None => unreachable!("index {i} never claimed"),
            })
            .collect();
        (results, stats)
    }

    /// Samples trajectories, counts consecutive candidate node pairs, and
    /// precomputes routes for the most frequent ones.
    ///
    /// Pairs are keyed `(prev segment's end node, next segment's start
    /// node)` — exactly the inner query [`SpCache`] memoizes for
    /// projection-to-projection routes. Searches run unbounded
    /// ([`WarmLayer::precompute_conclusive`]), so every warm entry is
    /// conclusive (and equal to what a fresh search would return) for all
    /// later bounds, under either shortest-path backend.
    fn build_warm_layer(
        &self,
        ctx: &MatchContext<'_>,
        trajs: &[CellularTrajectory],
    ) -> WarmLayer {
        if self.config.warm_pairs == 0 || self.config.warm_sample == 0 {
            return WarmLayer::new();
        }
        let step = trajs.len().div_ceil(self.config.warm_sample).max(1);
        let mut counts: HashMap<(NodeId, NodeId), u64> = HashMap::new();
        for traj in trajs.iter().step_by(step) {
            if traj.is_empty() {
                continue;
            }
            let towers = traj.towers();
            let mut scorer = self
                .model
                .obs_scorer_with(&towers, lhmm_neural::Scratch::new());
            // Warmup only mines pair statistics; its degradation events are
            // not part of any match result.
            let mut warm_deg = Degradation::default();
            let (_, layers) = self
                .model
                .prepare_candidates(ctx, traj, &mut scorer, &mut warm_deg);
            for pair in layers.windows(2) {
                for prev in &pair[0] {
                    let from = ctx.net.segment(prev.seg).to;
                    for cur in &pair[1] {
                        if cur.seg == prev.seg {
                            continue;
                        }
                        let to = ctx.net.segment(cur.seg).from;
                        *counts.entry((from, to)).or_insert(0) += 1;
                    }
                }
            }
        }
        let mut ranked: Vec<((NodeId, NodeId), u64)> = counts.into_iter().collect();
        // Ties broken by node ids so the warm set is deterministic.
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(self.config.warm_pairs);
        WarmLayer::precompute_conclusive(
            ctx.net,
            ranked.into_iter().map(|(p, _)| p),
            self.model.sp_handle(),
        )
    }
}

/// One worker's output: `(input index, verdict)` pairs plus telemetry.
type WorkerOutput = (
    Vec<(usize, Result<MatchResult, MatchError>)>,
    WorkerStats,
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lhmm::{Lhmm, LhmmConfig};
    use crate::types::MapMatcher;
    use lhmm_cellsim::dataset::{Dataset, DatasetConfig};

    fn cheap_config(seed: u64) -> LhmmConfig {
        // Ablated learners make training fast; the engine paths exercised
        // by batching are identical.
        let mut cfg = LhmmConfig::fast_test(seed);
        cfg.use_learned_obs = false;
        cfg.use_learned_trans = false;
        cfg
    }

    #[test]
    fn batch_results_align_with_inputs_and_serial() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(81));
        let mut serial = Lhmm::train(&ds, cheap_config(81));
        let ctx = MatchContext {
            net: &ds.network,
            index: &ds.index,
            towers: &ds.towers,
        };
        let trajs: Vec<_> = ds.test.iter().map(|r| r.cellular.clone()).collect();
        let batch = BatchMatcher::new(serial.model(), BatchConfig::with_workers(2));
        let (results, stats) = batch.match_batch(&ctx, &trajs);
        assert_eq!(results.len(), trajs.len());
        assert_eq!(stats.per_worker.iter().map(|w| w.matched).sum::<usize>(), trajs.len());
        for (r, traj) in results.iter().zip(&trajs) {
            let s = serial.match_trajectory(&ctx, traj);
            assert_eq!(r.path.segments, s.path.segments);
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(82));
        let model = LhmmModel::train(&ds, cheap_config(82));
        let ctx = MatchContext {
            net: &ds.network,
            index: &ds.index,
            towers: &ds.towers,
        };
        let batch = BatchMatcher::new(&model, BatchConfig::default());
        let (results, stats) = batch.match_batch(&ctx, &[]);
        assert!(results.is_empty());
        assert!(stats.per_worker.is_empty());
    }

    #[test]
    fn warm_layer_is_used() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(83));
        let model = LhmmModel::train(&ds, cheap_config(83));
        let ctx = MatchContext {
            net: &ds.network,
            index: &ds.index,
            towers: &ds.towers,
        };
        let trajs: Vec<_> = ds.test.iter().map(|r| r.cellular.clone()).collect();
        let batch = BatchMatcher::new(&model, BatchConfig::with_workers(1));
        let (_, stats) = batch.match_batch(&ctx, &trajs);
        assert!(stats.warm_entries > 0, "warmup produced no entries");
        assert!(
            stats.total().cache_warm_hits > 0,
            "warm layer never answered: {:?}",
            stats.total()
        );
    }

    #[test]
    fn warmup_can_be_disabled() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(84));
        let model = LhmmModel::train(&ds, cheap_config(84));
        let ctx = MatchContext {
            net: &ds.network,
            index: &ds.index,
            towers: &ds.towers,
        };
        let trajs: Vec<_> = ds.test.iter().take(3).map(|r| r.cellular.clone()).collect();
        let cfg = BatchConfig {
            warm_pairs: 0,
            workers: 2,
            ..Default::default()
        };
        let (results, stats) = BatchMatcher::new(&model, cfg).match_batch(&ctx, &trajs);
        assert_eq!(results.len(), 3);
        assert_eq!(stats.warm_entries, 0);
        assert_eq!(stats.total().cache_warm_hits, 0);
    }

    #[test]
    fn model_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LhmmModel>();
        assert_send_sync::<WarmLayer>();
    }
}
