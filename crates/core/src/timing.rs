//! The inference zone's single audited wall-clock access point.
//!
//! Matching must be a pure function of `(model, trajectory)`; `lhmm-lint`
//! therefore bans `Instant::now`/`SystemTime::now` across the inference
//! crates (rule `nondeterminism`) — except in this module. Stage timers
//! exist only to fill [`MatchStats`](crate::types::MatchStats) telemetry;
//! their readings never feed a score, a tie-break, or any other
//! result-affecting value. Keeping every clock read behind this one type
//! makes that auditable: a new wall-clock use anywhere else in the
//! inference zone fails CI.

use std::time::Instant;

/// A started stage timer. Copy-cheap; read it with
/// [`StageTimer::elapsed_s`].
#[derive(Clone, Copy, Debug)]
pub struct StageTimer(Instant);

impl StageTimer {
    /// Starts timing a stage.
    #[inline]
    pub fn start() -> Self {
        StageTimer(Instant::now())
    }

    /// Seconds elapsed since [`StageTimer::start`].
    #[inline]
    pub fn elapsed_s(self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic_nonnegative() {
        let t = StageTimer::start();
        let a = t.elapsed_s();
        let b = t.elapsed_s();
        assert!(a >= 0.0);
        assert!(b >= a);
    }
}
