//! The learned transition probability `P_T` (paper §IV-D, Eq. 9–12).
//!
//! For a moving path (the shortest route between two candidates), the
//! learner first scores every road on the route for *belonging to the
//! trajectory*:
//! 1. **Road-conditioned trajectory representation** (Eq. 9): attention
//!    with the road as query over the trajectory's tower embeddings —
//!    points that interact with the road dominate the summary.
//! 2. **Road relevance** (Eq. 10): an MLP over `[road ⊕ summary]` yields
//!    `P(e_l | X)`.
//! 3. **Route relevance** (Eq. 11): the mean of `P(e_l | X)` over the
//!    route's segments flags fine-grained detours.
//! 4. **Fusion** (Eq. 12): a second MLP combines route relevance with the
//!    explicit features — length deviation and turn count — into `P_T`.
//!
//! Training mirrors the paper: stage 1 classifies roads on/off the traveled
//! path; stage 2 fine-tunes the fusion MLP to predict the fraction of a
//! sampled moving path that is actually traveled.

use lhmm_cellsim::tower::TowerId;
use lhmm_cellsim::traj::TrajectoryRecord;
use lhmm_graph::encoder::Embeddings;
use lhmm_network::graph::{RoadNetwork, SegmentId};
use lhmm_network::path::total_turn_of;
use lhmm_network::sp_cache::SpCache;
use lhmm_network::spatial::SpatialIndex;
use lhmm_neural::layers::{Activation, AdditiveAttention, Mlp};
use lhmm_neural::loss::bce_with_logits;
use lhmm_neural::optim::{clip_grad_norm, Adam};
use lhmm_neural::tape::{ParamStore, Tape};
use lhmm_neural::{Matrix, Scratch};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

use crate::observation::{tower_rows, ScorerStats};

/// Transition-learner hyperparameters.
#[derive(Clone, Debug)]
pub struct TransConfig {
    /// Relevance-stage training steps.
    pub epochs: usize,
    /// Fusion-stage training steps.
    pub fuse_epochs: usize,
    /// Trajectories sampled per step.
    pub batch_trajs: usize,
    /// Negative roads per positive in stage 1.
    pub neg_per_pos: usize,
    /// Sampling radius for negative roads, meters.
    pub radius: f64,
    /// Hidden width of both MLPs.
    pub hidden: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TransConfig {
    fn default() -> Self {
        TransConfig {
            epochs: 120,
            fuse_epochs: 60,
            batch_trajs: 8,
            neg_per_pos: 2,
            radius: 2_500.0,
            hidden: 64,
            lr: 2e-3,
            seed: 0,
        }
    }
}

/// Number of explicit features in `D_T` (length deviation, turn count,
/// time-progress ratio).
const N_EXPLICIT: usize = 3;

/// The trained transition probability model.
#[derive(Clone)]
pub struct TransitionLearner {
    rel_store: ParamStore,
    fuse_store: ParamStore,
    attention: AdditiveAttention,
    relevance_mlp: Mlp,
    fuse_mlp: Mlp,
    dim: usize,
}

impl TransitionLearner {
    /// Embedding width the learner was built for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Serializes the learner's weights into the encoder.
    pub fn export_weights(&self, enc: &mut lhmm_neural::persist::Encoder) {
        enc.param_store(&self.rel_store);
        enc.param_store(&self.fuse_store);
    }

    /// Loads weights previously written by [`Self::export_weights`] into a
    /// structurally identical learner.
    pub fn import_weights(
        &mut self,
        dec: &mut lhmm_neural::persist::Decoder<'_>,
    ) -> Result<(), lhmm_neural::persist::DecodeError> {
        dec.param_store_into(&mut self.rel_store)?;
        dec.param_store_into(&mut self.fuse_store)
    }

    /// Trains the learner on the training split.
    pub fn train(
        net: &RoadNetwork,
        index: &SpatialIndex,
        emb: &Embeddings,
        records: &[TrajectoryRecord],
        cfg: &TransConfig,
    ) -> Self {
        let dim = emb.dim;
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0x7A5));
        let mut rel_store = ParamStore::new();
        let attention = AdditiveAttention::new(&mut rel_store, dim, dim, &mut rng);
        let relevance_mlp = Mlp::new(
            &mut rel_store,
            &[2 * dim, cfg.hidden, 1],
            Activation::Relu,
            &mut rng,
        );
        let mut fuse_store = ParamStore::new();
        let fuse_mlp = Mlp::new(
            &mut fuse_store,
            &[1 + N_EXPLICIT, (cfg.hidden / 2).max(4), 1],
            Activation::Relu,
            &mut rng,
        );

        let mut learner = TransitionLearner {
            rel_store,
            fuse_store,
            attention,
            relevance_mlp,
            fuse_mlp,
            dim,
        };

        // ---------------- Stage 1: road-in-trajectory classifier -------
        let mut opt = Adam::new(cfg.lr, 1e-4);
        for _ in 0..cfg.epochs {
            let mut tape = Tape::new();
            let mut logits_var = None;
            let mut targets: Vec<f32> = Vec::new();
            for _ in 0..cfg.batch_trajs {
                let rec = &records[rng.gen_range(0..records.len())];
                if rec.cellular.is_empty() || rec.truth.is_empty() {
                    continue;
                }
                let (segs, labels) = sample_relevance_roads(net, index, rec, cfg, &mut rng);
                if segs.is_empty() {
                    continue;
                }
                let towers = rec.cellular.towers();
                let keys_m = tower_rows(emb, &towers);
                let keys = tape.constant(keys_m);
                // One attention per sampled road (the road is the query).
                for (&seg, &label) in segs.iter().zip(&labels) {
                    let q = tape.constant(Matrix::row_vector(emb.segment(seg).to_vec()));
                    let (summary, _) = learner.attention.forward(
                        &mut tape,
                        &learner.rel_store,
                        q,
                        keys,
                        keys,
                    );
                    let seg_row =
                        tape.constant(Matrix::row_vector(emb.segment(seg).to_vec()));
                    let cat = tape.concat_cols(seg_row, summary);
                    let logit =
                        learner
                            .relevance_mlp
                            .forward(&mut tape, &learner.rel_store, cat);
                    logits_var = Some(match logits_var {
                        None => logit,
                        Some(acc) => tape.concat_rows(acc, logit),
                    });
                    targets.push(label);
                }
            }
            let Some(lv) = logits_var else { continue };
            let target_m = Matrix::col_vector(targets);
            let (_, grad) = bce_with_logits(tape.value(lv), &target_m, 0.1);
            let grads = tape.backward(lv, grad);
            let mut pg = tape.param_grads(&grads);
            clip_grad_norm(&mut pg, 5.0);
            opt.step(&mut learner.rel_store, &pg);
        }

        // ---------------- Stage 2: fusion fine-tuning ------------------
        // Predict the traveled fraction of sampled moving paths.
        let mut sp = SpCache::new(net, 100_000);
        let mut fuse_opt = Adam::new(cfg.lr, 1e-4);
        for _ in 0..cfg.fuse_epochs {
            let mut inputs: Vec<f32> = Vec::new();
            let mut targets: Vec<f32> = Vec::new();
            let mut rows = 0usize;
            for _ in 0..cfg.batch_trajs {
                let rec = &records[rng.gen_range(0..records.len())];
                if rec.cellular.len() < 2 || rec.truth.is_empty() {
                    continue;
                }
                let i = rng.gen_range(1..rec.cellular.len());
                let a_pos = rec.cellular.points[i - 1].effective_pos();
                let b_pos = rec.cellular.points[i].effective_pos();
                // Sample a candidate pair near the two points.
                let near_a = index.k_nearest(net, a_pos, 8, cfg.radius);
                let near_b = index.k_nearest(net, b_pos, 8, cfg.radius);
                if near_a.is_empty() || near_b.is_empty() {
                    continue;
                }
                let (sa, _) = near_a[rng.gen_range(0..near_a.len())];
                let (sb, _) = near_b[rng.gen_range(0..near_b.len())];
                let ta = net.project(a_pos, sa).t;
                let tb = net.project(b_pos, sb).t;
                let bound = a_pos.distance(b_pos) * 4.0 + 3_000.0;
                let Some(route) = sp.route_between_projections(net, sa, ta, sb, tb, bound)
                else {
                    continue;
                };
                if route.segments.is_empty() {
                    continue;
                }
                let truth = rec.truth.segment_set();
                let purity = route
                    .segments
                    .iter()
                    .filter(|s| truth.contains(s))
                    .count() as f32
                    / route.segments.len() as f32;
                // Purity alone rewards degenerate near-zero routes (staying
                // on one traveled road scores 1.0 even though the user
                // moved). Scale by how much of the *actual* movement the
                // route covers so the learner is taught that transitions
                // must make progress.
                let true_moved =
                    rec.true_positions[i - 1].distance(rec.true_positions[i]);
                let coverage = (route.length / true_moved.max(50.0)).min(1.0) as f32;
                let traveled_frac = purity * coverage;
                let mut scorer = TrajTransScorer::new(&learner, emb, &rec.cellular.towers());
                let relevance = scorer.route_relevance(&route.segments);
                let d_straight = a_pos.distance(b_pos);
                let dt = rec.cellular.points[i].t - rec.cellular.points[i - 1].t;
                let feats =
                    explicit_features(net, d_straight, dt, route.length, &route.segments);
                inputs.push(relevance);
                inputs.extend_from_slice(&feats);
                targets.push(traveled_frac);
                rows += 1;
            }
            if rows == 0 {
                continue;
            }
            let mut tape = Tape::new();
            let x = tape.constant(Matrix::from_vec(rows, 1 + N_EXPLICIT, inputs));
            let logit = learner.fuse_mlp.forward(&mut tape, &learner.fuse_store, x);
            let target_m = Matrix::col_vector(targets);
            let (_, grad) = bce_with_logits(tape.value(logit), &target_m, 0.1);
            let grads = tape.backward(logit, grad);
            let mut pg = tape.param_grads(&grads);
            clip_grad_norm(&mut pg, 5.0);
            fuse_opt.step(&mut learner.fuse_store, &pg);
        }

        learner
    }
}

/// The explicit transition features `D_T`: relative length deviation, route
/// turn count, and the time-progress ratio (all squashed to a small range).
///
/// The progress ratio compares the route length with the movement the
/// elapsed time implies at typical urban speed. It is what lets the learner
/// reject stand-still transitions between *identical* consecutive tower
/// observations — the positions alone say "no movement" while the clock
/// says the vehicle traveled hundreds of meters.
pub fn explicit_features(
    net: &RoadNetwork,
    d_straight: f64,
    dt: f64,
    route_len: f64,
    route_segs: &[SegmentId],
) -> [f32; N_EXPLICIT] {
    let dev = ((d_straight - route_len).abs() / d_straight.max(100.0)) as f32;
    let turn = total_turn_of(net, route_segs) as f32;
    /// Typical urban travel speed used to convert elapsed time into an
    /// expected movement, m/s.
    const TYPICAL_SPEED: f64 = 10.0;
    let expected = (dt.max(1.0) * TYPICAL_SPEED).max(50.0);
    let progress = (route_len / expected) as f32;
    [
        dev.min(10.0),
        (turn / std::f32::consts::PI).min(10.0),
        progress.min(4.0),
    ]
}

/// Per-trajectory transition scorer with a road-relevance cache; create one
/// per matched trajectory.
///
/// Two bit-identical scoring modes exist: the scalar reference path
/// (per-road query allocation + naive matmuls) and the vectorized fast path
/// (batched query projection + scratch-arena buffers, no steady-state heap
/// allocation). Equivalence is pinned by
/// `fast_path_is_bitwise_identical_to_scalar` below and by the repo-level
/// `tests/scoring_equivalence.rs` corpus test.
pub struct TrajTransScorer<'a> {
    learner: &'a TransitionLearner,
    emb: &'a Embeddings,
    keys: Matrix,
    /// `keys × W_k`, precomputed once: road-relevance attention runs for
    /// hundreds of distinct roads against the same trajectory. In fast mode
    /// the rows are additionally tanh-applied (the memoized key half of
    /// [`AdditiveAttention::attend_tanh`]); in scalar mode they stay raw
    /// for `infer_projected`.
    projected_keys: Matrix,
    /// Fast mode only: the tanh'd key half transposed to `p×n` once per
    /// trajectory, feeding the SIMD-vectorizable score loop of
    /// [`AdditiveAttention::attend_tanh_t`] (bit-identical to attending
    /// over `projected_keys`). Empty `0×0` in scalar mode.
    projected_keys_t: Matrix,
    cache: HashMap<SegmentId, f32>,
    scratch: Scratch,
    scalar: bool,
    stats: ScorerStats,
    /// Reused between `route_relevance` calls for the missing-road set.
    missing_buf: Vec<SegmentId>,
}

impl<'a> TrajTransScorer<'a> {
    /// Prepares the scorer for one trajectory (tower id sequence) with a
    /// fresh scratch arena and the fast scoring path.
    pub fn new(
        learner: &'a TransitionLearner,
        emb: &'a Embeddings,
        towers: &[TowerId],
    ) -> Self {
        Self::with_scratch(learner, emb, towers, Scratch::new(), false)
    }

    /// [`Self::new`] reusing a caller-owned scratch arena (returned by
    /// [`Self::finish`]); `scalar` selects the reference scoring path.
    pub fn with_scratch(
        learner: &'a TransitionLearner,
        emb: &'a Embeddings,
        towers: &[TowerId],
        mut scratch: Scratch,
        scalar: bool,
    ) -> Self {
        let n = towers.len();
        let mut keys = scratch.take(n, learner.dim);
        for (r, &t) in towers.iter().enumerate() {
            keys.row_mut(r).copy_from_slice(emb.tower(t));
        }
        let mut projected_keys = scratch.take(n, learner.attention.proj_dim());
        learner
            .attention
            .project_keys_into(&learner.rel_store, &keys, &mut projected_keys);
        let projected_keys_t = if scalar {
            Matrix::zeros(0, 0)
        } else {
            for v in projected_keys.data_mut() {
                *v = v.tanh();
            }
            let mut t = scratch.take(learner.attention.proj_dim(), n);
            projected_keys.transpose_into(&mut t);
            t
        };
        TrajTransScorer {
            learner,
            emb,
            keys,
            projected_keys,
            projected_keys_t,
            // Pre-reserve so cache growth during one trajectory's Viterbi
            // pass rarely reallocates.
            cache: HashMap::with_capacity(512),
            scratch,
            scalar,
            stats: ScorerStats::default(),
            missing_buf: Vec::new(),
        }
    }

    /// `P(e_l | X)` (Eq. 10) with caching.
    pub fn road_relevance(&mut self, seg: SegmentId) -> f32 {
        if let Some(&v) = self.cache.get(&seg) {
            return v;
        }
        self.compute_batch(&[seg]);
        self.cache[&seg]
    }

    /// Mean relevance over a route (Eq. 11); computes missing roads in one
    /// batch.
    pub fn route_relevance(&mut self, segs: &[SegmentId]) -> f32 {
        if segs.is_empty() {
            return 0.0;
        }
        let mut missing = std::mem::take(&mut self.missing_buf);
        missing.clear();
        missing.extend(segs.iter().copied().filter(|s| !self.cache.contains_key(s)));
        missing.sort_unstable();
        missing.dedup();
        if !missing.is_empty() {
            self.compute_batch(&missing);
        }
        self.missing_buf = missing;
        segs.iter().map(|s| self.cache[s]).sum::<f32>() / segs.len() as f32
    }

    fn compute_batch(&mut self, segs: &[SegmentId]) {
        let n = segs.len();
        let dim = self.learner.dim;
        self.stats.rows += n as u64;
        if self.scalar {
            // Reference path: per-road attention summary via the naive
            // kernels, batched MLP pass.
            let mut cat = Matrix::zeros(n, 2 * dim);
            for (r, &seg) in segs.iter().enumerate() {
                let q = Matrix::row_vector(self.emb.segment(seg).to_vec());
                let summary = self.learner.attention.infer_projected(
                    &self.learner.rel_store,
                    &q,
                    &self.projected_keys,
                    &self.keys,
                );
                cat.row_mut(r)[..dim].copy_from_slice(self.emb.segment(seg));
                cat.row_mut(r)[dim..].copy_from_slice(summary.row(0));
            }
            let logits = self
                .learner
                .relevance_mlp
                .infer(&self.learner.rel_store, &cat);
            for (&seg, &logit) in segs.iter().zip(logits.data()) {
                self.cache.insert(seg, 1.0 / (1.0 + (-logit).exp()));
            }
            return;
        }
        // Fast path (Eq. 9): project every road query in one batched
        // matmul, memoize the tanh halves, then attend per row into the
        // concat buffer directly.
        let mut queries = self.scratch.take(n, dim);
        for (r, &seg) in segs.iter().enumerate() {
            queries.row_mut(r).copy_from_slice(self.emb.segment(seg));
        }
        let mut qproj = self
            .scratch
            .take(n, self.learner.attention.proj_dim());
        self.learner.attention.project_queries_into(
            &self.learner.rel_store,
            &queries,
            &mut qproj,
        );
        for v in qproj.data_mut() {
            *v = v.tanh();
        }
        let mut cat = self.scratch.take(n, 2 * dim);
        for r in 0..n {
            let row = cat.row_mut(r);
            row[..dim].copy_from_slice(queries.row(r));
        }
        for r in 0..n {
            self.learner.attention.attend_tanh_t(
                &self.learner.rel_store,
                qproj.row(r),
                &self.projected_keys_t,
                &self.keys,
                &mut self.scratch,
                &mut cat.row_mut(r)[dim..],
            );
        }
        let logits = self.learner.relevance_mlp.infer_with(
            &self.learner.rel_store,
            &cat,
            &mut self.scratch,
        );
        for (&seg, &logit) in segs.iter().zip(logits.data()) {
            self.cache.insert(seg, 1.0 / (1.0 + (-logit).exp()));
        }
        self.scratch.give(logits);
        self.scratch.give(cat);
        self.scratch.give(qproj);
        self.scratch.give(queries);
    }

    /// Final learned `P_T` (Eq. 12) for one moving path.
    pub fn transition_prob(
        &mut self,
        net: &RoadNetwork,
        d_straight: f64,
        dt: f64,
        route_len: f64,
        route_segs: &[SegmentId],
    ) -> f32 {
        let t0 = crate::timing::StageTimer::start();
        let relevance = self.route_relevance(route_segs);
        let feats = explicit_features(net, d_straight, dt, route_len, route_segs);
        let p = if self.scalar {
            let mut x = Matrix::zeros(1, 1 + N_EXPLICIT);
            x.row_mut(0)[0] = relevance;
            x.row_mut(0)[1..].copy_from_slice(&feats);
            let logit = self.learner.fuse_mlp.infer(&self.learner.fuse_store, &x);
            1.0 / (1.0 + (-logit.data()[0]).exp())
        } else {
            let mut x = self.scratch.take(1, 1 + N_EXPLICIT);
            x.row_mut(0)[0] = relevance;
            x.row_mut(0)[1..].copy_from_slice(&feats);
            let logit = self.learner.fuse_mlp.infer_with(
                &self.learner.fuse_store,
                &x,
                &mut self.scratch,
            );
            let p = 1.0 / (1.0 + (-logit.data()[0]).exp());
            self.scratch.give(logit);
            self.scratch.give(x);
            p
        };
        self.stats.calls += 1;
        self.stats.time_s += t0.elapsed_s();
        p
    }

    /// Cumulative scoring statistics (`rows` counts roads scored through
    /// Eq. 10 batches; `calls`/`time_s` cover [`Self::transition_prob`]).
    pub fn stats(&self) -> ScorerStats {
        self.stats
    }

    /// `(fresh_allocs, high_water_bytes)` of the scratch arena.
    pub fn scratch_stats(&self) -> (u64, u64) {
        (self.scratch.fresh_allocs(), self.scratch.high_water_bytes())
    }

    /// Tears the scorer down, returning its scratch arena (with the key
    /// matrices back in the pool) and the accumulated statistics.
    pub fn finish(mut self) -> (Scratch, ScorerStats) {
        let keys = std::mem::replace(&mut self.keys, Matrix::zeros(0, 0));
        let pk = std::mem::replace(&mut self.projected_keys, Matrix::zeros(0, 0));
        self.scratch.give(keys);
        self.scratch.give(pk);
        if !self.scalar {
            // The transposed half only exists in fast mode; giving the
            // scalar-mode 0×0 placeholder back would grow the pool with
            // useless empty buffers across trajectories.
            let pkt = std::mem::replace(&mut self.projected_keys_t, Matrix::zeros(0, 0));
            self.scratch.give(pkt);
        }
        (self.scratch, self.stats)
    }
}

/// Positive roads (on the traveled path) and undersampled negative roads
/// (near the trajectory but untraveled) for stage-1 training.
fn sample_relevance_roads(
    net: &RoadNetwork,
    index: &SpatialIndex,
    rec: &TrajectoryRecord,
    cfg: &TransConfig,
    rng: &mut StdRng,
) -> (Vec<SegmentId>, Vec<f32>) {
    let truth = rec.truth.segment_set();
    let mut segs = Vec::new();
    let mut labels = Vec::new();
    // Two positives per trajectory sample.
    for _ in 0..2 {
        let p = rec.truth.segments[rng.gen_range(0..rec.truth.len())];
        segs.push(p);
        labels.push(1.0);
    }
    // Negatives near a random trajectory point.
    let pt = &rec.cellular.points[rng.gen_range(0..rec.cellular.len())];
    let mut negs: Vec<SegmentId> = index
        .segments_within(net, pt.effective_pos(), cfg.radius)
        .into_iter()
        .map(|(s, _)| s)
        .filter(|s| !truth.contains(s))
        .collect();
    negs.shuffle(rng);
    for &s in negs.iter().take(2 * cfg.neg_per_pos) {
        segs.push(s);
        labels.push(0.0);
    }
    (segs, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhmm_cellsim::dataset::{Dataset, DatasetConfig};
    use lhmm_graph::encoder::{train_encoder, EncoderConfig, EncoderKind};
    use lhmm_graph::relgraph::MultiRelGraph;

    fn quick_setup() -> (Dataset, Embeddings) {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(51));
        let graph = MultiRelGraph::build(&ds.network, ds.towers.len(), &ds.train);
        let emb = train_encoder(
            &graph,
            &EncoderConfig {
                dim: 16,
                epochs: 60,
                batch_edges: 256,
                kind: EncoderKind::Heterogeneous,
                ..Default::default()
            },
        );
        (ds, emb)
    }

    fn quick_cfg() -> TransConfig {
        TransConfig {
            epochs: 50,
            fuse_epochs: 25,
            batch_trajs: 6,
            ..Default::default()
        }
    }

    #[test]
    fn relevance_separates_traveled_roads() {
        let (ds, emb) = quick_setup();
        let learner = TransitionLearner::train(
            &ds.network,
            &ds.index,
            &emb,
            &ds.train,
            &quick_cfg(),
        );
        let mut on_scores = Vec::new();
        let mut off_scores = Vec::new();
        for rec in ds.test.iter().take(8) {
            let truth = rec.truth.segment_set();
            let mut scorer = TrajTransScorer::new(&learner, &emb, &rec.cellular.towers());
            for &seg in rec.truth.segments.iter().take(10) {
                on_scores.push(scorer.road_relevance(seg));
            }
            // Roads near the trajectory but not traveled.
            let pos = rec.cellular.points[0].effective_pos();
            for (seg, _) in ds
                .index
                .segments_within(&ds.network, pos, 2_000.0)
                .into_iter()
                .filter(|(s, _)| !truth.contains(s))
                .take(10)
            {
                off_scores.push(scorer.road_relevance(seg));
            }
        }
        let on: f32 = on_scores.iter().sum::<f32>() / on_scores.len() as f32;
        let off: f32 = off_scores.iter().sum::<f32>() / off_scores.len() as f32;
        assert!(on > off, "traveled {on} vs untraveled {off}");
    }

    #[test]
    fn transition_prob_is_a_probability_and_cached() {
        let (ds, emb) = quick_setup();
        let learner = TransitionLearner::train(
            &ds.network,
            &ds.index,
            &emb,
            &ds.train,
            &TransConfig {
                epochs: 10,
                fuse_epochs: 10,
                ..quick_cfg()
            },
        );
        let rec = &ds.test[0];
        let mut scorer = TrajTransScorer::new(&learner, &emb, &rec.cellular.towers());
        let segs: Vec<SegmentId> = rec.truth.segments.iter().take(5).copied().collect();
        let p1 = scorer.transition_prob(&ds.network, 500.0, 60.0, 600.0, &segs);
        assert!((0.0..=1.0).contains(&p1));
        // Cached relevance: same call is deterministic.
        let p2 = scorer.transition_prob(&ds.network, 500.0, 60.0, 600.0, &segs);
        assert_eq!(p1, p2);
        // Empty route: still a valid probability.
        let p3 = scorer.transition_prob(&ds.network, 500.0, 60.0, 600.0, &[]);
        assert!((0.0..=1.0).contains(&p3));
    }

    #[test]
    fn fast_path_is_bitwise_identical_to_scalar() {
        let (ds, emb) = quick_setup();
        let learner = TransitionLearner::train(
            &ds.network,
            &ds.index,
            &emb,
            &ds.train,
            &quick_cfg(),
        );
        for rec in ds.test.iter().take(4) {
            let towers = rec.cellular.towers();
            let mut scalar = TrajTransScorer::with_scratch(
                &learner,
                &emb,
                &towers,
                Scratch::new(),
                true,
            );
            let mut fast = TrajTransScorer::with_scratch(
                &learner,
                &emb,
                &towers,
                Scratch::new(),
                false,
            );
            // Individual road relevances (exercises singleton batches).
            for &seg in rec.truth.segments.iter().take(6) {
                assert_eq!(
                    scalar.road_relevance(seg).to_bits(),
                    fast.road_relevance(seg).to_bits(),
                    "road relevance diverged on {seg:?}"
                );
            }
            // Full transition probabilities over route prefixes (exercises
            // multi-road batches, the cache, and the fused fuse-MLP pass).
            for end in [2usize, 5, rec.truth.len().min(12)] {
                let segs: Vec<SegmentId> =
                    rec.truth.segments.iter().take(end).copied().collect();
                let a = scalar.transition_prob(&ds.network, 700.0, 45.0, 900.0, &segs);
                let b = fast.transition_prob(&ds.network, 700.0, 45.0, 900.0, &segs);
                assert_eq!(a.to_bits(), b.to_bits(), "P_T diverged at prefix {end}");
            }
        }
    }

    #[test]
    fn warm_scorer_scratch_stops_allocating() {
        let (ds, emb) = quick_setup();
        let learner = TransitionLearner::train(
            &ds.network,
            &ds.index,
            &emb,
            &ds.train,
            &TransConfig {
                epochs: 10,
                fuse_epochs: 10,
                ..quick_cfg()
            },
        );
        let rec = &ds.test[0];
        let segs: Vec<SegmentId> = rec.truth.segments.iter().take(8).copied().collect();
        let mut scratch = Scratch::new();
        // Warm the arena with one full pass, then re-score fresh scorers
        // (empty caches, identical shapes) and expect zero new buffers.
        for round in 0..3 {
            let mut scorer = TrajTransScorer::with_scratch(
                &learner,
                &emb,
                &rec.cellular.towers(),
                scratch,
                false,
            );
            let allocs_before = scorer.scratch_stats().0;
            let _ = scorer.transition_prob(&ds.network, 700.0, 45.0, 900.0, &segs);
            let _ = scorer.transition_prob(&ds.network, 700.0, 45.0, 900.0, &segs);
            let allocs_after = scorer.scratch_stats().0;
            if round > 0 {
                assert_eq!(
                    allocs_before, allocs_after,
                    "warm scratch allocated in round {round}"
                );
            }
            let (s, stats) = scorer.finish();
            scratch = s;
            assert!(stats.calls == 2 && stats.rows >= segs.len() as u64);
        }
    }

    #[test]
    fn explicit_features_detect_detours() {
        let (ds, _) = quick_setup();
        // Same straight distance, increasingly long routes => larger dev.
        let segs: Vec<SegmentId> = ds.test[0].truth.segments.iter().take(3).copied().collect();
        let near = explicit_features(&ds.network, 1_000.0, 90.0, 1_050.0, &segs);
        let far = explicit_features(&ds.network, 1_000.0, 90.0, 2_500.0, &segs);
        assert!(far[0] > near[0]);
    }
}
