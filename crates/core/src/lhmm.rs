//! The LHMM model: training pipeline and matcher (paper §IV).

use crate::candidates::nearest_segments;
use crate::classic::{ClassicObservation, ClassicTransition};
use crate::error::{Degradation, MatchError};
use crate::observation::{ObsConfig, ObsTrajScorer, ObservationLearner};
use crate::transition::{TrajTransScorer, TransConfig, TransitionLearner};
use crate::types::{
    Candidate, HmmProbabilities, MapMatcher, MatchContext, MatchResult, MatchStats, RouteInfo,
};
use crate::viterbi::{EngineConfig, HmmEngine};
use std::ops::{Deref, DerefMut};
use crate::timing::StageTimer;
use lhmm_cellsim::dataset::Dataset;
use lhmm_cellsim::tower::TowerId;
use lhmm_cellsim::traj::CellularTrajectory;
use lhmm_geo::Point;
use lhmm_graph::encoder::{train_encoder, Embeddings, EncoderConfig};
use lhmm_graph::relgraph::MultiRelGraph;
use lhmm_network::backend::{SpBackend, SpHandle};
use lhmm_network::graph::SegmentId;
use lhmm_network::RoadNetwork;

/// Full LHMM configuration, including the ablation switches of Table III.
#[derive(Clone, Debug)]
pub struct LhmmConfig {
    /// Het-Graph Encoder settings (`kind` selects LHMM-E / LHMM-H variants).
    pub encoder: EncoderConfig,
    /// Observation-learner settings.
    pub obs: ObsConfig,
    /// Transition-learner settings.
    pub trans: TransConfig,
    /// Candidates per point `k` (paper: 30 for LHMM).
    pub k: usize,
    /// Shortcuts per candidate `K` (paper: 1; 0 = LHMM-S ablation).
    pub shortcut_k: usize,
    /// Use the learned observation probability (false = LHMM-O ablation).
    pub use_learned_obs: bool,
    /// Use the learned transition probability (false = LHMM-T ablation).
    pub use_learned_trans: bool,
    /// Candidate search radius, meters.
    pub candidate_radius: f64,
    /// Max segments scored per point before the top-k cut.
    pub max_scored: usize,
    /// Route-search bound factor/slack (see [`EngineConfig`]).
    pub route_factor: f64,
    /// Additive route-search slack, meters.
    pub route_slack: f64,
    /// Route every `P_O`/`P_T` evaluation through the scalar reference
    /// implementation instead of the vectorized fast path. Both paths are
    /// bit-identical (pinned by `tests/scoring_equivalence.rs`); the flag
    /// exists so the equivalence can be asserted end to end and defaults to
    /// the `scalar-ref` feature. Orthogonally, the fast path's SIMD tier
    /// (scalar/SSE2/AVX2/NEON — also all bit-identical) is picked at
    /// process startup by `lhmm_neural::kernel` and can be forced with the
    /// `LHMM_KERNEL` environment variable; `MatchStats::kernel` records
    /// the choice.
    pub scalar_scoring: bool,
    /// Master seed for all learners.
    pub seed: u64,
    /// Shortest-path backend used for transition routing. `Dijkstra` is
    /// the scalar oracle; `Ch` answers the same queries from a contraction
    /// hierarchy, bitwise-identically (pinned by `crates/network/tests/`).
    pub sp_backend: SpBackend,
}

impl Default for LhmmConfig {
    fn default() -> Self {
        LhmmConfig {
            encoder: EncoderConfig::default(),
            obs: ObsConfig::default(),
            trans: TransConfig::default(),
            k: 30,
            shortcut_k: 1,
            use_learned_obs: true,
            use_learned_trans: true,
            candidate_radius: 3_000.0,
            max_scored: 150,
            route_factor: 4.0,
            route_slack: 3_000.0,
            scalar_scoring: cfg!(feature = "scalar-ref"),
            seed: 0,
            sp_backend: SpBackend::Dijkstra,
        }
    }
}

impl LhmmConfig {
    /// A configuration sized for unit tests and small datasets: narrower
    /// embeddings, fewer training steps, smaller k.
    pub fn fast_test(seed: u64) -> Self {
        LhmmConfig {
            encoder: EncoderConfig {
                dim: 16,
                epochs: 60,
                batch_edges: 256,
                seed,
                ..Default::default()
            },
            obs: ObsConfig {
                epochs: 60,
                fuse_epochs: 30,
                batch_points: 12,
                seed,
                ..Default::default()
            },
            trans: TransConfig {
                epochs: 50,
                fuse_epochs: 25,
                batch_trajs: 6,
                seed,
                ..Default::default()
            },
            k: 10,
            candidate_radius: 2_000.0,
            max_scored: 80,
            seed,
            ..Default::default()
        }
    }
}

/// The trained, immutable half of the LHMM matcher: configuration, graph,
/// embeddings and both learned probability networks.
///
/// Contains no search state, so it is `Send + Sync`: one model can serve
/// many [`HmmEngine`]s concurrently (see [`crate::batch`]). The familiar
/// [`Lhmm`] couples a model with one engine for serial use.
///
/// `Clone` is deliberate: the model registry ([`crate::registry`]) derives
/// refreshed candidate versions by cloning the active model and folding new
/// co-occurrence statistics into the copy, leaving the served version
/// untouched.
#[derive(Clone)]
pub struct LhmmModel {
    /// The configuration the model was trained with. `k` and `shortcut_k`
    /// may be changed between matches (parameter sweeps) via
    /// [`Lhmm::set_k`] / [`Lhmm::set_shortcuts`].
    pub config: LhmmConfig,
    graph: MultiRelGraph,
    embeddings: Embeddings,
    obs_learner: Option<ObservationLearner>,
    trans_learner: Option<TransitionLearner>,
    classic_obs: ClassicObservation,
    classic_trans: ClassicTransition,
    name: String,
    sp: SpHandle,
    sp_preprocess_time_s: f64,
}

/// The trained LHMM matcher: a [`LhmmModel`] plus one search engine.
/// Dereferences to the model, so trained state and `config` read through.
pub struct Lhmm {
    model: LhmmModel,
    engine: HmmEngine,
}

impl Deref for Lhmm {
    type Target = LhmmModel;

    fn deref(&self) -> &LhmmModel {
        &self.model
    }
}

impl DerefMut for Lhmm {
    fn deref_mut(&mut self) -> &mut LhmmModel {
        &mut self.model
    }
}

impl LhmmModel {
    /// Trains the full pipeline (encoder → P_O learner → P_T learner) on
    /// the dataset's training split.
    pub fn train(ds: &Dataset, mut config: LhmmConfig) -> Self {
        config.encoder.seed = config.seed;
        config.obs.seed = config.seed;
        config.trans.seed = config.seed;
        let graph = MultiRelGraph::build(&ds.network, ds.towers.len(), &ds.train);
        let embeddings = train_encoder(&graph, &config.encoder);
        let obs_learner = config.use_learned_obs.then(|| {
            ObservationLearner::train(
                &ds.network,
                &ds.index,
                &embeddings,
                &graph,
                &ds.train,
                &config.obs,
            )
        });
        let trans_learner = config.use_learned_trans.then(|| {
            TransitionLearner::train(&ds.network, &ds.index, &embeddings, &ds.train, &config.trans)
        });
        let name = variant_name(&config);
        let sp_timer = StageTimer::start();
        let sp = SpHandle::build(&ds.network, config.sp_backend);
        // Dijkstra has no preprocessing stage; only charge CH construction.
        let sp_preprocess_time_s = match config.sp_backend {
            SpBackend::Dijkstra => 0.0,
            SpBackend::Ch => sp_timer.elapsed_s(),
        };
        LhmmModel {
            config,
            graph,
            embeddings,
            obs_learner,
            trans_learner,
            classic_obs: ClassicObservation::cellular(),
            classic_trans: ClassicTransition::cellular(),
            name,
            sp,
            sp_preprocess_time_s,
        }
    }

    /// The engine parameters this model's configuration implies; every
    /// engine matching on behalf of the model must be built from these.
    pub fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            max_route_factor: self.config.route_factor,
            route_slack: self.config.route_slack,
            shortcuts: self.config.shortcut_k,
            sp: self.sp.clone(),
        }
    }

    /// The shortest-path handle every engine serving this model shares.
    pub fn sp_handle(&self) -> &SpHandle {
        &self.sp
    }

    /// Switches the shortest-path backend, rebuilding the preprocessing
    /// stage against `net` (which must be the model's training network).
    /// Results are bitwise-unchanged by construction; only speed differs.
    pub fn set_sp_backend(&mut self, net: &RoadNetwork, backend: SpBackend) {
        self.config.sp_backend = backend;
        let sp_timer = StageTimer::start();
        self.sp = SpHandle::build(net, backend);
        self.sp_preprocess_time_s = match backend {
            SpBackend::Dijkstra => 0.0,
            SpBackend::Ch => sp_timer.elapsed_s(),
        };
    }

    /// Short display name ("LHMM", "LHMM-O", ...).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The multi-relational graph built from the training split.
    pub fn graph(&self) -> &MultiRelGraph {
        &self.graph
    }

    /// The trained embeddings.
    pub fn embeddings(&self) -> &Embeddings {
        &self.embeddings
    }

    /// Serializes every trained weight (embeddings + both learners) to a
    /// standalone byte buffer. Pair with [`Lhmm::load_weights`]; model
    /// *structure* is rebuilt from the config, so only values are stored.
    pub fn save_weights(&self) -> Vec<u8> {
        let mut enc = lhmm_neural::persist::Encoder::new();
        self.embeddings.export_weights(&mut enc);
        if let Some(o) = &self.obs_learner {
            o.export_weights(&mut enc);
        }
        if let Some(t) = &self.trans_learner {
            t.export_weights(&mut enc);
        }
        enc.finish()
    }

    /// Rebuilds a model from its dataset + config (zero training epochs)
    /// and loads previously saved weights into it. The dataset and config
    /// must be identical to the ones the weights were trained with.
    pub fn load_weights(
        ds: &Dataset,
        mut config: LhmmConfig,
        bytes: &[u8],
    ) -> Result<Self, lhmm_neural::persist::DecodeError> {
        // Build the exact same structure without spending training time.
        config.encoder.epochs = 0;
        config.obs.epochs = 0;
        config.obs.fuse_epochs = 0;
        config.trans.epochs = 0;
        config.trans.fuse_epochs = 0;
        let mut model = LhmmModel::train(ds, config);
        let mut dec = lhmm_neural::persist::Decoder::new(bytes)?;
        model.embeddings.import_weights(&mut dec)?;
        if let Some(o) = &mut model.obs_learner {
            o.import_weights(&mut dec)?;
        }
        if let Some(t) = &mut model.trans_learner {
            t.import_weights(&mut dec)?;
        }
        Ok(model)
    }

    /// A copy of this model with freshly observed (tower, matched-segment)
    /// co-occurrence counts folded into its multi-relational graph — the
    /// derive step of the accumulate → refresh → swap loop
    /// ([`crate::registry`]). The receiver is untouched (it may be the
    /// actively served version); the copy re-derives its observation
    /// reach: for learned variants both the co-occurrence candidate
    /// expansion in `LhmmModel::prepare_candidates` and the explicit
    /// co-frequency feature of `P_O` see the new mass. Classic (ablated)
    /// variants carry the updated graph but score distance-only, so their
    /// verdicts are unchanged by construction.
    pub fn refreshed(
        &self,
        counts: &std::collections::BTreeMap<(u32, u32), u64>,
    ) -> LhmmModel {
        let mut next = self.clone();
        next.graph.fold_co(counts);
        next
    }

    /// The trained observation learner (`None` under the LHMM-O ablation).
    pub fn observation_learner(&self) -> Option<&ObservationLearner> {
        self.obs_learner.as_ref()
    }

    /// The trained transition learner (`None` under the LHMM-T ablation).
    pub fn transition_learner(&self) -> Option<&TransitionLearner> {
        self.trans_learner.as_ref()
    }

    /// Builds the per-trajectory observation scorer around a loaned scratch
    /// arena; `None` when the learned observation model is ablated.
    pub(crate) fn obs_scorer_with(
        &self,
        towers: &[TowerId],
        scratch: lhmm_neural::Scratch,
    ) -> Option<ObsTrajScorer<'_>> {
        self.obs_learner.as_ref().map(|learner| {
            learner.traj_scorer(
                &self.embeddings,
                towers,
                scratch,
                self.config.scalar_scoring,
            )
        })
    }

    /// Candidate layers for one trajectory: per kept point, the top-k
    /// segments by (learned or classic) observation probability.
    /// Returns `(kept point indices, layers)`. `obs_scorer` must have been
    /// built from the same trajectory's towers (point indices align).
    ///
    /// Points with no segment inside the candidate radius are *dropped*
    /// (graceful degradation), counted into `deg.dropped_points`.
    pub(crate) fn prepare_candidates(
        &self,
        ctx: &MatchContext<'_>,
        traj: &CellularTrajectory,
        obs_scorer: &mut Option<ObsTrajScorer<'_>>,
        deg: &mut Degradation,
    ) -> (Vec<usize>, Vec<Vec<Candidate>>) {
        let mut kept = Vec::new();
        let mut layers = Vec::new();
        let mut scores: Vec<f32> = Vec::new();
        for (i, p) in traj.points.iter().enumerate() {
            let pos = p.effective_pos();
            let pairs = nearest_segments(
                ctx.net,
                ctx.index,
                pos,
                self.config.max_scored,
                self.config.candidate_radius,
            );
            if pairs.is_empty() {
                deg.dropped_points += 1;
                continue;
            }
            let layer = match obs_scorer.as_mut() {
                Some(scorer) => {
                    // Score the nearest segments plus the tower's
                    // historically co-occurring segments: radio propagation
                    // regularly serves roads that are *not* among the
                    // nearest, and the co-occurrence relation is how the
                    // learned P_O reaches them (paper §IV-B).
                    let mut segs: Vec<SegmentId> = pairs.iter().map(|&(s, _)| s).collect();
                    for (co_seg, _) in self.graph.co_segments(p.tower) {
                        if ctx.net.distance_to_segment(pos, co_seg)
                            <= self.config.candidate_radius
                        {
                            segs.push(co_seg);
                        }
                    }
                    segs.sort_unstable();
                    segs.dedup();
                    let pairs: Vec<(SegmentId, lhmm_geo::Projection)> = segs
                        .iter()
                        .map(|&s| (s, ctx.net.project(pos, s)))
                        .collect();
                    let segs: Vec<SegmentId> = pairs.iter().map(|&(s, _)| s).collect();
                    scorer.score_into(
                        ctx.net,
                        &self.graph,
                        pos,
                        p.tower,
                        i,
                        &segs,
                        &mut scores,
                    );
                    let mut scored: Vec<Candidate> = pairs
                        .iter()
                        .zip(&scores)
                        .map(|(&(seg, proj), &s)| Candidate {
                            seg,
                            t: proj.t,
                            obs: s as f64,
                        })
                        .collect();
                    scored.sort_by(|a, b| b.obs.total_cmp(&a.obs));
                    scored.truncate(self.config.k);
                    scored
                }
                _ => {
                    // Classic distance-based preparation (LHMM-O).
                    let mut layer: Vec<Candidate> = pairs
                        .iter()
                        .map(|&(seg, proj)| Candidate {
                            seg,
                            t: proj.t,
                            obs: self.classic_obs.prob(proj.distance),
                        })
                        .collect();
                    layer.truncate(self.config.k);
                    layer
                }
            };
            if layer.is_empty() {
                deg.dropped_points += 1;
                continue;
            }
            kept.push(i);
            layers.push(layer);
        }
        (kept, layers)
    }
}

fn variant_name(cfg: &LhmmConfig) -> String {
    use lhmm_graph::encoder::EncoderKind;
    let mut tags = Vec::new();
    match cfg.encoder.kind {
        EncoderKind::Heterogeneous => {}
        EncoderKind::Homogeneous => tags.push("H"),
        EncoderKind::MlpEmbedding => tags.push("E"),
    }
    if !cfg.use_learned_obs {
        tags.push("O");
    }
    if !cfg.use_learned_trans {
        tags.push("T");
    }
    if cfg.shortcut_k == 0 {
        tags.push("S");
    }
    if tags.is_empty() {
        "LHMM".to_string()
    } else {
        format!("LHMM-{}", tags.join(""))
    }
}

/// Per-trajectory probability model plugged into the engine.
struct LhmmTrajModel<'a> {
    obs_scorer: Option<ObsTrajScorer<'a>>,
    trans_scorer: Option<TrajTransScorer<'a>>,
    graph: &'a MultiRelGraph,
    classic_obs: ClassicObservation,
    classic_trans: ClassicTransition,
    net: &'a lhmm_network::graph::RoadNetwork,
    /// Per *kept* point: effective position, timestamp and tower.
    positions: Vec<Point>,
    times: Vec<f64>,
    towers: Vec<TowerId>,
    /// Maps kept index to original trajectory index (scorer contexts are
    /// indexed by original position).
    orig_idx: Vec<usize>,
    /// Reused output buffer for single-candidate engine re-scores.
    obs_out: Vec<f32>,
}

impl HmmProbabilities for LhmmTrajModel<'_> {
    fn observation(&mut self, i: usize, seg: SegmentId, dist: f64) -> f64 {
        match self.obs_scorer.as_mut() {
            Some(scorer) => {
                let oi = self.orig_idx[i];
                scorer.score_into(
                    self.net,
                    self.graph,
                    self.positions[i],
                    self.towers[i],
                    oi,
                    &[seg],
                    &mut self.obs_out,
                );
                self.obs_out[0] as f64
            }
            None => self.classic_obs.prob(dist),
        }
    }

    fn transition(
        &mut self,
        i: usize,
        _prev: &Candidate,
        _cur: &Candidate,
        route: &RouteInfo,
    ) -> f64 {
        if !route.found {
            return 0.0;
        }
        let d_straight = self.positions[i - 1].distance(self.positions[i]);
        let dt = self.times[i] - self.times[i - 1];
        match &mut self.trans_scorer {
            Some(scorer) => scorer.transition_prob(
                self.net,
                d_straight,
                dt,
                route.length,
                &route.segments,
            ) as f64,
            None => self.classic_trans.prob(d_straight, route.length),
        }
    }
}

impl LhmmModel {
    /// Matches one trajectory using a caller-provided engine.
    ///
    /// The engine must have been built from [`LhmmModel::engine_config`]
    /// (any cache contents are fine: cache state never changes answers,
    /// only speed — see [`crate::batch`] for the argument). This is the
    /// single matching entry point; [`Lhmm`] and the batch matcher both
    /// route through it.
    pub fn match_with_engine(
        &self,
        ctx: &MatchContext<'_>,
        traj: &CellularTrajectory,
        engine: &mut HmmEngine,
    ) -> MatchResult {
        self.match_with_engine_stats(ctx, traj, engine).0
    }

    /// [`LhmmModel::match_with_engine`] plus per-trajectory engine
    /// telemetry (Viterbi timing, cache layer counters, shortcut activity).
    ///
    /// Infallible wrapper around [`LhmmModel::try_match_with_engine_stats`]:
    /// a typed [`MatchError`] degrades to an empty [`MatchResult`] with
    /// `degradation.failed_matches = 1`, so pipelines that loop over
    /// trajectories keep going and the failure stays visible in the stats.
    pub fn match_with_engine_stats(
        &self,
        ctx: &MatchContext<'_>,
        traj: &CellularTrajectory,
        engine: &mut HmmEngine,
    ) -> (MatchResult, MatchStats) {
        match self.try_match_with_engine_stats(ctx, traj, engine) {
            Ok(pair) => pair,
            Err(_) => {
                let mut stats = MatchStats::default();
                stats.degradation.failed_matches = 1;
                (MatchResult::empty(), stats)
            }
        }
    }

    /// Matches one trajectory, reporting unmatchable inputs as typed
    /// errors.
    ///
    /// Degradation policy (see [`crate::error`]): points without nearby
    /// segments are dropped and counted; an entirely uncovered trajectory is
    /// [`MatchError::NoCandidates`]; an empty trajectory is
    /// [`MatchError::EmptyTrajectory`]. Everything else returns `Ok` with
    /// `stats.degradation` describing any best-effort repairs.
    pub fn try_match_with_engine_stats(
        &self,
        ctx: &MatchContext<'_>,
        traj: &CellularTrajectory,
        engine: &mut HmmEngine,
    ) -> Result<(MatchResult, MatchStats), MatchError> {
        let mut stats = MatchStats {
            sp_preprocess_time_s: self.sp_preprocess_time_s,
            sp_shortcuts: self.sp.shortcut_count(),
            kernel: lhmm_neural::kernel::active().name(),
            ..MatchStats::default()
        };
        if traj.is_empty() {
            return Err(MatchError::EmptyTrajectory);
        }
        let towers = traj.towers();

        let obs_scratch = engine.take_obs_scratch();
        let obs_allocs0 = obs_scratch.fresh_allocs();
        let cand_start = StageTimer::start();
        let mut obs_scorer = self.obs_scorer_with(&towers, obs_scratch);
        let (kept, layers) =
            self.prepare_candidates(ctx, traj, &mut obs_scorer, &mut stats.degradation);
        stats.candidate_time_s = cand_start.elapsed_s();

        // Hand a finished observation scorer's arena/stats back regardless
        // of how the match exits.
        let retire_obs =
            |scorer: Option<ObsTrajScorer<'_>>, engine: &mut HmmEngine, stats: &mut MatchStats| {
                if let Some(s) = scorer {
                    let (scratch, st) = s.finish();
                    stats.obs_time_s += st.time_s;
                    stats.obs_calls += st.calls;
                    stats.obs_rows += st.rows;
                    stats.scratch_allocs += scratch.fresh_allocs() - obs_allocs0;
                    stats.scratch_bytes = stats.scratch_bytes.max(scratch.high_water_bytes());
                    engine.put_obs_scratch(scratch);
                }
            };

        if kept.is_empty() {
            retire_obs(obs_scorer, engine, &mut stats);
            return Err(MatchError::NoCandidates);
        }

        // Candidate sets aligned to the original trajectory (for HR).
        let mut candidate_sets: Vec<Vec<SegmentId>> = vec![Vec::new(); traj.len()];
        for (ki, layer) in kept.iter().zip(&layers) {
            candidate_sets[*ki] = layer.iter().map(|c| c.seg).collect();
        }

        let pts: Vec<(Point, f64)> = kept
            .iter()
            .map(|&i| (traj.points[i].effective_pos(), traj.points[i].t))
            .collect();
        let positions: Vec<Point> = pts.iter().map(|&(p, _)| p).collect();
        let kept_towers: Vec<TowerId> = kept.iter().map(|&i| traj.points[i].tower).collect();

        let trans_scratch = engine.take_trans_scratch();
        let trans_allocs0 = trans_scratch.fresh_allocs();
        // The scratch arena moves into the scorer when the transition
        // learner exists, and stays here otherwise (to hand back at the
        // end); the match statement makes the either-or explicit.
        let (trans_scorer, mut trans_scratch) = match self.trans_learner.as_ref() {
            Some(l) => (
                Some(TrajTransScorer::with_scratch(
                    l,
                    &self.embeddings,
                    &towers,
                    trans_scratch,
                    self.config.scalar_scoring,
                )),
                None,
            ),
            None => (None, Some(trans_scratch)),
        };
        let mut model = LhmmTrajModel {
            obs_scorer,
            trans_scorer,
            graph: &self.graph,
            classic_obs: self.classic_obs,
            classic_trans: self.classic_trans,
            net: ctx.net,
            positions,
            times: pts.iter().map(|&(_, t)| t).collect(),
            towers: kept_towers,
            orig_idx: kept,
            obs_out: Vec::new(),
        };

        let cache_before = engine.cache_stats_detailed();
        engine.take_sp_time(); // discard any stale accumulation
        let viterbi_start = StageTimer::start();
        let out = engine.try_find_path(ctx.net, &pts, layers, &mut model);
        stats.viterbi_time_s = viterbi_start.elapsed_s();
        stats.sp_time_s = engine.take_sp_time();
        let cache_after = engine.cache_stats_detailed();
        stats.cache_hits = cache_after.hits - cache_before.hits;
        stats.cache_warm_hits = cache_after.warm_hits - cache_before.warm_hits;
        stats.cache_misses = cache_after.misses - cache_before.misses;
        stats.degradation.merge(&engine.take_degradation());

        if let Ok(out) = &out {
            stats.shortcut_activations = out.added_candidates.len() as u64;
            stats.shortcut_points = out.shortcut_points as u64;
            // Shortcut-created candidates enlarge the effective candidate
            // road sets (they are real match hypotheses for the skipped
            // points).
            for (layer_idx, cand) in &out.added_candidates {
                let orig = model.orig_idx[*layer_idx];
                candidate_sets[orig].push(cand.seg);
            }
        }

        // Scorers retire (and scratch arenas return to the engine) whether
        // the engine succeeded or not.
        retire_obs(model.obs_scorer.take(), engine, &mut stats);
        if let Some(s) = model.trans_scorer.take() {
            let (scratch, st) = s.finish();
            stats.trans_time_s = st.time_s;
            stats.trans_calls = st.calls;
            stats.trans_rows = st.rows;
            stats.scratch_allocs += scratch.fresh_allocs() - trans_allocs0;
            stats.scratch_bytes = stats.scratch_bytes.max(scratch.high_water_bytes());
            engine.put_trans_scratch(scratch);
        } else if let Some(scratch) = trans_scratch.take() {
            engine.put_trans_scratch(scratch);
        }

        let out = out?;
        let result = MatchResult {
            path: out.path,
            candidate_sets: Some(candidate_sets),
        };
        Ok((result, stats))
    }
}

impl Lhmm {
    /// Trains the full pipeline (encoder → P_O learner → P_T learner) on
    /// the dataset's training split and couples it with a search engine.
    pub fn train(ds: &Dataset, config: LhmmConfig) -> Self {
        let model = LhmmModel::train(ds, config);
        let engine = HmmEngine::new(&ds.network, model.engine_config());
        Lhmm { model, engine }
    }

    /// See [`LhmmModel::load_weights`]; the loaded model is coupled with a
    /// fresh engine.
    pub fn load_weights(
        ds: &Dataset,
        config: LhmmConfig,
        bytes: &[u8],
    ) -> Result<Self, lhmm_neural::persist::DecodeError> {
        let model = LhmmModel::load_weights(ds, config, bytes)?;
        let engine = HmmEngine::new(&ds.network, model.engine_config());
        Ok(Lhmm { model, engine })
    }

    /// The trained model half, for sharing across batch workers.
    pub fn model(&self) -> &LhmmModel {
        &self.model
    }

    /// Changes the candidate count `k` for subsequent matches (Fig. 8).
    pub fn set_k(&mut self, k: usize) {
        self.model.config.k = k;
    }

    /// Changes the shortcut count `K` for subsequent matches (Fig. 9).
    pub fn set_shortcuts(&mut self, k: usize) {
        self.model.config.shortcut_k = k;
        self.engine.cfg.shortcuts = k;
    }

    /// Switches the shortest-path backend for subsequent matches and
    /// rebuilds the coupled engine so its query state matches. `net` must
    /// be the network the model was trained on.
    pub fn set_sp_backend(&mut self, net: &RoadNetwork, backend: SpBackend) {
        self.model.set_sp_backend(net, backend);
        self.engine = HmmEngine::new(net, self.model.engine_config());
    }
}

impl MapMatcher for Lhmm {
    fn name(&self) -> &str {
        self.model.name()
    }

    fn match_trajectory(
        &mut self,
        ctx: &MatchContext<'_>,
        traj: &CellularTrajectory,
    ) -> MatchResult {
        self.model.match_with_engine(ctx, traj, &mut self.engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhmm_cellsim::dataset::DatasetConfig;

    fn match_all(ds: &Dataset, matcher: &mut Lhmm, n: usize) -> Vec<MatchResult> {
        let ctx = MatchContext {
            net: &ds.network,
            index: &ds.index,
            towers: &ds.towers,
        };
        ds.test
            .iter()
            .take(n)
            .map(|rec| matcher.match_trajectory(&ctx, &rec.cellular))
            .collect()
    }

    #[test]
    fn trained_lhmm_produces_nonempty_paths() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(61));
        let mut lhmm = Lhmm::train(&ds, LhmmConfig::fast_test(61));
        assert_eq!(lhmm.name(), "LHMM");
        let results = match_all(&ds, &mut lhmm, 6);
        for r in &results {
            assert!(!r.path.is_empty());
            assert!(r.candidate_sets.is_some());
        }
    }

    #[test]
    fn ablation_names_are_distinct() {
        let mut cfg = LhmmConfig::fast_test(0);
        cfg.use_learned_obs = false;
        assert_eq!(variant_name(&cfg), "LHMM-O");
        let mut cfg = LhmmConfig::fast_test(0);
        cfg.shortcut_k = 0;
        assert_eq!(variant_name(&cfg), "LHMM-S");
        let mut cfg = LhmmConfig::fast_test(0);
        cfg.encoder.kind = lhmm_graph::encoder::EncoderKind::MlpEmbedding;
        assert_eq!(variant_name(&cfg), "LHMM-E");
        let mut cfg = LhmmConfig::fast_test(0);
        cfg.encoder.kind = lhmm_graph::encoder::EncoderKind::Homogeneous;
        cfg.use_learned_trans = false;
        assert_eq!(variant_name(&cfg), "LHMM-HT");
    }

    #[test]
    fn k_and_shortcut_sweeps_take_effect() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(62));
        let mut cfg = LhmmConfig::fast_test(62);
        cfg.use_learned_obs = false; // cheaper training for this test
        cfg.use_learned_trans = false;
        let mut lhmm = Lhmm::train(&ds, cfg);
        lhmm.set_k(3);
        lhmm.set_shortcuts(0); // shortcut additions would exceed k below
        let r3 = match_all(&ds, &mut lhmm, 3);
        for (r, rec) in r3.iter().zip(&ds.test) {
            let sets = r.candidate_sets.as_ref().unwrap();
            assert!(sets.iter().all(|s| s.len() <= 3));
            assert_eq!(sets.len(), rec.cellular.len());
        }
        lhmm.set_shortcuts(0);
        let r0 = match_all(&ds, &mut lhmm, 3);
        assert_eq!(r0.len(), 3);
    }

    #[test]
    fn save_load_roundtrip_preserves_matching() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(64));
        let mut trained = Lhmm::train(&ds, LhmmConfig::fast_test(64));
        let bytes = trained.save_weights();
        let mut loaded =
            Lhmm::load_weights(&ds, LhmmConfig::fast_test(64), &bytes).expect("load");
        let ctx = MatchContext {
            net: &ds.network,
            index: &ds.index,
            towers: &ds.towers,
        };
        for rec in ds.test.iter().take(4) {
            let a = trained.match_trajectory(&ctx, &rec.cellular);
            let b = loaded.match_trajectory(&ctx, &rec.cellular);
            assert_eq!(a.path.segments, b.path.segments);
        }
        // Garbage rejects cleanly.
        assert!(Lhmm::load_weights(&ds, LhmmConfig::fast_test(64), b"junk").is_err());
    }

    #[test]
    fn lhmm_beats_distance_only_variant_on_matched_coverage() {
        // LHMM (learned P_O) should locate more truth segments in its
        // candidate sets than the distance-only variant (higher HR).
        let ds = Dataset::generate(&DatasetConfig::tiny_test(63));
        let mut full = Lhmm::train(&ds, LhmmConfig::fast_test(63));
        let mut cfg_o = LhmmConfig::fast_test(63);
        cfg_o.use_learned_obs = false;
        cfg_o.use_learned_trans = false;
        let mut ablated = Lhmm::train(&ds, cfg_o);

        let hit_ratio = |results: &[MatchResult], ds: &Dataset| -> f64 {
            let mut hits = 0usize;
            let mut total = 0usize;
            for (r, rec) in results.iter().zip(&ds.test) {
                let truth = rec.truth.segment_set();
                for set in r.candidate_sets.as_ref().unwrap() {
                    total += 1;
                    if set.iter().any(|s| truth.contains(s)) {
                        hits += 1;
                    }
                }
            }
            hits as f64 / total.max(1) as f64
        };
        let n = ds.test.len();
        let r_full = match_all(&ds, &mut full, n);
        let r_abl = match_all(&ds, &mut ablated, n);
        let hr_full = hit_ratio(&r_full, &ds);
        let hr_abl = hit_ratio(&r_abl, &ds);
        // The learned variant must be at least competitive; with the
        // anisotropic attachment model it should be clearly better.
        assert!(
            hr_full + 0.02 >= hr_abl,
            "learned HR {hr_full} << distance HR {hr_abl}"
        );
    }
}
