//! Rank-ordered lock wrappers with a runtime deadlock witness
//! (DESIGN §15).
//!
//! [`OrderedMutex`] / [`OrderedRwLock`] wrap their `std::sync` twins and
//! carry a static *rank* and name. The workspace declares one global lock
//! hierarchy in [`rank`]; every acquisition must strictly increase the
//! rank along each thread's held-lock chain. In release builds without
//! the `lock-witness` feature the wrappers are transparent passthroughs
//! (the rank is a dormant `u32`). Under `cfg(debug_assertions)` — i.e.
//! every ordinary `cargo test` run — or with the `lock-witness` feature,
//! each acquisition:
//!
//! 1. registers the lock in a global rank table (re-registering a name
//!    with a different rank is itself a violation),
//! 2. checks the thread's held-lock set: acquiring a rank less than or
//!    equal to any held rank panics with *both* acquisition sites
//!    (`#[track_caller]` locations of the held and the new lock), and
//! 3. pushes the lock onto the held set until the guard drops.
//!
//! The panic is an `assert!`: given the declared ranks and the static
//! `lock-order` lint, an inversion is a contract violation — the witness
//! converts what would be a latent deadlock into an immediate, located
//! failure on the test run that first schedules it.
//!
//! Equal ranks are deliberately rejected too: two locks that can be held
//! together must occupy distinct ranks, and re-locking the same
//! non-reentrant `std` mutex on one thread is a self-deadlock. The same
//! applies to `OrderedRwLock::read` re-entry (read → read on one thread
//! deadlocks when a writer queues between the two).
//!
//! Lock poisoning is ridden through (`PoisonError::into_inner`), matching
//! the serving layer's `lock_unpoisoned` idiom it replaces: a panic on a
//! scoped serving thread already aborts the owning scope, so poison adds
//! no safety — shutdown paths must still be able to drain.

use std::ops::{Deref, DerefMut};
use std::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

/// The global lock hierarchy: every [`OrderedMutex`]/[`OrderedRwLock`] in
/// the workspace takes its rank from this table, lowest acquired first.
/// One table (rather than per-crate constants) keeps the total order
/// auditable in one screenful; DESIGN §15 documents each chain.
pub mod rank {
    /// Cluster router session table (`RouterShared::sessions`) — held
    /// across shard RPCs, so it outranks nothing and opens every chain.
    pub const ROUTER_SESSIONS: u32 = 10;
    /// Per-tile pooled shard connection (`RouterShared::conns[tile]`).
    pub const ROUTER_CONN: u32 = 20;
    /// Supervisor shard slot (`Supervisor::slots[tile]`).
    pub const SUPERVISOR_SLOT: u32 = 30;
    /// Supervisor dead-shard report rollup (`Supervisor::dead`).
    pub const SUPERVISOR_DEAD: u32 = 40;
    /// Single-process server session table (`Shared::sessions`) — also
    /// taken under a supervisor slot when a shard reports.
    pub const SERVER_SESSIONS: u32 = 50;
    /// Scheduler worker-handle registry (`MicroBatcher::threads`).
    pub const SCHEDULER_THREADS: u32 = 60;
    /// Scheduler dispatch receiver (`Mutex<mpsc::Receiver<_>>`).
    pub const SCHEDULER_DISPATCH: u32 = 70;
    /// Admission queue state (`BoundedQueue::inner`).
    pub const ADMISSION_QUEUE: u32 = 80;
    /// Accept-loop peer stream list (server and router).
    pub const SERVER_PEERS: u32 = 90;
    /// Connection-handler join handles (server and router).
    pub const SERVER_HANDLERS: u32 = 95;
    /// Accept-thread join handle slot.
    pub const ACCEPT_HANDLE: u32 = 100;
    /// Cluster monitor-thread join handle slot.
    pub const MONITOR_HANDLE: u32 = 105;
    /// Serving metrics histograms (`ServeMetrics::hist`).
    pub const METRICS_HIST: u32 = 160;
    /// Serving per-version metric lanes (`ServeMetrics::versions`).
    pub const METRICS_VERSIONS: u32 = 165;
    /// Model registry version store (`ModelRegistry::inner`) — a leaf:
    /// registry methods never take another lock.
    pub const REGISTRY_INNER: u32 = 200;
    /// Model registry refresh statistics (`ModelRegistry::stats`).
    pub const REGISTRY_STATS: u32 = 210;
}

#[cfg(any(debug_assertions, feature = "lock-witness"))]
mod witness {
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::panic::Location;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    /// Name → rank, filled on first acquisition of each lock.
    static RANK_TABLE: Mutex<BTreeMap<&'static str, u32>> = Mutex::new(BTreeMap::new());
    /// Total witnessed acquisitions, for the `--races` witness lane.
    static ACQUISITIONS: AtomicU64 = AtomicU64::new(0);

    struct HeldLock {
        rank: u32,
        name: &'static str,
        site: &'static Location<'static>,
    }

    thread_local! {
        static HELD: RefCell<Vec<HeldLock>> = const { RefCell::new(Vec::new()) };
    }

    #[track_caller]
    pub(super) fn acquire(rank: u32, name: &'static str) {
        let site = Location::caller();
        {
            let mut table = match RANK_TABLE.lock() {
                Ok(t) => t,
                Err(p) => p.into_inner(),
            };
            let registered = *table.entry(name).or_insert(rank);
            assert!(
                registered == rank,
                "lock rank table conflict: `{name}` registered at rank {registered}, \
                 re-registered at rank {rank} (from {site}); one lock name, one rank"
            );
        }
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            for h in held.iter() {
                assert!(
                    h.rank < rank,
                    "lock-order inversion: acquiring `{name}` (rank {rank}) at {site} \
                     while holding `{}` (rank {}) acquired at {}; ranks must strictly \
                     increase along every held chain (DESIGN §15)",
                    h.name,
                    h.rank,
                    h.site
                );
            }
            held.push(HeldLock { rank, name, site });
        });
        ACQUISITIONS.fetch_add(1, Ordering::Relaxed);
    }

    pub(super) fn release(rank: u32) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            // Ranks are unique within a thread's held set (equal ranks
            // cannot be acquired together), so rank identifies the entry.
            if let Some(pos) = held.iter().rposition(|h| h.rank == rank) {
                held.remove(pos);
            }
        });
    }

    pub(super) fn acquisitions() -> u64 {
        ACQUISITIONS.load(Ordering::Relaxed)
    }

    pub(super) fn table() -> Vec<(&'static str, u32)> {
        let table = match RANK_TABLE.lock() {
            Ok(t) => t,
            Err(p) => p.into_inner(),
        };
        table.iter().map(|(n, r)| (*n, *r)).collect()
    }
}

/// True when the deadlock witness is compiled in (debug builds or the
/// `lock-witness` feature).
pub fn witness_enabled() -> bool {
    cfg!(any(debug_assertions, feature = "lock-witness"))
}

/// Total lock acquisitions the witness has checked in this process
/// (0 when the witness is compiled out). The `--races` witness lane
/// asserts this advances across a serving run.
pub fn witness_acquisitions() -> u64 {
    #[cfg(any(debug_assertions, feature = "lock-witness"))]
    {
        witness::acquisitions()
    }
    #[cfg(not(any(debug_assertions, feature = "lock-witness")))]
    {
        0
    }
}

/// The ranks observed so far, name → rank (empty when the witness is
/// compiled out). Diagnostic surface for tests and tooling.
pub fn witness_rank_table() -> Vec<(&'static str, u32)> {
    #[cfg(any(debug_assertions, feature = "lock-witness"))]
    {
        witness::table()
    }
    #[cfg(not(any(debug_assertions, feature = "lock-witness")))]
    {
        Vec::new()
    }
}

#[cfg(any(debug_assertions, feature = "lock-witness"))]
use witness::{acquire as witness_acquire, release as witness_release};
#[cfg(not(any(debug_assertions, feature = "lock-witness")))]
#[inline(always)]
fn witness_acquire(_rank: u32, _name: &'static str) {}
#[cfg(not(any(debug_assertions, feature = "lock-witness")))]
#[inline(always)]
fn witness_release(_rank: u32) {}

/// A [`Mutex`] that participates in the global lock hierarchy.
#[derive(Debug)]
pub struct OrderedMutex<T> {
    raw: Mutex<T>,
    rank: u32,
    name: &'static str,
}

impl<T> OrderedMutex<T> {
    /// Wraps `value` at `rank` (from [`rank`]) under `name`. `name` keys
    /// the global rank table: one name, one rank, process-wide.
    pub const fn new(rank: u32, name: &'static str, value: T) -> Self {
        Self {
            raw: Mutex::new(value),
            rank,
            name,
        }
    }

    /// Acquires the lock, riding poison, after the witness admits the
    /// acquisition against this thread's held ranks.
    #[track_caller]
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        witness_acquire(self.rank, self.name);
        let raw = match self.raw.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        OrderedMutexGuard {
            raw: Some(raw),
            rank: self.rank,
        }
    }

    /// This lock's rank in the global hierarchy.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// This lock's rank-table name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// Guard for [`OrderedMutex`]; releases the witness entry on drop.
#[derive(Debug)]
pub struct OrderedMutexGuard<'a, T> {
    /// `Some` until dropped; `take`n transiently inside [`Self::wait_timeout`].
    raw: Option<MutexGuard<'a, T>>,
    rank: u32,
}

impl<'a, T> OrderedMutexGuard<'a, T> {
    /// Same-lock `Condvar` wait with a deadline: atomically releases the
    /// underlying mutex while parked and re-acquires it on wake, exactly
    /// like [`Condvar::wait_timeout`]. The witness entry stays on the
    /// held set for the duration — the thread cannot acquire anything
    /// else while parked, and on wake it holds the lock again. Returns
    /// the guard and whether the deadline elapsed.
    pub fn wait_timeout(mut self, cv: &Condvar, timeout: Duration) -> (Self, bool) {
        let raw = match self.raw.take() {
            Some(g) => g,
            None => unreachable!("guard invariant: raw present until drop"),
        };
        let (raw, res) = match cv.wait_timeout(raw, timeout) {
            Ok(pair) => pair,
            Err(poisoned) => poisoned.into_inner(),
        };
        self.raw = Some(raw);
        (self, res.timed_out())
    }
}

impl<T> Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.raw {
            Some(g) => g,
            None => unreachable!("guard invariant: raw present until drop"),
        }
    }
}

impl<T> DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.raw {
            Some(g) => g,
            None => unreachable!("guard invariant: raw present until drop"),
        }
    }
}

impl<T> Drop for OrderedMutexGuard<'_, T> {
    fn drop(&mut self) {
        witness_release(self.rank);
    }
}

/// An [`RwLock`] that participates in the global lock hierarchy. Both
/// `read` and `write` acquire at the lock's single rank; shared readers
/// on *different* threads proceed concurrently as usual, but one thread
/// nesting `read` inside `read` is rejected (a queued writer between the
/// two re-entries deadlocks all three).
#[derive(Debug)]
pub struct OrderedRwLock<T> {
    raw: RwLock<T>,
    rank: u32,
    name: &'static str,
}

impl<T> OrderedRwLock<T> {
    /// Wraps `value` at `rank` under `name`; see [`OrderedMutex::new`].
    pub const fn new(rank: u32, name: &'static str, value: T) -> Self {
        Self {
            raw: RwLock::new(value),
            rank,
            name,
        }
    }

    /// Shared acquisition, riding poison, witness-checked at this lock's
    /// rank.
    #[track_caller]
    pub fn read(&self) -> OrderedReadGuard<'_, T> {
        witness_acquire(self.rank, self.name);
        let raw = match self.raw.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        OrderedReadGuard {
            raw,
            rank: self.rank,
        }
    }

    /// Exclusive acquisition, riding poison, witness-checked at this
    /// lock's rank.
    #[track_caller]
    pub fn write(&self) -> OrderedWriteGuard<'_, T> {
        witness_acquire(self.rank, self.name);
        let raw = match self.raw.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        OrderedWriteGuard {
            raw,
            rank: self.rank,
        }
    }

    /// This lock's rank in the global hierarchy.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// This lock's rank-table name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// Shared guard for [`OrderedRwLock`].
#[derive(Debug)]
pub struct OrderedReadGuard<'a, T> {
    raw: RwLockReadGuard<'a, T>,
    rank: u32,
}

impl<T> Deref for OrderedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.raw
    }
}

impl<T> Drop for OrderedReadGuard<'_, T> {
    fn drop(&mut self) {
        witness_release(self.rank);
    }
}

/// Exclusive guard for [`OrderedRwLock`].
#[derive(Debug)]
pub struct OrderedWriteGuard<'a, T> {
    raw: RwLockWriteGuard<'a, T>,
    rank: u32,
}

impl<T> Deref for OrderedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.raw
    }
}

impl<T> DerefMut for OrderedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.raw
    }
}

impl<T> Drop for OrderedWriteGuard<'_, T> {
    fn drop(&mut self) {
        witness_release(self.rank);
    }
}
