//! LHMM core: the learning-enhanced HMM map matcher (paper §IV).
//!
//! Components, in dependency order:
//!
//! * [`types`] — candidates, match results, the [`types::MapMatcher`] trait
//!   and the [`types::HmmProbabilities`] model interface,
//! * [`error`] — the [`error::MatchError`] taxonomy and
//!   [`error::Degradation`] accounting behind the `try_*` inference APIs,
//! * [`classic`] — the heuristic Gaussian/exponential probabilities of
//!   Eq. 2–3 (used by baselines and by the LHMM-O/LHMM-T ablations),
//! * [`candidates`] — candidate preparation (distance top-k and learned
//!   top-k),
//! * [`viterbi`] — the HMM path-finding engine: Algorithm 1 (Viterbi DP)
//!   plus Algorithm 2 (shortcut construction) behind a single entry point,
//! * [`observation`] — the learned observation probability (Eq. 6–8),
//! * [`transition`] — the learned transition probability (Eq. 9–12),
//! * [`lhmm`] — the [`lhmm::Lhmm`] model: training pipeline and matcher,
//!   with ablation switches ([`lhmm::LhmmConfig`]),
//! * [`batch`] — the parallel [`batch::BatchMatcher`]: work-stealing
//!   workers over sharded shortest-path caches with a shared warm layer,
//!   bit-identical to serial matching,
//! * [`registry`] — the versioned [`registry::ModelRegistry`]: atomic hot
//!   swap with version pinning, shadow candidate routing, and online
//!   refresh statistics (accumulate → refresh → swap),
//! * [`sync`] — rank-ordered [`sync::OrderedMutex`]/[`sync::OrderedRwLock`]
//!   wrappers behind the workspace lock hierarchy, with a debug-mode
//!   deadlock witness (DESIGN §15) used by the serving stack.
//!
//! ```no_run
//! use lhmm_cellsim::dataset::{Dataset, DatasetConfig};
//! use lhmm_core::lhmm::{Lhmm, LhmmConfig};
//! use lhmm_core::types::{MapMatcher, MatchContext};
//!
//! let ds = Dataset::generate(&DatasetConfig::tiny_test(1));
//! let mut matcher = Lhmm::train(&ds, LhmmConfig::default());
//! let ctx = MatchContext { net: &ds.network, index: &ds.index, towers: &ds.towers };
//! let result = matcher.match_trajectory(&ctx, &ds.test[0].cellular);
//! println!("matched onto {} segments", result.path.len());
//! ```

#![forbid(unsafe_code)]
// Inference code must degrade through typed `MatchError`s / `Degradation`
// counters, never panic: `unwrap`/`expect` are denied crate-wide outside
// test builds (ci.sh additionally lints the lib target explicitly).
// Training/test code that genuinely wants to assert uses `assert!`/`panic!`
// with a message, which remain available.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod batch;
pub mod candidates;
pub mod classic;
pub mod error;
pub mod lhmm;
pub mod observation;
pub mod registry;
pub mod streaming;
pub mod sync;
pub mod timing;
pub mod transition;
pub mod types;
pub mod viterbi;


pub use batch::{BatchConfig, BatchMatcher, BatchStats, WorkerStats};
pub use error::{Degradation, MatchError};
pub use lhmm::{Lhmm, LhmmConfig, LhmmModel};
pub use registry::{
    ModelManifest, ModelRegistry, ModelVersion, RefreshStats, RegistryError, VersionedModel,
};
pub use streaming::{BeamState, SnapshotError, StreamingEngine};
pub use sync::{OrderedMutex, OrderedRwLock};
pub use types::{Candidate, MapMatcher, MatchContext, MatchResult, MatchStats};
