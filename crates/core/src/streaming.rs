//! Online (streaming) HMM map matching with fixed-lag commitment.
//!
//! The paper's motivating applications (live traffic management, §I) need
//! matches *while the trip is ongoing*. This module runs the same Viterbi
//! recursion as [`crate::viterbi`] layer by layer: each observation extends
//! the DP frontier, and candidates older than a fixed `lag` are committed —
//! the standard fixed-lag smoothing trade-off between latency and accuracy.
//! Shortcuts are not available online (they need the successor layer), which
//! is also why the offline matcher remains the accuracy reference.

use crate::error::{sanitize_prob, Degradation, MatchError};
use crate::types::{Candidate, HmmProbabilities, RouteInfo};
use lhmm_geo::Point;
use lhmm_network::backend::{SpEngine, SpHandle};
use lhmm_network::graph::{RoadNetwork, SegmentId};
use lhmm_network::path::Path;
use lhmm_network::sp_cache::SpCache;
use std::fmt;

/// A serializable photograph of one in-progress streaming session: the DP
/// frontier inside the lag window plus the committed prefix. Restoring it
/// into any [`StreamingEngine`] on the same network — same process or a
/// different shard — continues the session byte-identically to one that was
/// never interrupted, because every field the recursion reads is carried
/// and the shortest-path layer never changes answers (only speed).
///
/// The state is a pure function of the accepted `push` calls, so it carries
/// no engine identity: kernel choice, SP backend, and cache temperature are
/// all excluded by construction.
#[derive(Clone, Debug)]
pub struct BeamState {
    /// Commit lag of the captured session.
    pub lag: usize,
    /// Candidate layers, one per accepted observation.
    pub layers: Vec<Vec<Candidate>>,
    /// Effective position and timestamp per observation.
    pub pts: Vec<(Point, f64)>,
    /// Viterbi log-domain scores per layer.
    pub f: Vec<Vec<f64>>,
    /// Backpointers per layer (`None` on layer 0 and for unreachable
    /// candidates).
    pub pre: Vec<Vec<Option<usize>>>,
    /// Observations already committed (prefix length).
    pub committed_upto: usize,
    /// Segments of the committed path so far.
    pub committed: Vec<SegmentId>,
    /// The candidate the committed path ends on, if any.
    pub last_committed: Option<Candidate>,
    /// Degradation counters accumulated so far.
    pub degradation: Degradation,
}

/// Bitwise equality: `f64` fields compare by bit pattern so two states are
/// equal exactly when a continued session cannot distinguish them. (`NaN ==
/// NaN` under this ordering, `0.0 != -0.0` — the same discipline as the
/// engine's `total_cmp` scoring.)
impl PartialEq for BeamState {
    fn eq(&self, other: &Self) -> bool {
        fn cand_eq(a: &Candidate, b: &Candidate) -> bool {
            a.seg == b.seg && a.t.to_bits() == b.t.to_bits() && a.obs.to_bits() == b.obs.to_bits()
        }
        self.lag == other.lag
            && self.layers.len() == other.layers.len()
            && self
                .layers
                .iter()
                .zip(&other.layers)
                .all(|(x, y)| x.len() == y.len() && x.iter().zip(y).all(|(a, b)| cand_eq(a, b)))
            && self.pts.len() == other.pts.len()
            && self.pts.iter().zip(&other.pts).all(|(a, b)| {
                a.0.x.to_bits() == b.0.x.to_bits()
                    && a.0.y.to_bits() == b.0.y.to_bits()
                    && a.1.to_bits() == b.1.to_bits()
            })
            && self.f.len() == other.f.len()
            && self.f.iter().zip(&other.f).all(|(x, y)| {
                x.len() == y.len() && x.iter().zip(y).all(|(a, b)| a.to_bits() == b.to_bits())
            })
            && self.pre == other.pre
            && self.committed_upto == other.committed_upto
            && self.committed == other.committed
            && match (&self.last_committed, &other.last_committed) {
                (None, None) => true,
                (Some(a), Some(b)) => cand_eq(a, b),
                _ => false,
            }
            && self.degradation == other.degradation
    }
}

impl BeamState {
    /// Effective positions of the captured observations, in push order —
    /// exactly what a position-indexed observation model (e.g.
    /// `ClassicModel`) must be rebuilt with before continuing the session.
    pub fn positions(&self) -> Vec<Point> {
        self.pts.iter().map(|&(p, _)| p).collect()
    }

    /// Checks the structural invariants every state captured from a real
    /// session satisfies: parallel per-layer arrays, non-empty layers,
    /// in-range backpointers, a committed prefix no longer than the
    /// session, and a `last_committed` present exactly when something was
    /// committed. Wire decoders call this so a corrupted frame surfaces as
    /// a typed error, never as a panic inside the engine.
    pub fn validate(&self) -> Result<(), SnapshotError> {
        let n = self.layers.len();
        if self.pts.len() != n || self.f.len() != n || self.pre.len() != n {
            return Err(SnapshotError("per-layer arrays disagree on length"));
        }
        for (i, layer) in self.layers.iter().enumerate() {
            if layer.is_empty() {
                return Err(SnapshotError("empty candidate layer"));
            }
            if self.f[i].len() != layer.len() || self.pre[i].len() != layer.len() {
                return Err(SnapshotError("layer arrays disagree on candidate count"));
            }
            for p in &self.pre[i] {
                match *p {
                    None => {}
                    Some(_) if i == 0 => {
                        return Err(SnapshotError("backpointer on first layer"));
                    }
                    Some(j) if j >= self.layers[i - 1].len() => {
                        return Err(SnapshotError("backpointer out of range"));
                    }
                    Some(_) => {}
                }
            }
        }
        if self.committed_upto > n {
            return Err(SnapshotError("committed prefix longer than session"));
        }
        if self.last_committed.is_some() != (self.committed_upto > 0) {
            return Err(SnapshotError("last_committed disagrees with committed prefix"));
        }
        if self.committed_upto == 0 && !self.committed.is_empty() {
            return Err(SnapshotError("committed segments without committed prefix"));
        }
        Ok(())
    }

    /// [`BeamState::validate`] plus segment-id bounds against a concrete
    /// network — the full check a shard runs before admitting foreign state.
    pub fn validate_for(&self, net: &RoadNetwork) -> Result<(), SnapshotError> {
        self.validate()?;
        let num = net.num_segments();
        let seg_ok = |s: SegmentId| s.idx() < num;
        for layer in &self.layers {
            if !layer.iter().all(|c| seg_ok(c.seg)) {
                return Err(SnapshotError("candidate segment id out of range"));
            }
        }
        if !self.committed.iter().all(|&s| seg_ok(s)) {
            return Err(SnapshotError("committed segment id out of range"));
        }
        if let Some(c) = self.last_committed {
            if !seg_ok(c.seg) {
                return Err(SnapshotError("last committed segment id out of range"));
            }
        }
        Ok(())
    }
}

/// A beam-state snapshot failed validation on restore (or wire decode).
/// The payload names the violated invariant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotError(pub &'static str);

impl fmt::Display for SnapshotError {
    fn fmt(&self, fm: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(fm, "invalid beam state: {}", self.0)
    }
}

impl std::error::Error for SnapshotError {}

/// Incremental HMM state over one in-progress trajectory.
pub struct StreamingEngine<'a> {
    net: &'a RoadNetwork,
    sp: SpEngine,
    sp_cache: SpCache,
    /// Commit lag in observations: a candidate is fixed once `lag` newer
    /// observations have arrived. 0 commits greedily every step.
    pub lag: usize,
    max_route_factor: f64,
    route_slack: f64,
    // DP state.
    layers: Vec<Vec<Candidate>>,
    pts: Vec<(Point, f64)>,
    f: Vec<Vec<f64>>,
    pre: Vec<Vec<Option<usize>>>,
    committed_upto: usize,
    committed_path: Path,
    last_committed: Option<Candidate>,
    degradation: Degradation,
}

impl<'a> StreamingEngine<'a> {
    /// Creates a streaming session on `net` with the given commit lag,
    /// using the default Dijkstra backend.
    pub fn new(net: &'a RoadNetwork, lag: usize) -> Self {
        Self::with_backend(net, lag, &SpHandle::default())
    }

    /// Creates a streaming session whose shortest-path queries run through
    /// `sp` (e.g. a prebuilt contraction hierarchy). Answers are bitwise
    /// identical across backends; only query speed differs.
    pub fn with_backend(net: &'a RoadNetwork, lag: usize, sp: &SpHandle) -> Self {
        StreamingEngine {
            net,
            sp: sp.engine(net),
            sp_cache: SpCache::with_backend(net, 100_000, sp),
            lag,
            max_route_factor: 4.0,
            route_slack: 3_000.0,
            layers: Vec::new(),
            pts: Vec::new(),
            f: Vec::new(),
            pre: Vec::new(),
            committed_upto: 0,
            committed_path: Path::empty(),
            last_committed: None,
            degradation: Degradation::default(),
        }
    }

    /// Number of observations consumed so far.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True before the first observation.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The path committed so far (grows as observations arrive).
    pub fn committed(&self) -> &Path {
        &self.committed_path
    }

    /// Degradation events accumulated so far (clamped scores, glued path
    /// gaps). The counters keep accumulating across pushes; a snapshot, not
    /// a drain — streaming sessions are long-lived.
    pub fn degradation(&self) -> Degradation {
        self.degradation
    }

    /// Feeds one observation with its scored candidate layer. Returns the
    /// number of newly committed observations.
    ///
    /// An empty candidate layer is rejected with
    /// [`MatchError::EmptyLayer`] and leaves the session state untouched:
    /// callers skip the unmatched observation and keep streaming (the same
    /// degradation the offline candidate preparation applies by dropping
    /// such points).
    pub fn push<M: HmmProbabilities>(
        &mut self,
        pos: Point,
        t: f64,
        candidates: Vec<Candidate>,
        model: &mut M,
    ) -> Result<usize, MatchError> {
        let i = self.layers.len();
        if candidates.is_empty() {
            return Err(MatchError::EmptyLayer { layer: i });
        }
        if i == 0 {
            let deg = &mut self.degradation;
            self.f
                .push(candidates.iter().map(|c| sanitize_prob(c.obs, deg)).collect());
            self.pre.push(vec![None; candidates.len()]);
        } else {
            let bound =
                self.pts[i - 1].0.distance(pos) * self.max_route_factor + self.route_slack;
            let prev_layer = &self.layers[i - 1];
            let mut f_i = vec![f64::NEG_INFINITY; candidates.len()];
            let mut pre_i = vec![None; candidates.len()];
            for (j, prev) in prev_layer.iter().enumerate() {
                let prev_seg = self.net.segment(prev.seg);
                let head = prev_seg.length * (1.0 - prev.t);
                let targets: Vec<_> = candidates
                    .iter()
                    .map(|c| self.net.segment(c.seg).from)
                    .collect();
                let routes = self
                    .sp
                    .node_to_nodes(self.net, prev_seg.to, &targets, bound);
                for (k, cur) in candidates.iter().enumerate() {
                    let info = if cur.seg == prev.seg && cur.t >= prev.t {
                        RouteInfo {
                            found: true,
                            length: prev_seg.length * (cur.t - prev.t),
                            segments: vec![prev.seg],
                        }
                    } else {
                        match &routes[k] {
                            Some(r) => {
                                let tail = self.net.segment(cur.seg).length * cur.t;
                                let mut segments = Vec::with_capacity(r.segments.len() + 2);
                                segments.push(prev.seg);
                                segments.extend_from_slice(&r.segments);
                                segments.push(cur.seg);
                                RouteInfo {
                                    found: true,
                                    length: head + r.length + tail,
                                    segments,
                                }
                            }
                            None => RouteInfo::missing(),
                        }
                    };
                    let w = sanitize_prob(
                        model.transition(i, prev, cur, &info) * cur.obs,
                        &mut self.degradation,
                    );
                    let score = self.f[i - 1][j] + w;
                    if score > f_i[k] {
                        f_i[k] = score;
                        pre_i[k] = Some(j);
                    }
                }
            }
            self.f.push(f_i);
            self.pre.push(pre_i);
        }
        self.layers.push(candidates);
        self.pts.push((pos, t));
        Ok(self.commit_to(self.layers.len().saturating_sub(self.lag)))
    }

    /// Commits observations with index `< target` by backtracking from the
    /// current best frontier candidate.
    fn commit_to(&mut self, target: usize) -> usize {
        let frontier = self.layers.len() - 1;
        if target <= self.committed_upto {
            return 0;
        }
        // Backtrack the current best chain to find the decided candidates.
        // `push` guarantees every layer is non-empty, so the fallbacks below
        // are unreachable; `total_cmp` keeps the ordering deterministic even
        // if a score went NaN despite sanitization.
        let best_k = (0..self.layers[frontier].len())
            .max_by(|&a, &b| self.f[frontier][a].total_cmp(&self.f[frontier][b]))
            .unwrap_or(0);
        let mut chain = vec![best_k];
        let mut cur = best_k;
        for li in (1..=frontier).rev() {
            cur = self.pre[li][cur].unwrap_or(0);
            chain.push(cur);
        }
        chain.reverse(); // chain[i] = candidate index at layer i

        let mut committed_now = 0;
        while self.committed_upto < target {
            let li = self.committed_upto;
            let cand = self.layers[li][chain[li]];
            match self.last_committed {
                None => self.committed_path.segments.push(cand.seg),
                Some(p) => {
                    let bound = self.pts[li].0.distance(
                        self.pts[li.saturating_sub(1)].0,
                    ) * self.max_route_factor
                        + self.route_slack;
                    match self.sp_cache.route_between_projections(
                        self.net, p.seg, p.t, cand.seg, cand.t, bound,
                    ) {
                        Some(r) => self.committed_path.extend_with(&r.segments),
                        None => {
                            // Unroutable gap: glue the segments directly and
                            // count the discontinuity instead of stalling.
                            self.degradation.disconnected_joins += 1;
                            self.committed_path.segments.push(cand.seg);
                        }
                    }
                }
            }
            self.last_committed = Some(cand);
            self.committed_upto += 1;
            committed_now += 1;
        }
        self.committed_path.dedup_consecutive();
        committed_now
    }

    /// Flushes the remaining lag window and returns the complete path.
    pub fn finish(mut self) -> Path {
        self.finalize()
    }

    /// Flushes the remaining lag window, returns the complete path, and
    /// resets the session for the next trajectory.
    ///
    /// Unlike [`StreamingEngine::finish`] this keeps the engine alive, so a
    /// long-lived server session (or a pool of reusable engines) amortizes
    /// the shortest-path cache across trajectories: [`SpCache`] state never
    /// changes answers, only speed, so a reused engine is byte-identical to
    /// a fresh one (pinned by `reused_engine_matches_fresh_engine`).
    pub fn finalize(&mut self) -> Path {
        if self.layers.is_empty() {
            self.reset();
            return Path::empty();
        }
        self.commit_to(self.layers.len());
        let path = std::mem::replace(&mut self.committed_path, Path::empty());
        self.reset();
        path
    }

    /// Clears all per-trajectory state (DP frontier, committed prefix,
    /// [`Degradation`] counters) without touching the warm shortest-path
    /// cache. After `reset` the engine behaves exactly like a freshly
    /// constructed one.
    pub fn reset(&mut self) {
        self.layers.clear();
        self.pts.clear();
        self.f.clear();
        self.pre.clear();
        self.committed_upto = 0;
        self.committed_path = Path::empty();
        self.last_committed = None;
        self.degradation = Degradation::default();
    }

    /// Captures the complete per-session state for handoff to another
    /// engine (possibly in another process). Non-destructive: the session
    /// keeps running here unless the caller also [`StreamingEngine::reset`]s
    /// it. The snapshot carries everything `push`/`commit_to` read, so a
    /// restored session continues byte-identically — pinned by the
    /// round-trip tests below across kernels and SP backends.
    pub fn snapshot(&self) -> BeamState {
        BeamState {
            lag: self.lag,
            layers: self.layers.clone(),
            pts: self.pts.clone(),
            f: self.f.clone(),
            pre: self.pre.clone(),
            committed_upto: self.committed_upto,
            committed: self.committed_path.segments.clone(),
            last_committed: self.last_committed,
            degradation: self.degradation,
        }
    }

    /// Replaces this engine's session state with a snapshot captured
    /// elsewhere, after validating it structurally and against this
    /// network's segment-id space. On error the engine is left untouched.
    /// The warm shortest-path cache is kept — cache state never changes
    /// answers, only speed.
    pub fn restore(&mut self, state: BeamState) -> Result<(), SnapshotError> {
        state.validate_for(self.net)?;
        self.lag = state.lag;
        self.layers = state.layers;
        self.pts = state.pts;
        self.f = state.f;
        self.pre = state.pre;
        self.committed_upto = state.committed_upto;
        self.committed_path = Path {
            segments: state.committed,
        };
        self.last_committed = state.last_committed;
        self.degradation = state.degradation;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{nearest_segments, to_candidates};
    use crate::classic::{ClassicModel, ClassicObservation, ClassicTransition};
    use crate::viterbi::{EngineConfig, HmmEngine};
    use lhmm_cellsim::dataset::{Dataset, DatasetConfig};
    use lhmm_eval_shim::evaluate_recall;

    /// Tiny local shim to avoid a circular dev-dependency on lhmm-eval.
    mod lhmm_eval_shim {
        use lhmm_network::graph::RoadNetwork;
        use lhmm_network::path::Path;
        pub fn evaluate_recall(net: &RoadNetwork, matched: &Path, truth: &Path) -> f64 {
            let truth_set = truth.segment_set();
            let correct: f64 = matched
                .segment_set()
                .intersection(&truth_set)
                .map(|&s| net.segment(s).length)
                .sum();
            correct / truth.length(net)
        }
    }

    fn run_streaming(ds: &Dataset, rec_idx: usize, lag: usize) -> Path {
        let rec = &ds.test[rec_idx];
        let positions = rec.cellular.effective_positions();
        let mut model = ClassicModel::new(
            ClassicObservation::cellular(),
            ClassicTransition::cellular(),
            positions.clone(),
        );
        let mut stream = StreamingEngine::new(&ds.network, lag);
        for (i, p) in rec.cellular.points.iter().enumerate() {
            let pairs = nearest_segments(&ds.network, &ds.index, positions[i], 20, 3_000.0);
            if pairs.is_empty() {
                continue;
            }
            let layer = to_candidates(&mut model, i, &pairs);
            stream
                .push(positions[i], p.t, layer, &mut model)
                .expect("non-empty layer");
        }
        stream.finish()
    }

    #[test]
    fn streaming_produces_a_reasonable_path() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(201));
        let path = run_streaming(&ds, 0, 3);
        assert!(!path.is_empty());
        let recall = evaluate_recall(&ds.network, &path, &ds.test[0].truth);
        assert!(recall > 0.1, "streaming recall {recall}");
    }

    #[test]
    fn longer_lag_is_at_least_as_good_on_average() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(202));
        let mut greedy_sum = 0.0;
        let mut lagged_sum = 0.0;
        for i in 0..6 {
            greedy_sum += evaluate_recall(
                &ds.network,
                &run_streaming(&ds, i, 0),
                &ds.test[i].truth,
            );
            lagged_sum += evaluate_recall(
                &ds.network,
                &run_streaming(&ds, i, 4),
                &ds.test[i].truth,
            );
        }
        // Fixed-lag smoothing must not be systematically worse than greedy
        // commitment (it sees strictly more evidence per decision).
        assert!(
            lagged_sum >= greedy_sum - 0.3,
            "lagged {lagged_sum} much worse than greedy {greedy_sum}"
        );
    }

    #[test]
    fn full_lag_matches_offline_engine_without_shortcuts() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(203));
        let rec = &ds.test[1];
        let positions = rec.cellular.effective_positions();
        let mut model = ClassicModel::new(
            ClassicObservation::cellular(),
            ClassicTransition::cellular(),
            positions.clone(),
        );
        // Streaming with lag >= trajectory length == offline Viterbi.
        let offline_layers: Vec<Vec<Candidate>> = positions
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let pairs = nearest_segments(&ds.network, &ds.index, p, 15, 3_000.0);
                to_candidates(&mut model, i, &pairs)
            })
            .collect();
        let pts: Vec<(Point, f64)> = rec
            .cellular
            .points
            .iter()
            .map(|p| (p.effective_pos(), p.t))
            .collect();
        let mut engine = HmmEngine::new(
            &ds.network,
            EngineConfig {
                shortcuts: 0,
                ..Default::default()
            },
        );
        let offline = engine.find_path(&ds.network, &pts, offline_layers.clone(), &mut model);

        let mut stream = StreamingEngine::new(&ds.network, positions.len() + 1);
        for ((i, p), layer) in rec.cellular.points.iter().enumerate().zip(offline_layers) {
            stream
                .push(positions[i], p.t, layer, &mut model)
                .expect("non-empty layer");
        }
        let streamed = stream.finish();
        assert_eq!(streamed.segments, offline.path.segments);
    }

    /// One engine reused across trajectories must carry nothing over:
    /// every per-trajectory counter (Degradation, committed prefix, DP
    /// frontier) resets at `finalize`, so results and telemetry are
    /// byte-identical to fresh engines — the invariant the lhmm-serve
    /// session manager relies on when it pools sessions.
    #[test]
    fn reused_engine_matches_fresh_engine() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(206));
        let lag = 2;

        // Reference: one fresh engine per trajectory.
        let fresh: Vec<Path> = (0..3).map(|i| run_streaming(&ds, i, lag)).collect();

        // One engine reused across all three, with a degradation event
        // injected between trajectories (a rejected empty layer leaves
        // state untouched, but clamped scores inside a trajectory must not
        // leak into the next one's counters either).
        let mut stream = StreamingEngine::new(&ds.network, lag);
        for (i, want) in fresh.iter().enumerate() {
            let rec = &ds.test[i];
            let positions = rec.cellular.effective_positions();
            let mut model = ClassicModel::new(
                ClassicObservation::cellular(),
                ClassicTransition::cellular(),
                positions.clone(),
            );
            for (pi, p) in rec.cellular.points.iter().enumerate() {
                let pairs =
                    nearest_segments(&ds.network, &ds.index, positions[pi], 20, 3_000.0);
                if pairs.is_empty() {
                    continue;
                }
                let layer = to_candidates(&mut model, pi, &pairs);
                stream
                    .push(positions[pi], p.t, layer, &mut model)
                    .expect("non-empty layer");
            }
            let deg_before_finalize = stream.degradation();
            let got = stream.finalize();
            assert_eq!(
                got.segments, want.segments,
                "trajectory {i}: reused engine diverged from fresh engine"
            );
            // finalize() may add disconnected_joins while flushing the lag
            // window, never fewer events than already accumulated.
            assert!(stream.degradation() == Degradation::default(),
                "degradation counters leaked across finalize: {:?} (had {:?})",
                stream.degradation(), deg_before_finalize
            );
            assert!(stream.is_empty(), "observations leaked across finalize");
            assert!(
                stream.committed().is_empty(),
                "committed prefix leaked across finalize"
            );
        }
    }

    #[test]
    fn finalize_on_empty_session_is_empty_and_reusable() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(207));
        let mut stream = StreamingEngine::new(&ds.network, 1);
        assert!(stream.finalize().is_empty());
        // Still usable afterwards.
        let path = {
            let rec = &ds.test[0];
            let positions = rec.cellular.effective_positions();
            let mut model = ClassicModel::new(
                ClassicObservation::cellular(),
                ClassicTransition::cellular(),
                positions.clone(),
            );
            for (pi, p) in rec.cellular.points.iter().enumerate() {
                let pairs =
                    nearest_segments(&ds.network, &ds.index, positions[pi], 20, 3_000.0);
                if pairs.is_empty() {
                    continue;
                }
                let layer = to_candidates(&mut model, pi, &pairs);
                stream
                    .push(positions[pi], p.t, layer, &mut model)
                    .expect("non-empty layer");
            }
            stream.finalize()
        };
        assert!(!path.is_empty());
    }

    #[test]
    fn empty_stream_finishes_empty() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(204));
        let stream = StreamingEngine::new(&ds.network, 2);
        assert!(stream.is_empty());
        assert!(stream.finish().is_empty());
    }

    /// Per-accepted-push inputs for one trajectory, with model positions
    /// compacted to accepted pushes only (the serve session discipline).
    fn stream_inputs(ds: &Dataset, rec_idx: usize) -> Vec<(Point, f64, Vec<Candidate>)> {
        let rec = &ds.test[rec_idx];
        let positions = rec.cellular.effective_positions();
        let mut model = ClassicModel::new(
            ClassicObservation::cellular(),
            ClassicTransition::cellular(),
            positions.clone(),
        );
        let mut out = Vec::new();
        for (i, p) in rec.cellular.points.iter().enumerate() {
            let pairs = nearest_segments(&ds.network, &ds.index, positions[i], 20, 3_000.0);
            if pairs.is_empty() {
                continue;
            }
            out.push((positions[i], p.t, to_candidates(&mut model, i, &pairs)));
        }
        out
    }

    fn fresh_compact_model() -> ClassicModel {
        ClassicModel::new(
            ClassicObservation::cellular(),
            ClassicTransition::cellular(),
            Vec::new(),
        )
    }

    /// Satellite: snapshot → restore (possibly onto a different SP backend)
    /// → continued pushes are byte-identical to an uninterrupted session.
    /// Compared at full [`BeamState`] granularity after every post-cut push,
    /// not just on the final path.
    #[test]
    fn snapshot_restore_round_trip_is_byte_identical_across_sp_backends() {
        use lhmm_network::backend::SpBackend;
        let ds = Dataset::generate(&DatasetConfig::tiny_test(208));
        let inputs = stream_inputs(&ds, 0);
        assert!(inputs.len() >= 4, "trajectory too short to cut");
        let cut = inputs.len() / 2;
        let lag = 3;

        for (src, dst) in [
            (SpBackend::Dijkstra, SpBackend::Dijkstra),
            (SpBackend::Dijkstra, SpBackend::Ch),
            (SpBackend::Ch, SpBackend::Dijkstra),
        ] {
            let src_sp = SpHandle::build(&ds.network, src);
            let dst_sp = SpHandle::build(&ds.network, dst);

            // Reference: one uninterrupted session on the source backend.
            let mut ref_model = fresh_compact_model();
            let mut reference = StreamingEngine::with_backend(&ds.network, lag, &src_sp);
            // Interrupted twin, cut over to a fresh engine mid-stream.
            let mut cut_model = fresh_compact_model();
            let mut interrupted = StreamingEngine::with_backend(&ds.network, lag, &src_sp);

            for (i, (pos, t, layer)) in inputs.iter().enumerate() {
                if i == cut {
                    let state = interrupted.snapshot();
                    state.validate_for(&ds.network).expect("captured state valid");
                    let mut restored =
                        StreamingEngine::with_backend(&ds.network, lag, &dst_sp);
                    restored.restore(state.clone()).expect("restore");
                    assert_eq!(restored.snapshot(), state, "restore is lossless");
                    interrupted = restored;
                    cut_model = ClassicModel::new(
                        ClassicObservation::cellular(),
                        ClassicTransition::cellular(),
                        state.positions(),
                    );
                }
                ref_model.positions.push(*pos);
                cut_model.positions.push(*pos);
                reference
                    .push(*pos, *t, layer.clone(), &mut ref_model)
                    .expect("non-empty layer");
                interrupted
                    .push(*pos, *t, layer.clone(), &mut cut_model)
                    .expect("non-empty layer");
                assert_eq!(
                    interrupted.snapshot(),
                    reference.snapshot(),
                    "state diverged after push {i} ({src:?} -> {dst:?})"
                );
            }
            let want = reference.finish();
            let got = interrupted.finish();
            assert_eq!(got.segments, want.segments, "{src:?} -> {dst:?}");
        }
    }

    /// Satellite: the snapshot path is invariant under the SIMD kernel in
    /// use — every supported kernel yields the same bytes as the scalar
    /// reference for the interrupted-and-restored session.
    #[test]
    fn snapshot_restore_is_kernel_invariant() {
        use lhmm_neural::kernel::{force_scope, Kernel};
        let ds = Dataset::generate(&DatasetConfig::tiny_test(209));
        let inputs = stream_inputs(&ds, 2);
        assert!(inputs.len() >= 4, "trajectory too short to cut");
        let cut = inputs.len() / 2;
        let lag = 2;

        let run_interrupted = || {
            let mut model = fresh_compact_model();
            let mut stream = StreamingEngine::new(&ds.network, lag);
            for (i, (pos, t, layer)) in inputs.iter().enumerate() {
                if i == cut {
                    let state = stream.snapshot();
                    let mut restored = StreamingEngine::new(&ds.network, lag);
                    restored.restore(state.clone()).expect("restore");
                    stream = restored;
                    model = ClassicModel::new(
                        ClassicObservation::cellular(),
                        ClassicTransition::cellular(),
                        state.positions(),
                    );
                }
                model.positions.push(*pos);
                stream
                    .push(*pos, *t, layer.clone(), &mut model)
                    .expect("non-empty layer");
            }
            let state = stream.snapshot();
            (state, stream.finish())
        };

        let reference = {
            let _g = force_scope(Kernel::Scalar).expect("scalar always available");
            run_interrupted()
        };
        for k in [Kernel::Sse2, Kernel::Avx2, Kernel::Neon] {
            let Some(_g) = force_scope(k) else { continue };
            let (state, path) = run_interrupted();
            assert_eq!(state, reference.0, "final beam state differs under {k:?}");
            assert_eq!(
                path.segments, reference.1.segments,
                "final path differs under {k:?}"
            );
        }
    }

    /// Restore refuses structurally corrupt or out-of-range states with a
    /// typed error and leaves the running session untouched.
    #[test]
    fn restore_rejects_corrupt_states_and_preserves_the_session() {
        use lhmm_network::graph::SegmentId;
        let ds = Dataset::generate(&DatasetConfig::tiny_test(210));
        let inputs = stream_inputs(&ds, 1);
        let lag = 2;
        let mut model = fresh_compact_model();
        let mut stream = StreamingEngine::new(&ds.network, lag);
        for (pos, t, layer) in inputs.iter().take(4) {
            model.positions.push(*pos);
            stream
                .push(*pos, *t, layer.clone(), &mut model)
                .expect("non-empty layer");
        }
        let good = stream.snapshot();
        good.validate_for(&ds.network).expect("captured state valid");

        let corruptions: Vec<(&str, BeamState)> = vec![
            ("array length mismatch", {
                let mut s = good.clone();
                s.f.pop();
                s
            }),
            ("empty layer", {
                let mut s = good.clone();
                s.layers[1].clear();
                s
            }),
            ("candidate count mismatch", {
                let mut s = good.clone();
                s.pre[1].push(None);
                s
            }),
            ("backpointer on first layer", {
                let mut s = good.clone();
                s.pre[0][0] = Some(0);
                s
            }),
            ("backpointer out of range", {
                let mut s = good.clone();
                let m = s.layers[0].len();
                s.pre[1][0] = Some(m);
                s
            }),
            ("committed prefix too long", {
                let mut s = good.clone();
                s.committed_upto = s.layers.len() + 1;
                s
            }),
            ("last_committed mismatch", {
                let mut s = good.clone();
                s.last_committed = None;
                s.committed_upto = s.layers.len().clamp(1, 2);
                s
            }),
            ("segment id out of range", {
                let mut s = good.clone();
                s.layers[0][0].seg = SegmentId(u32::MAX - 1);
                s
            }),
        ];
        for (what, bad) in corruptions {
            // Sanity: the corruption actually broke the invariant.
            assert!(bad.validate_for(&ds.network).is_err(), "{what}: still valid");
            let mut victim = StreamingEngine::new(&ds.network, lag);
            victim.restore(good.clone()).expect("good state restores");
            let err = victim.restore(bad).expect_err(what);
            assert!(!err.0.is_empty(), "{what}: empty reason");
            // The failed restore left the previous session intact.
            assert_eq!(victim.snapshot(), good, "{what}: session clobbered");
        }

        // And the original session kept running as if nothing happened.
        for (pos, t, layer) in inputs.iter().skip(4) {
            model.positions.push(*pos);
            stream
                .push(*pos, *t, layer.clone(), &mut model)
                .expect("non-empty layer");
        }
        assert!(!stream.finish().is_empty());
    }

    #[test]
    fn empty_layer_is_rejected_without_corrupting_state() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(205));
        let rec = &ds.test[0];
        let positions = rec.cellular.effective_positions();
        let mut model = ClassicModel::new(
            ClassicObservation::cellular(),
            ClassicTransition::cellular(),
            positions.clone(),
        );
        let mut stream = StreamingEngine::new(&ds.network, 0);
        let pairs = nearest_segments(&ds.network, &ds.index, positions[0], 10, 3_000.0);
        let layer = to_candidates(&mut model, 0, &pairs);
        stream
            .push(positions[0], rec.cellular.points[0].t, layer.clone(), &mut model)
            .expect("non-empty layer");
        let before = stream.len();
        let err = stream
            .push(positions[0], rec.cellular.points[0].t + 30.0, vec![], &mut model)
            .unwrap_err();
        assert_eq!(err, MatchError::EmptyLayer { layer: 1 });
        // Session untouched: the next real push still works.
        assert_eq!(stream.len(), before);
        stream
            .push(positions[0], rec.cellular.points[0].t + 60.0, layer, &mut model)
            .expect("non-empty layer");
        assert!(!stream.finish().is_empty());
    }
}
