//! Shared matching types and traits.

use crate::error::Degradation;
use lhmm_cellsim::tower::TowerField;
use lhmm_cellsim::traj::CellularTrajectory;
use lhmm_geo::Point;
use lhmm_network::graph::{RoadNetwork, SegmentId};
use lhmm_network::path::Path;
use lhmm_network::spatial::SpatialIndex;

/// One candidate road segment for a trajectory point.
#[derive(Clone, Copy, Debug)]
pub struct Candidate {
    /// The candidate road segment.
    pub seg: SegmentId,
    /// Normalized projection position of the trajectory point along the
    /// segment, in `[0, 1]`.
    pub t: f64,
    /// Observation probability `P_O(c | x)` in `[0, 1]`, precomputed during
    /// candidate preparation.
    pub obs: f64,
}

/// The route between two candidates, as handed to transition models.
#[derive(Clone, Debug)]
pub struct RouteInfo {
    /// False when no route exists within the search bound.
    pub found: bool,
    /// Route length in meters (including partial first/last segments);
    /// meaningless when `found` is false.
    pub length: f64,
    /// Traversed segments; empty when `found` is false.
    pub segments: Vec<SegmentId>,
}

impl RouteInfo {
    /// The not-found sentinel.
    pub fn missing() -> Self {
        RouteInfo {
            found: false,
            length: f64::INFINITY,
            segments: Vec::new(),
        }
    }
}

/// The two probabilities every HMM matcher plugs into the engine
/// (heuristic for the baselines, learned for LHMM).
pub trait HmmProbabilities {
    /// Observation probability of placing trajectory point `i` on `seg`
    /// with projection distance `dist` meters. Must lie in `[0, 1]`.
    fn observation(&mut self, i: usize, seg: SegmentId, dist: f64) -> f64;

    /// Transition probability of moving from `prev` (point `i - 1`) to
    /// `cur` (point `i`) along `route`. Must lie in `[0, 1]`.
    fn transition(
        &mut self,
        i: usize,
        prev: &Candidate,
        cur: &Candidate,
        route: &RouteInfo,
    ) -> f64;
}

/// Result of matching one trajectory.
#[derive(Clone, Debug)]
pub struct MatchResult {
    /// The matched path (may be empty when matching failed entirely).
    pub path: Path,
    /// Per-point candidate road sets, for hitting-ratio evaluation.
    /// `None` for matchers without a candidate stage (seq2seq baselines).
    pub candidate_sets: Option<Vec<Vec<SegmentId>>>,
}

impl MatchResult {
    /// An empty (failed) result.
    pub fn empty() -> Self {
        MatchResult {
            path: Path::empty(),
            candidate_sets: None,
        }
    }
}

/// Per-trajectory engine telemetry, threaded from the Viterbi engine up
/// through batch matching and evaluation.
///
/// The four stage timers partition one match: candidate preparation
/// (including batched `P_O` scoring), then the path-finding engine, whose
/// wall time further splits into `P_O` re-scoring, `P_T` scoring and
/// shortest-path search (the remainder is the DP itself). The scratch
/// counters prove the allocation-free claim of the vectorized scoring path:
/// on a warm engine `scratch_allocs` stays 0 for every subsequent match.
#[derive(Clone, Copy, Debug, Default)]
pub struct MatchStats {
    /// Wall-clock time of candidate preparation (spatial queries + batched
    /// observation scoring), seconds.
    pub candidate_time_s: f64,
    /// Wall-clock time spent in the path-finding engine, seconds
    /// (candidate preparation excluded).
    pub viterbi_time_s: f64,
    /// Time inside observation (`P_O`) scoring, seconds — both the
    /// candidate-preparation batches and engine re-scores.
    pub obs_time_s: f64,
    /// Time inside transition (`P_T`) scoring, seconds.
    pub trans_time_s: f64,
    /// Time inside shortest-path searches and cache lookups, seconds.
    pub sp_time_s: f64,
    /// Observation scoring calls (candidate batches).
    pub obs_calls: u64,
    /// Candidate rows scored through `P_O`.
    pub obs_rows: u64,
    /// Transition scoring calls (candidate pairs).
    pub trans_calls: u64,
    /// Roads scored through the road-relevance batches of `P_T`.
    pub trans_rows: u64,
    /// Fresh scratch-arena buffer allocations during this match (0 on a
    /// warm engine — the zero-allocation invariant of the fast path).
    pub scratch_allocs: u64,
    /// High-water scratch-arena footprint, bytes (max over merges).
    pub scratch_bytes: u64,
    /// Shortest-path queries answered by the worker's private cache shard.
    pub cache_hits: u64,
    /// Shortest-path queries answered by the shared warm layer.
    pub cache_warm_hits: u64,
    /// Shortest-path queries that ran a Dijkstra search.
    pub cache_misses: u64,
    /// One-time shortest-path preprocessing time for the model's backend
    /// (contraction-hierarchy build; 0 for Dijkstra). Per-model constant:
    /// merges take the max instead of summing across workers.
    pub sp_preprocess_time_s: f64,
    /// Shortcut edges the shortest-path preprocessing added (0 for
    /// Dijkstra). Per-model constant: merges take the max.
    pub sp_shortcuts: u64,
    /// Candidates added by shortcut construction (Algorithm 2 activations).
    pub shortcut_activations: u64,
    /// Matched-chain points routed through a shortcut candidate.
    pub shortcut_points: u64,
    /// Graceful-degradation event counters for this match (dropped points,
    /// glued path gaps, clamped scores, failed matches mapped to empty
    /// results). `degradation.any()` flags a best-effort result.
    pub degradation: Degradation,
    /// Name of the SIMD inference kernel that scored this match
    /// (`lhmm_neural::kernel::active().name()`: "scalar", "sse2", "avx2"
    /// or "neon"); `""` until an engine populates it. All kernels are
    /// bit-identical, so this is provenance telemetry, not a result
    /// qualifier.
    pub kernel: &'static str,
    /// Registry version of the model that served this match (0 when the
    /// match ran outside a registry — offline training/eval paths). Set by
    /// the serving layer at admission time, so a rollup exposes which
    /// model version produced each verdict even across a hot swap.
    pub model_version: u32,
}

impl MatchStats {
    /// Accumulates `other` into `self` (per-worker and per-batch rollups).
    pub fn merge(&mut self, other: &MatchStats) {
        self.candidate_time_s += other.candidate_time_s;
        self.viterbi_time_s += other.viterbi_time_s;
        self.obs_time_s += other.obs_time_s;
        self.trans_time_s += other.trans_time_s;
        self.sp_time_s += other.sp_time_s;
        self.obs_calls += other.obs_calls;
        self.obs_rows += other.obs_rows;
        self.trans_calls += other.trans_calls;
        self.trans_rows += other.trans_rows;
        self.scratch_allocs += other.scratch_allocs;
        self.scratch_bytes = self.scratch_bytes.max(other.scratch_bytes);
        self.cache_hits += other.cache_hits;
        self.cache_warm_hits += other.cache_warm_hits;
        self.cache_misses += other.cache_misses;
        self.sp_preprocess_time_s = self.sp_preprocess_time_s.max(other.sp_preprocess_time_s);
        self.sp_shortcuts = self.sp_shortcuts.max(other.sp_shortcuts);
        self.shortcut_activations += other.shortcut_activations;
        self.shortcut_points += other.shortcut_points;
        self.degradation.merge(&other.degradation);
        // Kernel choice is process-wide, so any non-empty name wins; keep
        // the first so rollups over defaulted stats stay stable.
        if self.kernel.is_empty() {
            self.kernel = other.kernel;
        }
        // Version provenance: keep the first non-zero version seen, so a
        // rollup over defaulted stats reports the version that served it.
        if self.model_version == 0 {
            self.model_version = other.model_version;
        }
    }

    /// True when this match (or rollup) produced a best-effort, degraded
    /// result — see [`Degradation`] for what counts.
    pub fn degraded(&self) -> bool {
        self.degradation.any()
    }
}

/// Read-only context a matcher needs at inference time.
#[derive(Clone, Copy)]
pub struct MatchContext<'a> {
    /// The road network.
    pub net: &'a RoadNetwork,
    /// Spatial index over road segments.
    pub index: &'a SpatialIndex,
    /// The tower field (for tower-identity features).
    pub towers: &'a TowerField,
}

/// A cellular-trajectory map matcher. All baselines and LHMM implement this.
pub trait MapMatcher {
    /// Short display name used in result tables ("LHMM", "STM", ...).
    fn name(&self) -> &str;

    /// Matches one trajectory onto the road network.
    fn match_trajectory(&mut self, ctx: &MatchContext<'_>, traj: &CellularTrajectory)
        -> MatchResult;
}

/// Per-point effective positions and timestamps, the engine's view of a
/// trajectory.
pub fn positions_and_times(traj: &CellularTrajectory) -> Vec<(Point, f64)> {
    traj.points
        .iter()
        .map(|p| (p.effective_pos(), p.t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_info_missing_is_inert() {
        let r = RouteInfo::missing();
        assert!(!r.found);
        assert!(r.segments.is_empty());
        assert!(r.length.is_infinite());
    }

    #[test]
    fn match_result_empty() {
        let r = MatchResult::empty();
        assert!(r.path.is_empty());
        assert!(r.candidate_sets.is_none());
    }
}
