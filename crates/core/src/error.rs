//! Typed inference errors and graceful-degradation accounting.
//!
//! Production inputs are hostile: empty trajectories, points teleported off
//! the network, corrupted clocks (see `lhmm_cellsim::faults`). The matching
//! pipeline answers every such input in exactly one of two ways:
//!
//! * **A typed [`MatchError`]** when no result can exist at all (nothing to
//!   match, or no candidate anywhere). The `try_*` entry points return these;
//!   the infallible legacy APIs map them to empty results.
//! * **A degraded `Ok`** when a best-effort result exists: points without
//!   candidates are dropped, unroutable gaps are glued, non-finite
//!   probability outputs are clamped to zero, and unqualified candidate
//!   layers fall back to shortcut construction (Algorithm 2). Every such
//!   event is counted in [`Degradation`], threaded through
//!   [`MatchStats`](crate::types::MatchStats) so batch workers and
//!   `lhmm-eval` can report degradation rates.
//!
//! Panics are reserved for caller bugs (mismatched layer counts via the
//! legacy `find_path`) and are never reachable from the `try_*` APIs —
//! `tests/fault_injection.rs` sweeps the adversarial corpus across every
//! mode to pin this.

use std::fmt;

/// Why a match could not be produced at all.
///
/// Everything softer than these conditions degrades instead of failing —
/// see [`Degradation`] for the accounting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MatchError {
    /// The input trajectory had no observations.
    EmptyTrajectory,
    /// No trajectory point had any candidate segment within the search
    /// radius (input far off the road network, or a network with no
    /// coverage near the trajectory).
    NoCandidates,
    /// Candidate layers and trajectory points disagree in count
    /// (caller-constructed input for the engine entry point).
    LayerMismatch {
        /// Number of trajectory points supplied.
        points: usize,
        /// Number of candidate layers supplied.
        layers: usize,
    },
    /// A candidate layer was empty (engine and streaming entry points
    /// require every supplied layer to carry at least one candidate;
    /// candidate preparation drops such points instead).
    EmptyLayer {
        /// Index of the offending layer.
        layer: usize,
    },
}

impl fmt::Display for MatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatchError::EmptyTrajectory => write!(f, "empty trajectory"),
            MatchError::NoCandidates => write!(
                f,
                "no candidates: every trajectory point is outside the \
                 candidate radius of the road network"
            ),
            MatchError::LayerMismatch { points, layers } => write!(
                f,
                "one layer per point: got {points} points but {layers} candidate layers"
            ),
            MatchError::EmptyLayer { layer } => {
                write!(f, "empty candidate layer at index {layer}")
            }
        }
    }
}

impl std::error::Error for MatchError {}

/// Counters for every graceful-degradation event during a match (or a
/// rollup over many matches — the counters add).
///
/// A zero value means the match was clean; [`Degradation::any`] is the
/// "this result is best-effort" flag callers surface to users.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Degradation {
    /// Trajectory points dropped during candidate preparation because no
    /// segment lay within the candidate radius.
    pub dropped_points: u64,
    /// Path joins glued across unroutable gaps: consecutive matched
    /// candidates with no route within the search bound are concatenated
    /// directly, leaving a discontiguous path rather than no path.
    pub disconnected_joins: u64,
    /// Non-finite probability outputs (NaN/inf from corrupted inputs)
    /// clamped to zero before entering the DP.
    pub clamped_scores: u64,
    /// Matches that returned a typed [`MatchError`] and were mapped to an
    /// empty result by an infallible wrapper API.
    pub failed_matches: u64,
}

impl Degradation {
    /// True when any degradation event occurred.
    pub fn any(&self) -> bool {
        self.dropped_points > 0
            || self.disconnected_joins > 0
            || self.clamped_scores > 0
            || self.failed_matches > 0
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &Degradation) {
        self.dropped_points += other.dropped_points;
        self.disconnected_joins += other.disconnected_joins;
        self.clamped_scores += other.clamped_scores;
        self.failed_matches += other.failed_matches;
    }
}

/// Clamps a probability to a finite value, counting the clamp. All engine
/// score paths route model outputs through this before the DP: one NaN must
/// never poison a whole trajectory.
#[inline]
pub(crate) fn sanitize_prob(p: f64, deg: &mut Degradation) -> f64 {
    if p.is_finite() {
        p
    } else {
        deg.clamped_scores += 1;
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_stable() {
        // `find_path` panics with these messages for caller bugs; tests
        // (and downstream log scrapers) match on the prefixes.
        assert_eq!(MatchError::EmptyTrajectory.to_string(), "empty trajectory");
        assert!(MatchError::LayerMismatch { points: 3, layers: 2 }
            .to_string()
            .contains("one layer per point"));
        assert!(MatchError::EmptyLayer { layer: 1 }
            .to_string()
            .contains("empty candidate layer"));
        assert!(MatchError::NoCandidates.to_string().contains("no candidates"));
    }

    #[test]
    fn degradation_merges_and_flags() {
        let mut a = Degradation::default();
        assert!(!a.any());
        let b = Degradation {
            dropped_points: 2,
            disconnected_joins: 1,
            clamped_scores: 0,
            failed_matches: 1,
        };
        a.merge(&b);
        a.merge(&b);
        assert!(a.any());
        assert_eq!(a.dropped_points, 4);
        assert_eq!(a.disconnected_joins, 2);
        assert_eq!(a.failed_matches, 2);
    }

    #[test]
    fn sanitize_clamps_only_non_finite() {
        let mut d = Degradation::default();
        assert_eq!(sanitize_prob(0.5, &mut d), 0.5);
        assert_eq!(d.clamped_scores, 0);
        assert_eq!(sanitize_prob(f64::NAN, &mut d), 0.0);
        assert_eq!(sanitize_prob(f64::INFINITY, &mut d), 0.0);
        assert_eq!(d.clamped_scores, 2);
    }
}
