//! The HMM path-finding engine: Viterbi dynamic programming (Algorithm 1)
//! with shortcut construction (Algorithm 2).
//!
//! The engine is model-agnostic: baselines plug the classic Eq. 2–3
//! probabilities in, LHMM plugs its learned networks in. The path score
//! follows the paper exactly — the *sum* of per-step `W = P_T · P_O`
//! contributions (Eq. 13–14), with `f[c_1] = P_O(c_1)` as initialization.

use crate::error::{sanitize_prob, Degradation, MatchError};
use crate::types::{Candidate, HmmProbabilities, RouteInfo};
use lhmm_geo::Point;
use lhmm_network::graph::RoadNetwork;
use lhmm_network::path::Path;
use lhmm_network::backend::{SpEngine, SpHandle};
use lhmm_network::sp_cache::{SpCache, SpCacheStats, WarmLayer};
use lhmm_neural::Scratch;
use crate::timing::StageTimer;

/// Engine parameters.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Route search bound as a multiple of the straight-line hop.
    pub max_route_factor: f64,
    /// Additive slack on the route search bound, meters (covers tower
    /// positioning error).
    pub route_slack: f64,
    /// Number of shortcut predecessors per candidate (the paper's `K`;
    /// 0 disables Algorithm 2, 1 is the paper's recommendation).
    pub shortcuts: usize,
    /// Shortest-path backend handle (Dijkstra, or a shared contraction
    /// hierarchy). Cloning shares preprocessing, never repeats it.
    pub sp: SpHandle,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_route_factor: 4.0,
            route_slack: 3_000.0,
            shortcuts: 1,
            sp: SpHandle::default(),
        }
    }
}

/// Output of a path-finding run.
#[derive(Clone, Debug)]
pub struct HmmOutput {
    /// The matched path.
    pub path: Path,
    /// The winning candidate-path score (Eq. 14).
    pub score: f64,
    /// Number of trajectory points whose layer was bypassed through a
    /// shortcut-created candidate.
    pub shortcut_points: usize,
    /// Candidates the shortcut pass added, as `(layer index, candidate)` —
    /// these extend the effective candidate road sets (the paper's STM+S
    /// hitting-ratio gain comes exactly from them).
    pub added_candidates: Vec<(usize, Candidate)>,
}

/// The path-finding engine; holds reusable search state for one network.
pub struct HmmEngine {
    sp: SpEngine,
    sp_cache: SpCache,
    /// Engine parameters (mutable between runs: `k`/`K` sweeps).
    pub cfg: EngineConfig,
    /// Scratch arenas loaned to the per-trajectory scorers; keeping them
    /// here lets warm buffers carry across trajectories (the zero-alloc
    /// steady state).
    obs_scratch: Scratch,
    trans_scratch: Scratch,
    /// Wall time accumulated in shortest-path searches/cache lookups since
    /// the last [`Self::take_sp_time`].
    sp_time_s: f64,
    /// Degradation events accumulated since [`Self::take_degradation`].
    degradation: Degradation,
}

impl HmmEngine {
    /// Default shortest-path cache capacity (node pairs).
    pub const DEFAULT_CACHE_CAPACITY: usize = 200_000;

    /// Creates an engine for `net`.
    pub fn new(net: &RoadNetwork, cfg: EngineConfig) -> Self {
        let cache = SpCache::with_backend(net, Self::DEFAULT_CACHE_CAPACITY, &cfg.sp);
        Self::with_cache(net, cfg, cache)
    }

    /// Creates an engine around a caller-built cache (e.g. a shard backed
    /// by a shared [`WarmLayer`] for batch matching).
    pub fn with_cache(net: &RoadNetwork, cfg: EngineConfig, sp_cache: SpCache) -> Self {
        HmmEngine {
            sp: cfg.sp.engine(net),
            sp_cache,
            cfg,
            obs_scratch: Scratch::new(),
            trans_scratch: Scratch::new(),
            sp_time_s: 0.0,
            degradation: Degradation::default(),
        }
    }

    /// Loans out the observation-scorer scratch arena; pair with
    /// [`Self::put_obs_scratch`].
    pub fn take_obs_scratch(&mut self) -> Scratch {
        std::mem::take(&mut self.obs_scratch)
    }

    /// Returns a loaned observation scratch arena to the engine.
    pub fn put_obs_scratch(&mut self, s: Scratch) {
        self.obs_scratch = s;
    }

    /// Loans out the transition-scorer scratch arena; pair with
    /// [`Self::put_trans_scratch`].
    pub fn take_trans_scratch(&mut self) -> Scratch {
        std::mem::take(&mut self.trans_scratch)
    }

    /// Returns a loaned transition scratch arena to the engine.
    pub fn put_trans_scratch(&mut self, s: Scratch) {
        self.trans_scratch = s;
    }

    /// Shortest-path wall time accumulated since the last call, resetting
    /// the counter (read once per match for [`crate::types::MatchStats`]).
    pub fn take_sp_time(&mut self) -> f64 {
        std::mem::take(&mut self.sp_time_s)
    }

    /// Degradation events (glued path gaps, clamped scores) accumulated
    /// since the last call, resetting the counters (read once per match for
    /// [`crate::types::MatchStats`]).
    pub fn take_degradation(&mut self) -> Degradation {
        std::mem::take(&mut self.degradation)
    }

    /// Copies the cache's private entries into a standalone [`WarmLayer`]
    /// (to seed batch workers from a warmup pass).
    pub fn cache_snapshot(&self) -> WarmLayer {
        self.sp_cache.snapshot()
    }

    /// Cache counters split by layer (private hits / warm hits / searches).
    pub fn cache_stats_detailed(&self) -> SpCacheStats {
        self.sp_cache.detailed_stats()
    }

    /// Runs Algorithm 1 (+ Algorithm 2 when `cfg.shortcuts > 0`).
    ///
    /// `pts` are the effective positions/timestamps of the trajectory points
    /// that survived candidate preparation; `layers[i]` are point `i`'s
    /// candidates. Malformed input (length mismatch, empty layer) degrades
    /// to an empty output and bumps `degradation.failed_matches`; use
    /// [`Self::try_find_path`] for a typed error instead.
    pub fn find_path<M: HmmProbabilities>(
        &mut self,
        net: &RoadNetwork,
        pts: &[(Point, f64)],
        layers: Vec<Vec<Candidate>>,
        model: &mut M,
    ) -> HmmOutput {
        match self.try_find_path(net, pts, layers, model) {
            Ok(out) => out,
            Err(_) => {
                self.degradation.failed_matches += 1;
                HmmOutput {
                    path: Path::new(Vec::new()),
                    score: f64::NEG_INFINITY,
                    shortcut_points: 0,
                    added_candidates: Vec::new(),
                }
            }
        }
    }

    /// [`Self::find_path`] with typed errors: [`MatchError::LayerMismatch`]
    /// when `pts` and `layers` disagree in count,
    /// [`MatchError::EmptyTrajectory`] on zero layers, and
    /// [`MatchError::EmptyLayer`] when a supplied layer has no candidate.
    ///
    /// Never panics. Degradation events (path gaps glued across unroutable
    /// hops, non-finite model outputs clamped to zero) are accumulated and
    /// read back via [`Self::take_degradation`].
    pub fn try_find_path<M: HmmProbabilities>(
        &mut self,
        net: &RoadNetwork,
        pts: &[(Point, f64)],
        mut layers: Vec<Vec<Candidate>>,
        model: &mut M,
    ) -> Result<HmmOutput, MatchError> {
        if pts.len() != layers.len() {
            return Err(MatchError::LayerMismatch {
                points: pts.len(),
                layers: layers.len(),
            });
        }
        if layers.is_empty() {
            return Err(MatchError::EmptyTrajectory);
        }
        if let Some(empty) = layers.iter().position(Vec::is_empty) {
            return Err(MatchError::EmptyLayer { layer: empty });
        }
        let n_layers = layers.len();
        let mut deg = Degradation::default();

        // ------------------------------------------------------------
        // Algorithm 1: forward DP.
        // ------------------------------------------------------------
        let mut f: Vec<Vec<f64>> = Vec::with_capacity(n_layers);
        let mut pre: Vec<Vec<Option<(usize, usize)>>> = Vec::with_capacity(n_layers);
        f.push(
            layers[0]
                .iter()
                .map(|c| sanitize_prob(c.obs, &mut deg))
                .collect(),
        );
        pre.push(vec![None; layers[0].len()]);

        // W matrices per transition (layer i-1 -> i), kept for Eq. 20.
        let mut w_all: Vec<Vec<Vec<f64>>> = Vec::with_capacity(n_layers.saturating_sub(1));

        for i in 1..n_layers {
            let bound = pts[i - 1].0.distance(pts[i].0) * self.cfg.max_route_factor
                + self.cfg.route_slack;
            let (prev_layer, cur_layer) = {
                let (a, b) = layers.split_at(i);
                (&a[i - 1], &b[0])
            };
            let mut w_i = vec![vec![0.0f64; cur_layer.len()]; prev_layer.len()];
            let mut f_i = vec![f64::NEG_INFINITY; cur_layer.len()];
            let mut pre_i = vec![None; cur_layer.len()];

            for (j, prev) in prev_layer.iter().enumerate() {
                let routes = self.routes_from(net, prev, cur_layer, bound);
                for (k, cur) in cur_layer.iter().enumerate() {
                    let trans = model.transition(i, prev, cur, &routes[k]);
                    let w = sanitize_prob(trans * cur.obs, &mut deg);
                    w_i[j][k] = w;
                    let cand_score = f[i - 1][j] + w;
                    if cand_score > f_i[k] {
                        f_i[k] = cand_score;
                        pre_i[k] = Some((i - 1, j));
                    }
                }
            }
            w_all.push(w_i);
            f.push(f_i);
            pre.push(pre_i);
        }

        // ------------------------------------------------------------
        // Algorithm 2: shortcut construction.
        // ------------------------------------------------------------
        let orig_len: Vec<usize> = layers.iter().map(Vec::len).collect();
        let mut added_candidates: Vec<(usize, Candidate)> = Vec::new();
        if self.cfg.shortcuts > 0 && n_layers >= 3 {
            for i in 2..n_layers {
                let bound = pts[i - 2].0.distance(pts[i].0) * self.cfg.max_route_factor
                    + self.cfg.route_slack;
                for k in 0..orig_len[i] {
                    // Eq. 20: rank one-hop predecessors j by the best
                    // two-step score through any middle candidate l.
                    let mut scored: Vec<(f64, usize)> = (0..orig_len[i - 2])
                        .map(|j| {
                            let best = (0..orig_len[i - 1])
                                .map(|l| w_all[i - 2][j][l] + w_all[i - 1][l][k])
                                .fold(f64::NEG_INFINITY, f64::max);
                            (f[i - 2][j] + best, j)
                        })
                        .collect();
                    scored.sort_by(|a, b| b.0.total_cmp(&a.0));
                    scored.truncate(self.cfg.shortcuts);

                    for &(_, j) in &scored {
                        let cj = layers[i - 2][j];
                        let ck = layers[i][k];
                        let t0 = StageTimer::start();
                        let route = self.sp_cache.route_between_projections(
                            net, cj.seg, cj.t, ck.seg, ck.t, bound,
                        );
                        self.sp_time_s += t0.elapsed_s();
                        let Some(route) = route else {
                            continue;
                        };
                        // Project the skipped point onto the shortcut to
                        // restore a middle road (shortcut score setting).
                        let mid_pos = pts[i - 1].0;
                        let Some((u_seg, u_proj)) = route
                            .segments
                            .iter()
                            .map(|&s| (s, net.project(mid_pos, s)))
                            .min_by(|a, b| a.1.distance.total_cmp(&b.1.distance))
                        else {
                            continue;
                        };
                        let obs_u =
                            sanitize_prob(model.observation(i - 1, u_seg, u_proj.distance), &mut deg);
                        let cand_u = Candidate {
                            seg: u_seg,
                            t: u_proj.t,
                            obs: obs_u,
                        };
                        let r_ju = self.route_info_between(net, &cj, &cand_u, bound);
                        let r_uk = self.route_info_between(net, &cand_u, &ck, bound);
                        let w1 =
                            sanitize_prob(model.transition(i - 1, &cj, &cand_u, &r_ju) * obs_u, &mut deg);
                        let w2 =
                            sanitize_prob(model.transition(i, &cand_u, &ck, &r_uk) * ck.obs, &mut deg);
                        let f_new = f[i - 2][j] + w1 + w2; // Eq. 21
                        if f_new > f[i][k] {
                            layers[i - 1].push(cand_u);
                            added_candidates.push((i - 1, cand_u));
                            let f_u = f[i - 2][j] + w1;
                            f[i - 1].push(f_u);
                            pre[i - 1].push(Some((i - 2, j)));
                            let u_idx = layers[i - 1].len() - 1;
                            f[i][k] = f_new;
                            pre[i][k] = Some((i - 1, u_idx));
                        }
                    }
                }
            }
        }

        // ------------------------------------------------------------
        // Backtracking and path assembly.
        // ------------------------------------------------------------
        // Layers are validated non-empty above; `unwrap_or` is unreachable.
        let (best_k, best_score) = f[n_layers - 1]
            .iter()
            .enumerate()
            .map(|(k, &s)| (k, s))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap_or((0, f64::NEG_INFINITY));

        let mut chain: Vec<(usize, usize)> = Vec::with_capacity(n_layers);
        let mut cursor = Some((n_layers - 1, best_k));
        while let Some((li, ci)) = cursor {
            chain.push((li, ci));
            cursor = pre[li][ci];
        }
        chain.reverse();

        let shortcut_points = chain
            .iter()
            .filter(|&&(li, ci)| ci >= orig_len[li])
            .count();

        let mut path = Path::empty();
        let mut prev_cand: Option<Candidate> = None;
        for &(li, ci) in &chain {
            let cand = layers[li][ci];
            match prev_cand {
                None => path.segments.push(cand.seg),
                Some(p) => {
                    let bound = 10.0 * self.cfg.route_slack
                        + self.cfg.max_route_factor * net.bbox().width().max(net.bbox().height());
                    let t0 = StageTimer::start();
                    let route = self.sp_cache.route_between_projections(
                        net, p.seg, p.t, cand.seg, cand.t, bound,
                    );
                    self.sp_time_s += t0.elapsed_s();
                    match route {
                        Some(r) => path.extend_with(&r.segments),
                        None => {
                            // No route within bound: glue the path across
                            // the gap rather than fail the whole match.
                            deg.disconnected_joins += 1;
                            path.segments.push(cand.seg);
                        }
                    }
                }
            }
            prev_cand = Some(cand);
        }
        path.dedup_consecutive();
        self.degradation.merge(&deg);

        Ok(HmmOutput {
            path,
            score: best_score,
            shortcut_points,
            added_candidates,
        })
    }

    /// Routes from one candidate to every candidate of the next layer in a
    /// single one-to-many Dijkstra.
    fn routes_from(
        &mut self,
        net: &RoadNetwork,
        prev: &Candidate,
        cur_layer: &[Candidate],
        bound: f64,
    ) -> Vec<RouteInfo> {
        let prev_seg = net.segment(prev.seg);
        let head = prev_seg.length * (1.0 - prev.t);
        let targets: Vec<_> = cur_layer
            .iter()
            .map(|c| net.segment(c.seg).from)
            .collect();
        let t0 = StageTimer::start();
        let inner = self
            .sp
            .node_to_nodes(net, prev_seg.to, &targets, bound);
        self.sp_time_s += t0.elapsed_s();
        cur_layer
            .iter()
            .zip(inner)
            .map(|(cur, inner_route)| {
                // Staying on (or advancing along) the same segment.
                if cur.seg == prev.seg && cur.t >= prev.t {
                    return RouteInfo {
                        found: true,
                        length: prev_seg.length * (cur.t - prev.t),
                        segments: vec![prev.seg],
                    };
                }
                match inner_route {
                    Some(r) => {
                        let tail = net.segment(cur.seg).length * cur.t;
                        let mut segments = Vec::with_capacity(r.segments.len() + 2);
                        segments.push(prev.seg);
                        segments.extend_from_slice(&r.segments);
                        segments.push(cur.seg);
                        RouteInfo {
                            found: true,
                            length: head + r.length + tail,
                            segments,
                        }
                    }
                    None => RouteInfo::missing(),
                }
            })
            .collect()
    }

    fn route_info_between(
        &mut self,
        net: &RoadNetwork,
        a: &Candidate,
        b: &Candidate,
        bound: f64,
    ) -> RouteInfo {
        let t0 = StageTimer::start();
        let route = self
            .sp_cache
            .route_between_projections(net, a.seg, a.t, b.seg, b.t, bound);
        self.sp_time_s += t0.elapsed_s();
        match route {
            Some(r) => RouteInfo {
                found: true,
                length: r.length,
                segments: r.segments,
            },
            None => RouteInfo::missing(),
        }
    }

    /// Shortest-path cache statistics `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.sp_cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{distance_layers, nearest_segments, to_candidates};
    use crate::classic::{ClassicModel, ClassicObservation, ClassicTransition};
    use lhmm_network::builder::NetworkBuilder;
    use lhmm_network::graph::RoadClass;
    use lhmm_network::spatial::SpatialIndex;

    /// A simple two-row ladder network:
    ///
    /// ```text
    ///  y=100:  4 -- 5 -- 6 -- 7      (north row)
    ///  y=0:    0 -- 1 -- 2 -- 3      (south row)
    /// ```
    /// with vertical rungs; all two-way, 100 m spacing.
    fn ladder() -> RoadNetwork {
        let mut b = NetworkBuilder::new();
        let mut ids = Vec::new();
        for y in 0..2 {
            for x in 0..4 {
                ids.push(b.add_node(Point::new(x as f64 * 100.0, y as f64 * 100.0)));
            }
        }
        for x in 0..3 {
            b.add_two_way(ids[x], ids[x + 1], RoadClass::Local).unwrap();
            b.add_two_way(ids[4 + x], ids[4 + x + 1], RoadClass::Local)
                .unwrap();
        }
        for x in 0..4 {
            b.add_two_way(ids[x], ids[4 + x], RoadClass::Local).unwrap();
        }
        b.build().unwrap()
    }

    fn classic_for(positions: &[Point]) -> ClassicModel {
        ClassicModel::new(
            ClassicObservation {
                mu: 0.0,
                sigma: 60.0,
            },
            ClassicTransition { beta: 120.0 },
            positions.to_vec(),
        )
    }

    #[test]
    fn matches_a_straight_drive() {
        let net = ladder();
        let index = SpatialIndex::build(&net, 100.0);
        // Points move east along the south row, slightly off-road.
        let positions = vec![
            Point::new(10.0, 12.0),
            Point::new(120.0, -9.0),
            Point::new(230.0, 11.0),
            Point::new(295.0, -5.0),
        ];
        let mut model = classic_for(&positions);
        let (layers, kept) = distance_layers(&net, &index, &positions, 4, 500.0, &mut model);
        assert!(kept.iter().all(|&k| k));
        let pts: Vec<(Point, f64)> = positions
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as f64 * 30.0))
            .collect();
        let mut engine = HmmEngine::new(&net, EngineConfig::default());
        let out = engine.find_path(&net, &pts, layers, &mut model);
        // The matched path must stay on the south row.
        let poly = out.path.polyline(&net);
        assert!(!out.path.is_empty());
        assert!(
            poly.iter().all(|p| p.y.abs() < 1.0),
            "path strayed north: {poly:?}"
        );
        assert!(out.score > 0.0);
    }

    #[test]
    fn path_is_contiguous_and_monotone_east() {
        let net = ladder();
        let index = SpatialIndex::build(&net, 100.0);
        let positions = vec![
            Point::new(20.0, 40.0),
            Point::new(160.0, 60.0),
            Point::new(290.0, 50.0),
        ];
        let mut model = classic_for(&positions);
        let (layers, _) = distance_layers(&net, &index, &positions, 6, 500.0, &mut model);
        let pts: Vec<(Point, f64)> = positions
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as f64 * 30.0))
            .collect();
        let mut engine = HmmEngine::new(&net, EngineConfig::default());
        let out = engine.find_path(&net, &pts, layers, &mut model);
        assert!(out.path.is_contiguous(&net), "{:?}", out.path);
    }

    /// Build a scenario where the middle point's candidate set misses the
    /// true road entirely (an unqualified candidate road set): without
    /// shortcuts the path detours north; with shortcuts the detour is
    /// avoided (Observation 1 / Fig. 5).
    #[test]
    fn shortcuts_skip_unqualified_candidate_sets() {
        let net = ladder();
        let index = SpatialIndex::build(&net, 100.0);
        // True drive: straight east along the south row. The middle point is
        // a noisy observation displaced far north.
        let positions = vec![
            Point::new(10.0, 5.0),
            Point::new(150.0, 95.0), // noisy: nearest roads are the north row
            Point::new(290.0, 5.0),
        ];
        let mut model = classic_for(&positions);
        // Handcraft layers: endpoints get south-row candidates, the middle
        // point gets ONLY north-row candidates (unqualified set).
        let south = |pos: Point, model: &mut ClassicModel, i: usize| {
            let pairs: Vec<_> = nearest_segments(&net, &index, pos, 12, 500.0)
                .into_iter()
                .filter(|&(s, _)| {
                    net.segment_midpoint(s).y < 10.0
                })
                .collect();
            to_candidates(model, i, &pairs)
        };
        let north_only = |pos: Point, model: &mut ClassicModel, i: usize| {
            let pairs: Vec<_> = nearest_segments(&net, &index, pos, 12, 500.0)
                .into_iter()
                .filter(|&(s, _)| net.segment_midpoint(s).y > 90.0)
                .collect();
            to_candidates(model, i, &pairs)
        };
        let layers = vec![
            south(positions[0], &mut model, 0),
            north_only(positions[1], &mut model, 1),
            south(positions[2], &mut model, 2),
        ];
        assert!(layers.iter().all(|l| !l.is_empty()));
        let pts: Vec<(Point, f64)> = positions
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as f64 * 30.0))
            .collect();

        // Without shortcuts: forced through the north row (detour).
        let mut engine_plain = HmmEngine::new(
            &net,
            EngineConfig {
                shortcuts: 0,
                ..Default::default()
            },
        );
        let plain = engine_plain.find_path(&net, &pts, layers.clone(), &mut model);
        let plain_poly = plain.path.polyline(&net);
        assert!(
            plain_poly.iter().any(|p| p.y > 90.0),
            "plain path unexpectedly avoided the detour"
        );

        // With shortcuts: the noisy layer can be bypassed.
        let mut engine_sc = HmmEngine::new(
            &net,
            EngineConfig {
                shortcuts: 1,
                ..Default::default()
            },
        );
        let sc = engine_sc.find_path(&net, &pts, layers, &mut model);
        let sc_poly = sc.path.polyline(&net);
        assert!(
            sc_poly.iter().all(|p| p.y < 90.0),
            "shortcut path still detoured: {sc_poly:?}"
        );
        assert!(sc.shortcut_points >= 1);
        // The shortcut path length is shorter than the detour path.
        assert!(sc.path.length(&net) < plain.path.length(&net));
    }

    #[test]
    fn mismatched_layers_degrade_without_panicking() {
        let net = ladder();
        let mut model = classic_for(&[Point::ORIGIN]);
        let mut engine = HmmEngine::new(&net, EngineConfig::default());
        let out = engine.find_path(&net, &[(Point::ORIGIN, 0.0)], vec![], &mut model);
        assert!(out.path.segments.is_empty());
        assert_eq!(engine.take_degradation().failed_matches, 1);
    }

    #[test]
    fn try_find_path_returns_typed_errors() {
        let net = ladder();
        let mut model = classic_for(&[Point::ORIGIN]);
        let mut engine = HmmEngine::new(&net, EngineConfig::default());
        assert_eq!(
            engine
                .try_find_path(&net, &[(Point::ORIGIN, 0.0)], vec![], &mut model)
                .err(),
            Some(crate::error::MatchError::LayerMismatch {
                points: 1,
                layers: 0
            })
        );
        assert_eq!(
            engine.try_find_path(&net, &[], vec![], &mut model).err(),
            Some(crate::error::MatchError::EmptyTrajectory)
        );
        assert_eq!(
            engine
                .try_find_path(&net, &[(Point::ORIGIN, 0.0)], vec![vec![]], &mut model)
                .err(),
            Some(crate::error::MatchError::EmptyLayer { layer: 0 })
        );
    }

    #[test]
    fn non_finite_observations_are_clamped_not_fatal() {
        let net = ladder();
        let index = SpatialIndex::build(&net, 100.0);
        let positions = vec![Point::new(10.0, 5.0), Point::new(150.0, 5.0)];
        let mut model = classic_for(&positions);
        let mut layers = Vec::new();
        for (i, &p) in positions.iter().enumerate() {
            let pairs = nearest_segments(&net, &index, p, 4, 500.0);
            layers.push(to_candidates(&mut model, i, &pairs));
        }
        // Poison one candidate's observation probability.
        layers[0][0].obs = f64::NAN;
        let pts: Vec<(Point, f64)> = positions
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as f64 * 30.0))
            .collect();
        let mut engine = HmmEngine::new(&net, EngineConfig::default());
        let out = engine
            .try_find_path(&net, &pts, layers, &mut model)
            .expect("clamped, not fatal");
        assert!(!out.path.is_empty());
        assert!(out.score.is_finite());
        let deg = engine.take_degradation();
        assert!(deg.clamped_scores >= 1, "{deg:?}");
        // Counters reset after take.
        assert_eq!(engine.take_degradation(), Degradation::default());
    }

    /// Regression pin for Algorithm 2 (paper §IV-E): a hand-built middle
    /// layer whose candidates are all unqualified (wrong side of the map)
    /// must *activate* a shortcut — adding at least one candidate — and the
    /// final path must still be connected.
    #[test]
    fn all_unqualified_layer_activates_shortcut_with_connected_route() {
        let net = ladder();
        let index = SpatialIndex::build(&net, 100.0);
        let positions = vec![
            Point::new(10.0, 5.0),
            Point::new(150.0, 95.0),
            Point::new(290.0, 5.0),
        ];
        let mut model = classic_for(&positions);
        let south = |pos: Point, model: &mut ClassicModel, i: usize| {
            let pairs: Vec<_> = nearest_segments(&net, &index, pos, 12, 500.0)
                .into_iter()
                .filter(|&(s, _)| net.segment_midpoint(s).y < 10.0)
                .collect();
            to_candidates(model, i, &pairs)
        };
        // The middle layer only carries north-row candidates: every one is
        // unqualified for the true (south-row) drive.
        let north_only = |pos: Point, model: &mut ClassicModel, i: usize| {
            let pairs: Vec<_> = nearest_segments(&net, &index, pos, 12, 500.0)
                .into_iter()
                .filter(|&(s, _)| net.segment_midpoint(s).y > 90.0)
                .collect();
            to_candidates(model, i, &pairs)
        };
        let layers = vec![
            south(positions[0], &mut model, 0),
            north_only(positions[1], &mut model, 1),
            south(positions[2], &mut model, 2),
        ];
        let pts: Vec<(Point, f64)> = positions
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as f64 * 30.0))
            .collect();
        let mut engine = HmmEngine::new(&net, EngineConfig::default());
        let out = engine
            .try_find_path(&net, &pts, layers, &mut model)
            .expect("unqualified layer must degrade, not fail");
        assert!(
            !out.added_candidates.is_empty(),
            "shortcut construction never activated"
        );
        assert!(out.shortcut_points >= 1);
        assert!(out.path.is_contiguous(&net), "{:?}", out.path);
        // The added candidates sit on the middle layer.
        assert!(out.added_candidates.iter().all(|&(li, _)| li == 1));
    }

    #[test]
    fn single_point_trajectory_returns_best_candidate() {
        let net = ladder();
        let index = SpatialIndex::build(&net, 100.0);
        let pos = Point::new(150.0, 8.0);
        let mut model = classic_for(&[pos]);
        let pairs = nearest_segments(&net, &index, pos, 5, 500.0);
        let layers = vec![to_candidates(&mut model, 0, &pairs)];
        let mut engine = HmmEngine::new(&net, EngineConfig::default());
        let out = engine.find_path(&net, &[(pos, 0.0)], layers, &mut model);
        assert_eq!(out.path.len(), 1);
        // The single matched segment is at the minimum distance (twin
        // directed segments tie, so compare distances rather than ids).
        let matched_dist = net.distance_to_segment(pos, out.path.segments[0]);
        assert!((matched_dist - pairs[0].1.distance).abs() < 1e-9);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::classic::{ClassicModel, ClassicObservation, ClassicTransition};
    use lhmm_network::generators::{generate_city, GeneratorConfig};
    use lhmm_network::spatial::SpatialIndex;
    use proptest::prelude::*;

    /// Exhaustive path enumeration over small candidate layers: the DP
    /// result (without shortcuts) must equal the best enumerated path.
    fn brute_force_best(
        net: &RoadNetwork,
        pts: &[(Point, f64)],
        layers: &[Vec<Candidate>],
        model: &mut ClassicModel,
        engine: &mut HmmEngine,
    ) -> f64 {
        #[allow(clippy::too_many_arguments)]
        fn recurse(
            net: &RoadNetwork,
            pts: &[(Point, f64)],
            layers: &[Vec<Candidate>],
            model: &mut ClassicModel,
            engine: &mut HmmEngine,
            i: usize,
            prev: usize,
            score: f64,
            best: &mut f64,
        ) {
            if i == layers.len() {
                if score > *best {
                    *best = score;
                }
                return;
            }
            let bound = pts[i - 1].0.distance(pts[i].0) * engine.cfg.max_route_factor
                + engine.cfg.route_slack;
            let prev_cand = layers[i - 1][prev];
            for (k, cur) in layers[i].iter().enumerate() {
                let route = engine.route_info_between(net, &prev_cand, cur, bound);
                let w = model.transition(i, &prev_cand, cur, &route) * cur.obs;
                recurse(net, pts, layers, model, engine, i + 1, k, score + w, best);
            }
        }
        let mut best = f64::NEG_INFINITY;
        for (j, c) in layers[0].iter().enumerate() {
            recurse(net, pts, layers, model, engine, 1, j, c.obs, &mut best);
        }
        best
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Viterbi (no shortcuts) finds the same optimum as exhaustive
        /// enumeration on tiny candidate sets.
        #[test]
        fn viterbi_matches_brute_force(seed in 0u64..50, px in 0.0..1000.0f64, py in 0.0..1000.0f64) {
            let net = generate_city(&GeneratorConfig::small_test(seed));
            let index = SpatialIndex::build(&net, 200.0);
            // A short synthetic 3-point trajectory moving east.
            let positions = vec![
                Point::new(px, py),
                Point::new(px + 260.0, py + 60.0),
                Point::new(px + 520.0, py - 40.0),
            ];
            let mut model = ClassicModel::new(
                ClassicObservation::cellular(),
                ClassicTransition::cellular(),
                positions.clone(),
            );
            let mut layers = Vec::new();
            for pos in &positions {
                let pairs = crate::candidates::nearest_segments(&net, &index, *pos, 3, 2_000.0);
                prop_assume!(!pairs.is_empty());
                layers.push(crate::candidates::to_candidates(&mut model, 0, &pairs));
            }
            let pts: Vec<(Point, f64)> = positions
                .iter()
                .enumerate()
                .map(|(i, &p)| (p, i as f64 * 30.0))
                .collect();
            let mut engine = HmmEngine::new(&net, EngineConfig { shortcuts: 0, ..Default::default() });
            let out = engine.find_path(&net, &pts, layers.clone(), &mut model);
            let mut engine2 = HmmEngine::new(&net, EngineConfig { shortcuts: 0, ..Default::default() });
            let brute = brute_force_best(&net, &pts, &layers, &mut model, &mut engine2);
            prop_assert!((out.score - brute).abs() < 1e-9,
                "viterbi {} vs brute force {}", out.score, brute);
        }

        /// Adding shortcuts never lowers the winning score.
        #[test]
        fn shortcuts_never_hurt_score(seed in 0u64..50) {
            let net = generate_city(&GeneratorConfig::small_test(seed));
            let index = SpatialIndex::build(&net, 200.0);
            let positions = vec![
                Point::new(300.0, 300.0),
                Point::new(600.0, 350.0),
                Point::new(900.0, 280.0),
                Point::new(1200.0, 320.0),
            ];
            let mut model = ClassicModel::new(
                ClassicObservation::cellular(),
                ClassicTransition::cellular(),
                positions.clone(),
            );
            let mut layers = Vec::new();
            for pos in &positions {
                let pairs = crate::candidates::nearest_segments(&net, &index, *pos, 4, 2_000.0);
                prop_assume!(!pairs.is_empty());
                layers.push(crate::candidates::to_candidates(&mut model, 0, &pairs));
            }
            let pts: Vec<(Point, f64)> = positions
                .iter()
                .enumerate()
                .map(|(i, &p)| (p, i as f64 * 30.0))
                .collect();
            let mut plain = HmmEngine::new(&net, EngineConfig { shortcuts: 0, ..Default::default() });
            let s0 = plain.find_path(&net, &pts, layers.clone(), &mut model).score;
            let mut sc = HmmEngine::new(&net, EngineConfig { shortcuts: 1, ..Default::default() });
            let s1 = sc.find_path(&net, &pts, layers, &mut model).score;
            prop_assert!(s1 >= s0 - 1e-9, "shortcut score {} < plain {}", s1, s0);
        }
    }
}
