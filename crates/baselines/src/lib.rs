//! Reimplementations of the ten baselines LHMM is compared against
//! (paper §V-A4), plus the shortcut-augmented STM+S of Table III.
//!
//! Each baseline keeps the mechanism its original paper is known for:
//!
//! | module | method | mechanism |
//! |---|---|---|
//! | [`heuristic`] | STM \[8\] | topology + temporal (speed) analysis |
//! | [`heuristic`] | STM+S | STM with LHMM's shortcut pass |
//! | [`ivmm`] | IVMM \[10\] | interactive voting between points |
//! | [`heuristic`] | IFM \[32\] | moving-speed information fusion |
//! | [`heuristic`] | MCM \[34\] | common sub-sequence route tracking |
//! | [`heuristic`] | CLSTERS \[41\] | trajectory calibration then HMM |
//! | [`heuristic`] | SnapNet \[12\] | map hints + direction/turn heuristics |
//! | [`heuristic`] | THMM \[42\] | geometric/reachability constraints |
//! | [`seq2seq`] | DMM \[15\] | GRU seq2seq, constrained decoding |
//! | [`seq2seq`] | DeepMM \[37\] | seq2seq + attention + augmentation |
//! | [`seq2seq`] | TransformerMM \[38\] | self-attention encoder seq2seq |

#![forbid(unsafe_code)]

pub mod heuristic;
pub mod ivmm;
pub mod seq2seq;

pub use heuristic::{clsters, ifm, mcm, snapnet, stm, stm_s, thmm, HeuristicHmm};
pub use ivmm::Ivmm;
pub use seq2seq::{Seq2SeqConfig, Seq2SeqMatcher};
