//! Heuristic HMM baselines sharing the engine with method-specific
//! probability presets.
//!
//! The GPS-era and CTMM-era HMM baselines all share the Eq. 2–3 skeleton and
//! differ in which extra heuristics modulate the probabilities — exactly how
//! the original papers position themselves. [`ModelPreset`] captures those
//! knobs; the factory functions ([`stm`], [`ifm`], …) instantiate each
//! published combination.

use lhmm_cellsim::traj::CellularTrajectory;
use lhmm_core::candidates::nearest_segments;
use lhmm_core::classic::{ClassicObservation, ClassicTransition};
use lhmm_core::types::{
    Candidate, HmmProbabilities, MapMatcher, MatchContext, MatchResult, RouteInfo,
};
use lhmm_core::viterbi::{EngineConfig, HmmEngine};
use lhmm_geo::Point;
use lhmm_network::graph::{RoadNetwork, SegmentId};
use lhmm_network::path::Path;

/// Heuristic knobs distinguishing the baselines.
#[derive(Clone, Debug)]
pub struct ModelPreset {
    /// Gaussian observation (Eq. 2).
    pub obs: ClassicObservation,
    /// Exponential transition (Eq. 3).
    pub trans: ClassicTransition,
    /// Weight of the temporal/speed-consistency factor (STM, IFM). 0 = off.
    pub speed_weight: f64,
    /// Maximum plausible speed, m/s.
    pub max_speed: f64,
    /// Turn penalty per radian of route turning (SnapNet). 0 = off.
    pub turn_penalty: f64,
    /// Reachability pruning: routes longer than
    /// `factor · hop + slack` are rejected (THMM). `INFINITY` = off.
    pub reachability_factor: f64,
    /// Additive reachability slack, meters.
    pub reachability_slack: f64,
    /// Weight of the common-subsequence corridor factor (MCM). 0 = off.
    pub corridor_weight: f64,
    /// Corridor half-width for the MCM factor, meters.
    pub corridor_width: f64,
}

impl Default for ModelPreset {
    fn default() -> Self {
        ModelPreset {
            obs: ClassicObservation::cellular(),
            trans: ClassicTransition::cellular(),
            speed_weight: 0.0,
            max_speed: 34.0,
            turn_penalty: 0.0,
            reachability_factor: f64::INFINITY,
            reachability_slack: 0.0,
            corridor_weight: 0.0,
            corridor_width: 400.0,
        }
    }
}

/// Per-trajectory heuristic model.
struct HeuristicModel<'a> {
    net: &'a RoadNetwork,
    preset: ModelPreset,
    positions: Vec<Point>,
    times: Vec<f64>,
}

impl HmmProbabilities for HeuristicModel<'_> {
    fn observation(&mut self, _i: usize, _seg: SegmentId, dist: f64) -> f64 {
        self.preset.obs.prob(dist)
    }

    fn transition(
        &mut self,
        i: usize,
        _prev: &Candidate,
        cur: &Candidate,
        route: &RouteInfo,
    ) -> f64 {
        if !route.found {
            return 0.0;
        }
        let d = self.positions[i - 1].distance(self.positions[i]);
        // Reachability pruning (THMM).
        if route.length
            > self.preset.reachability_factor * d + self.preset.reachability_slack
        {
            return 0.0;
        }
        let mut p = self.preset.trans.prob(d, route.length);

        // Temporal/speed analysis (STM, IFM): implied speed along the route
        // vs the physically plausible and free-flow speeds.
        if self.preset.speed_weight > 0.0 {
            let dt = (self.times[i] - self.times[i - 1]).max(1.0);
            let v = route.length / dt;
            let over = (v - self.preset.max_speed).max(0.0) / self.preset.max_speed;
            let free_flow = self.net.segment(cur.seg).class.free_flow_speed();
            let mismatch = (v - free_flow).abs() / free_flow;
            let factor = (-over).exp() * (-self.preset.speed_weight * mismatch).exp();
            p *= factor.clamp(0.0, 1.0);
        }

        // Fewer-turns heuristic (SnapNet).
        if self.preset.turn_penalty > 0.0 {
            let turn = Path::new(route.segments.clone()).total_turn(self.net);
            p *= (-self.preset.turn_penalty * turn).exp();
        }

        // Common-subsequence corridor factor (MCM): the fraction of the
        // route lying inside a corridor around the straight hop.
        if self.preset.corridor_weight > 0.0 && !route.segments.is_empty() {
            let a = self.positions[i - 1];
            let b = self.positions[i];
            let inside = route
                .segments
                .iter()
                .filter(|&&s| {
                    let mid = self.net.segment_midpoint(s);
                    lhmm_geo::segment::distance_to_segment(mid, a, b)
                        <= self.preset.corridor_width
                })
                .count() as f64
                / route.segments.len() as f64;
            p *= (1.0 - self.preset.corridor_weight) + self.preset.corridor_weight * inside;
        }

        p
    }
}

/// A heuristic HMM baseline: preset + candidate preparation + engine.
pub struct HeuristicHmm {
    name: String,
    preset: ModelPreset,
    /// Candidates per point (paper: 45 for the baselines).
    pub k: usize,
    /// Candidate search radius, meters.
    pub radius: f64,
    /// Extra mean-smoothing window applied to positions (CLSTERS
    /// calibration); 0 = off.
    pub extra_smooth: usize,
    engine: HmmEngine,
}

impl HeuristicHmm {
    /// Builds a baseline from its preset.
    pub fn new(
        net: &RoadNetwork,
        name: impl Into<String>,
        preset: ModelPreset,
        shortcuts: usize,
    ) -> Self {
        HeuristicHmm {
            name: name.into(),
            preset,
            k: 45,
            radius: 3_000.0,
            extra_smooth: 0,
            engine: HmmEngine::new(
                net,
                EngineConfig {
                    shortcuts,
                    ..Default::default()
                },
            ),
        }
    }

    /// Number of shortcut edges per candidate (0 for plain baselines).
    pub fn shortcuts(&self) -> usize {
        self.engine.cfg.shortcuts
    }
}

impl MapMatcher for HeuristicHmm {
    fn name(&self) -> &str {
        &self.name
    }

    fn match_trajectory(
        &mut self,
        ctx: &MatchContext<'_>,
        traj: &CellularTrajectory,
    ) -> MatchResult {
        if traj.is_empty() {
            return MatchResult::empty();
        }
        let mut positions: Vec<Point> = traj.effective_positions();
        if self.extra_smooth > 0 {
            positions = smooth_positions(&positions, self.extra_smooth);
        }
        let times: Vec<f64> = traj.points.iter().map(|p| p.t).collect();

        let mut model = HeuristicModel {
            net: ctx.net,
            preset: self.preset.clone(),
            positions: positions.clone(),
            times: times.clone(),
        };

        // Candidate preparation (distance top-k).
        let mut kept = Vec::new();
        let mut layers = Vec::new();
        for (i, &pos) in positions.iter().enumerate() {
            let pairs = nearest_segments(ctx.net, ctx.index, pos, self.k, self.radius);
            if pairs.is_empty() {
                continue;
            }
            let layer: Vec<Candidate> = pairs
                .iter()
                .map(|&(seg, proj)| Candidate {
                    seg,
                    t: proj.t,
                    obs: model.observation(i, seg, proj.distance),
                })
                .collect();
            kept.push(i);
            layers.push(layer);
        }
        if kept.is_empty() {
            return MatchResult::empty();
        }

        let mut candidate_sets: Vec<Vec<SegmentId>> = vec![Vec::new(); traj.len()];
        for (ki, layer) in kept.iter().zip(&layers) {
            candidate_sets[*ki] = layer.iter().map(|c| c.seg).collect();
        }

        // Re-index the model to the kept points.
        model.positions = kept.iter().map(|&i| positions[i]).collect();
        model.times = kept.iter().map(|&i| times[i]).collect();
        let pts: Vec<(Point, f64)> = model
            .positions
            .iter()
            .zip(&model.times)
            .map(|(&p, &t)| (p, t))
            .collect();

        let out = self.engine.find_path(ctx.net, &pts, layers, &mut model);
        for (layer_idx, cand) in &out.added_candidates {
            candidate_sets[kept[*layer_idx]].push(cand.seg);
        }
        MatchResult {
            path: out.path,
            candidate_sets: Some(candidate_sets),
        }
    }
}

/// Simple centered mean smoothing (the CLSTERS calibration stand-in).
fn smooth_positions(positions: &[Point], window: usize) -> Vec<Point> {
    (0..positions.len())
        .map(|i| {
            let lo = i.saturating_sub(window);
            let hi = (i + window + 1).min(positions.len());
            // The window always contains index `i`, so the centroid
            // exists; keep the raw point if it ever does not.
            lhmm_geo::point::centroid(&positions[lo..hi]).unwrap_or(positions[i])
        })
        .collect()
}

// ---------------------------------------------------------------------
// Factory functions: one per published baseline.
// ---------------------------------------------------------------------

/// ST-Matching \[8\]: topology + temporal (speed) analysis.
pub fn stm(net: &RoadNetwork) -> HeuristicHmm {
    HeuristicHmm::new(
        net,
        "STM",
        ModelPreset {
            speed_weight: 0.3,
            ..Default::default()
        },
        0,
    )
}

/// STM augmented with LHMM's shortcut pass (Table III's STM+S).
pub fn stm_s(net: &RoadNetwork) -> HeuristicHmm {
    HeuristicHmm::new(
        net,
        "STM+S",
        ModelPreset {
            speed_weight: 0.3,
            ..Default::default()
        },
        1,
    )
}

/// IF-Matching \[32\]: stronger speed information fusion.
pub fn ifm(net: &RoadNetwork) -> HeuristicHmm {
    HeuristicHmm::new(
        net,
        "IFM",
        ModelPreset {
            speed_weight: 0.45,
            ..Default::default()
        },
        0,
    )
}

/// MCM \[34\]: common sub-sequence between trajectory and routes.
pub fn mcm(net: &RoadNetwork) -> HeuristicHmm {
    HeuristicHmm::new(
        net,
        "MCM",
        ModelPreset {
            corridor_weight: 0.6,
            corridor_width: 500.0,
            ..Default::default()
        },
        0,
    )
}

/// CLSTERS \[41\]: calibration (extra smoothing) before a classic HMM.
pub fn clsters(net: &RoadNetwork) -> HeuristicHmm {
    let mut m = HeuristicHmm::new(net, "CLSTERS", ModelPreset::default(), 0);
    m.extra_smooth = 2;
    m
}

/// SnapNet \[12\]: digital-map hints with direction/turn heuristics.
pub fn snapnet(net: &RoadNetwork) -> HeuristicHmm {
    HeuristicHmm::new(
        net,
        "SNet",
        ModelPreset {
            turn_penalty: 0.15,
            speed_weight: 0.2,
            ..Default::default()
        },
        0,
    )
}

/// THMM \[42\]: geometric + reachability constraints tailored for cellular
/// data.
pub fn thmm(net: &RoadNetwork) -> HeuristicHmm {
    HeuristicHmm::new(
        net,
        "THMM",
        ModelPreset {
            reachability_factor: 3.0,
            reachability_slack: 2_000.0,
            turn_penalty: 0.08,
            ..Default::default()
        },
        0,
    )
}


#[cfg(test)]
mod tests {
    use super::*;
    use lhmm_cellsim::dataset::{Dataset, DatasetConfig};
    use lhmm_eval::runner::evaluate_matcher;

    fn ds() -> Dataset {
        Dataset::generate(&DatasetConfig::tiny_test(81))
    }

    #[test]
    fn all_heuristic_baselines_produce_paths() {
        let ds = ds();
        let mut matchers = vec![
            stm(&ds.network),
            stm_s(&ds.network),
            ifm(&ds.network),
            mcm(&ds.network),
            clsters(&ds.network),
            snapnet(&ds.network),
            thmm(&ds.network),
        ];
        for m in &mut matchers {
            let report = evaluate_matcher(&ds, m, &ds.test[..6]);
            assert!(
                report.recall > 0.05,
                "{} produced degenerate matches (recall {})",
                report.method,
                report.recall
            );
            assert!(report.hitting_ratio.is_some());
        }
    }

    #[test]
    fn names_are_distinct() {
        let ds = ds();
        let names: Vec<String> = [
            stm(&ds.network),
            stm_s(&ds.network),
            ifm(&ds.network),
            mcm(&ds.network),
            clsters(&ds.network),
            snapnet(&ds.network),
            thmm(&ds.network),
        ]
        .iter()
        .map(|m| m.name().to_string())
        .collect();
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }

    #[test]
    fn stm_s_has_shortcuts_and_stm_does_not() {
        let ds = ds();
        assert_eq!(stm(&ds.network).shortcuts(), 0);
        assert_eq!(stm_s(&ds.network).shortcuts(), 1);
    }

    #[test]
    fn smoothing_reduces_scatter() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(100.0, 500.0), // outlier-ish
            Point::new(200.0, 0.0),
            Point::new(300.0, 0.0),
        ];
        let smoothed = smooth_positions(&pts, 1);
        assert_eq!(smoothed.len(), 4);
        // The spike is pulled toward its neighbors.
        assert!(smoothed[1].y < 500.0 * 0.5);
    }

    #[test]
    fn thmm_rejects_unreachable_routes() {
        let ds = ds();
        let mut model = HeuristicModel {
            net: &ds.network,
            preset: ModelPreset {
                reachability_factor: 2.0,
                reachability_slack: 0.0,
                ..Default::default()
            },
            positions: vec![Point::new(0.0, 0.0), Point::new(1_000.0, 0.0)],
            times: vec![0.0, 60.0],
        };
        let c = Candidate {
            seg: SegmentId(0),
            t: 0.5,
            obs: 1.0,
        };
        let too_long = RouteInfo {
            found: true,
            length: 5_000.0,
            segments: vec![],
        };
        assert_eq!(model.transition(1, &c, &c, &too_long), 0.0);
        let fine = RouteInfo {
            found: true,
            length: 1_200.0,
            segments: vec![],
        };
        assert!(model.transition(1, &c, &c, &fine) > 0.0);
    }

    #[test]
    fn turn_penalty_prefers_straighter_routes() {
        let ds = ds();
        // Find a straight pair and a turning pair of segments.
        let mut model = HeuristicModel {
            net: &ds.network,
            preset: ModelPreset {
                turn_penalty: 0.5,
                ..Default::default()
            },
            positions: vec![Point::new(0.0, 0.0), Point::new(500.0, 0.0)],
            times: vec![0.0, 60.0],
        };
        let c = Candidate {
            seg: SegmentId(0),
            t: 0.5,
            obs: 1.0,
        };
        // Same length; one route turns (synthesize using real segments with
        // differing heading).
        let straight: Vec<SegmentId> = ds
            .network
            .segment_ids()
            .take(1)
            .collect();
        let find_turn = ds
            .network
            .segment_ids()
            .find(|&s| {
                ds.network
                    .successors(s)
                    .iter()
                    .any(|&n| {
                        lhmm_geo::angle::abs_diff(
                            ds.network.segment_heading(s),
                            ds.network.segment_heading(n),
                        ) > 1.0
                    })
            })
            .map(|s| {
                let n = *ds
                    .network
                    .successors(s)
                    .iter()
                    .find(|&&n| {
                        lhmm_geo::angle::abs_diff(
                            ds.network.segment_heading(s),
                            ds.network.segment_heading(n),
                        ) > 1.0
                    })
                    .unwrap();
                vec![s, n]
            })
            .expect("a turning pair exists");
        let r_straight = RouteInfo {
            found: true,
            length: 500.0,
            segments: straight,
        };
        let r_turning = RouteInfo {
            found: true,
            length: 500.0,
            segments: find_turn,
        };
        assert!(
            model.transition(1, &c, &c, &r_straight)
                > model.transition(1, &c, &c, &r_turning)
        );
    }
}
