//! IVMM \[10\]: interactive-voting based map matching.
//!
//! Every trajectory point "votes": for point `i`, the globally optimal
//! candidate sequence *forced through* point `i`'s locally best candidate is
//! computed (forward + backward dynamic programs over the same transition
//! scores), and that sequence casts distance-weighted votes for the
//! candidate it selects at every other point. The final match at each point
//! is the candidate with the most vote mass — mutual influence between
//! points that a single Viterbi pass cannot express.

use lhmm_cellsim::traj::CellularTrajectory;
use lhmm_core::candidates::nearest_segments;
use lhmm_core::classic::{ClassicObservation, ClassicTransition};
use lhmm_core::types::{Candidate, MapMatcher, MatchContext, MatchResult};
use lhmm_geo::Point;
use lhmm_network::graph::{RoadNetwork, SegmentId};
use lhmm_network::path::Path;
use lhmm_network::sp_cache::SpCache;

/// The IVMM matcher.
pub struct Ivmm {
    /// Candidates per point.
    pub k: usize,
    /// Candidate search radius, meters.
    pub radius: f64,
    /// Distance-decay scale of vote weights, meters.
    pub vote_sigma: f64,
    obs: ClassicObservation,
    trans: ClassicTransition,
    sp: SpCache,
}

impl Ivmm {
    /// Creates an IVMM matcher for `net`.
    pub fn new(net: &RoadNetwork) -> Self {
        Ivmm {
            k: 45,
            radius: 3_000.0,
            vote_sigma: 4_000.0,
            obs: ClassicObservation::cellular(),
            trans: ClassicTransition::cellular(),
            sp: SpCache::new(net, 200_000),
        }
    }

    /// Transition weight matrices between consecutive layers.
    fn weight_matrices(
        &mut self,
        net: &RoadNetwork,
        positions: &[Point],
        layers: &[Vec<Candidate>],
    ) -> Vec<Vec<Vec<f64>>> {
        let mut w_all = Vec::with_capacity(layers.len().saturating_sub(1));
        for i in 1..layers.len() {
            let d = positions[i - 1].distance(positions[i]);
            let bound = d * 4.0 + 3_000.0;
            let mut w = vec![vec![0.0; layers[i].len()]; layers[i - 1].len()];
            for (j, prev) in layers[i - 1].iter().enumerate() {
                for (k, cur) in layers[i].iter().enumerate() {
                    let route = self.sp.route_between_projections(
                        net, prev.seg, prev.t, cur.seg, cur.t, bound,
                    );
                    if let Some(r) = route {
                        w[j][k] = self.trans.prob(d, r.length) * cur.obs;
                    }
                }
            }
            w_all.push(w);
        }
        w_all
    }
}

/// Forward and backward DP over fixed weight matrices.
/// Returns `(f_fwd, pre, f_bwd, nxt)`.
#[allow(clippy::type_complexity)]
fn bidirectional_dp(
    layers: &[Vec<Candidate>],
    w_all: &[Vec<Vec<f64>>],
) -> (
    Vec<Vec<f64>>,
    Vec<Vec<usize>>,
    Vec<Vec<f64>>,
    Vec<Vec<usize>>,
) {
    let n = layers.len();
    let mut f_fwd: Vec<Vec<f64>> = vec![layers[0].iter().map(|c| c.obs).collect()];
    let mut pre: Vec<Vec<usize>> = vec![vec![0; layers[0].len()]];
    for i in 1..n {
        let mut fi = vec![f64::NEG_INFINITY; layers[i].len()];
        let mut pi = vec![0usize; layers[i].len()];
        for (j, &fj) in f_fwd[i - 1].iter().enumerate() {
            for k in 0..layers[i].len() {
                let s = fj + w_all[i - 1][j][k];
                if s > fi[k] {
                    fi[k] = s;
                    pi[k] = j;
                }
            }
        }
        f_fwd.push(fi);
        pre.push(pi);
    }

    let mut f_bwd: Vec<Vec<f64>> = vec![Vec::new(); n];
    let mut nxt: Vec<Vec<usize>> = vec![Vec::new(); n];
    f_bwd[n - 1] = vec![0.0; layers[n - 1].len()];
    nxt[n - 1] = vec![0; layers[n - 1].len()];
    for i in (0..n - 1).rev() {
        let mut fi = vec![f64::NEG_INFINITY; layers[i].len()];
        let mut ni = vec![0usize; layers[i].len()];
        for j in 0..layers[i].len() {
            for (k, &fk) in f_bwd[i + 1].iter().enumerate() {
                let s = w_all[i][j][k] + fk;
                if s > fi[j] {
                    fi[j] = s;
                    ni[j] = k;
                }
            }
        }
        f_bwd[i] = fi;
        nxt[i] = ni;
    }
    (f_fwd, pre, f_bwd, nxt)
}

/// The candidate index sequence of the optimal path forced through
/// candidate `c` at layer `i`.
fn forced_path(
    i: usize,
    c: usize,
    pre: &[Vec<usize>],
    nxt: &[Vec<usize>],
    n: usize,
) -> Vec<usize> {
    let mut seq = vec![0usize; n];
    seq[i] = c;
    // Walk backward via forward-DP parents.
    let mut cur = c;
    for li in (0..i).rev() {
        cur = pre[li + 1][cur];
        seq[li] = cur;
    }
    // Walk forward via backward-DP successors.
    let mut cur = c;
    for li in i + 1..n {
        cur = nxt[li - 1][cur];
        seq[li] = cur;
    }
    seq
}

impl MapMatcher for Ivmm {
    fn name(&self) -> &str {
        "IVMM"
    }

    fn match_trajectory(
        &mut self,
        ctx: &MatchContext<'_>,
        traj: &CellularTrajectory,
    ) -> MatchResult {
        if traj.is_empty() {
            return MatchResult::empty();
        }
        let all_positions = traj.effective_positions();

        // Candidate preparation.
        let mut kept = Vec::new();
        let mut layers: Vec<Vec<Candidate>> = Vec::new();
        for (i, &pos) in all_positions.iter().enumerate() {
            let pairs = nearest_segments(ctx.net, ctx.index, pos, self.k, self.radius);
            if pairs.is_empty() {
                continue;
            }
            layers.push(
                pairs
                    .iter()
                    .map(|&(seg, proj)| Candidate {
                        seg,
                        t: proj.t,
                        obs: self.obs.prob(proj.distance),
                    })
                    .collect(),
            );
            kept.push(i);
        }
        if kept.is_empty() {
            return MatchResult::empty();
        }
        let positions: Vec<Point> = kept.iter().map(|&i| all_positions[i]).collect();
        let n = layers.len();

        let mut candidate_sets: Vec<Vec<SegmentId>> = vec![Vec::new(); traj.len()];
        for (ki, layer) in kept.iter().zip(&layers) {
            candidate_sets[*ki] = layer.iter().map(|c| c.seg).collect();
        }

        let w_all = self.weight_matrices(ctx.net, &positions, &layers);
        let (f_fwd, pre, f_bwd, nxt) = bidirectional_dp(&layers, &w_all);

        // Voting: every point's best forced path votes everywhere, with
        // distance-decayed weight.
        let mut votes: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.len()]).collect();
        for i in 0..n {
            let Some(best_c) = (0..layers[i].len()).max_by(|&a, &b| {
                (f_fwd[i][a] + f_bwd[i][a]).total_cmp(&(f_fwd[i][b] + f_bwd[i][b]))
            }) else {
                continue; // empty layer casts no votes
            };
            let seq = forced_path(i, best_c, &pre, &nxt, n);
            for (j, &cj) in seq.iter().enumerate() {
                let d = positions[i].distance(positions[j]);
                let weight = (-d * d / (2.0 * self.vote_sigma * self.vote_sigma)).exp();
                votes[j][cj] += weight;
            }
        }

        // Winners per layer, connected by shortest paths.
        let mut path = Path::empty();
        let mut prev: Option<Candidate> = None;
        for (i, layer) in layers.iter().enumerate() {
            let Some(win) =
                (0..layer.len()).max_by(|&a, &b| votes[i][a].total_cmp(&votes[i][b]))
            else {
                continue; // empty layer contributes no segment
            };
            let cand = layer[win];
            match prev {
                None => path.segments.push(cand.seg),
                Some(p) => {
                    let bound = positions[i - 1].distance(positions[i]) * 6.0 + 5_000.0;
                    match self.sp.route_between_projections(
                        ctx.net, p.seg, p.t, cand.seg, cand.t, bound,
                    ) {
                        Some(r) => path.extend_with(&r.segments),
                        None => path.segments.push(cand.seg),
                    }
                }
            }
            prev = Some(cand);
        }
        path.dedup_consecutive();

        MatchResult {
            path,
            candidate_sets: Some(candidate_sets),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhmm_cellsim::dataset::{Dataset, DatasetConfig};
    use lhmm_eval::runner::evaluate_matcher;

    #[test]
    fn ivmm_matches_reasonably() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(82));
        let mut m = Ivmm::new(&ds.network);
        let report = evaluate_matcher(&ds, &mut m, &ds.test[..6]);
        assert_eq!(report.method, "IVMM");
        assert!(report.recall > 0.05, "recall {}", report.recall);
        assert!(report.cmf50 < 1.0);
    }

    #[test]
    fn forced_path_passes_through_the_forced_candidate() {
        // Tiny 3-layer synthetic DP.
        let mk = |n: usize| {
            (0..n)
                .map(|i| Candidate {
                    seg: SegmentId(i as u32),
                    t: 0.0,
                    obs: 1.0,
                })
                .collect::<Vec<_>>()
        };
        let layers = vec![mk(2), mk(2), mk(2)];
        // Weights that strongly prefer candidate 0 everywhere.
        let w = vec![
            vec![vec![1.0, 0.1], vec![0.1, 0.1]],
            vec![vec![1.0, 0.1], vec![0.1, 0.1]],
        ];
        let (_, pre, _, nxt) = bidirectional_dp(&layers, &w);
        // Force through candidate 1 at layer 1.
        let seq = forced_path(1, 1, &pre, &nxt, 3);
        assert_eq!(seq[1], 1);
        assert_eq!(seq.len(), 3);
        // Unforced best path goes through candidate 0.
        let seq0 = forced_path(1, 0, &pre, &nxt, 3);
        assert_eq!(seq0, vec![0, 0, 0]);
    }

    #[test]
    fn empty_trajectory_is_safe() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(83));
        let mut m = Ivmm::new(&ds.network);
        let ctx = MatchContext {
            net: &ds.network,
            index: &ds.index,
            towers: &ds.towers,
        };
        let r = m.match_trajectory(&ctx, &CellularTrajectory::default());
        assert!(r.path.is_empty());
    }
}
