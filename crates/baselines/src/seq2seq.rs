//! The seq2seq CTMM baselines: DMM \[15\], DeepMM \[37\], TransformerMM \[38\].
//!
//! All three share an encoder–decoder skeleton over tower/segment
//! embeddings and differ where the original papers differ:
//!
//! * **DMM** — GRU encoder, GRU decoder, greedy constrained decoding.
//! * **DeepMM** — adds additive attention from the decoder state over the
//!   encoder states, plus point-dropping data augmentation.
//! * **TransformerMM** — replaces the recurrent encoder with a
//!   self-attention block.
//!
//! Training uses teacher forcing with a sampled softmax (the full segment
//! vocabulary is only materialized at inference, which preserves the
//! paper's observation that seq2seq inference is much slower than HMM
//! path finding). Decoding is constrained to road-network successors, the
//! road-continuity prior all these systems rely on; the sequential
//! dependence is what produces their characteristic error propagation.

use lhmm_cellsim::dataset::Dataset;
use lhmm_cellsim::traj::CellularTrajectory;
use lhmm_core::types::{MapMatcher, MatchContext, MatchResult};
use lhmm_network::graph::{RoadNetwork, SegmentId};
use lhmm_network::path::Path;
use lhmm_neural::layers::{Activation, AdditiveAttention, Embedding, GruCell, Mlp};
use lhmm_neural::loss::softmax_cross_entropy_batch;
use lhmm_neural::optim::{clip_grad_norm, Adam};
use lhmm_neural::tape::{ParamId, ParamStore, Tape, Var};
use lhmm_neural::{init, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seq2seq configuration; use the constructors for the published variants.
#[derive(Clone, Debug)]
pub struct Seq2SeqConfig {
    /// Display name.
    pub name: String,
    /// Recurrent hidden width.
    pub hidden: usize,
    /// Embedding width for towers and segments.
    pub embed: usize,
    /// Training steps (one trajectory each).
    pub steps: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Decoder attention over encoder states (DeepMM, TransformerMM).
    pub attention: bool,
    /// Self-attention encoder instead of a GRU (TransformerMM).
    pub transformer_encoder: bool,
    /// Point-dropping data augmentation (DeepMM).
    pub augment: bool,
    /// Negatives per step in the sampled softmax.
    pub neg_samples: usize,
    /// Teacher-forcing cap on target length.
    pub max_target_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Seq2SeqConfig {
    fn base(name: &str, seed: u64) -> Self {
        Seq2SeqConfig {
            name: name.to_string(),
            hidden: 64,
            embed: 32,
            steps: 1_500,
            lr: 2e-3,
            attention: false,
            transformer_encoder: false,
            augment: false,
            neg_samples: 16,
            max_target_len: 60,
            seed,
        }
    }

    /// DMM \[15\]. The published system is purpose-built and heavily tuned
    /// for CTMM (including an RL fine-tuning stage we approximate with a
    /// longer supervised schedule), so it trains longer than the
    /// GPS-oriented seq2seq baselines.
    pub fn dmm(seed: u64) -> Self {
        Seq2SeqConfig {
            steps: 3_000,
            ..Self::base("DMM", seed)
        }
    }

    /// DeepMM \[37\].
    pub fn deepmm(seed: u64) -> Self {
        Seq2SeqConfig {
            attention: true,
            augment: true,
            ..Self::base("DeepMM", seed)
        }
    }

    /// TransformerMM \[38\].
    pub fn transformer_mm(seed: u64) -> Self {
        Seq2SeqConfig {
            attention: true,
            transformer_encoder: true,
            ..Self::base("TransformerMM", seed)
        }
    }

    /// A fast configuration for unit tests.
    pub fn fast_test(mut self) -> Self {
        self.steps = 200;
        self.hidden = 32;
        self.embed = 16;
        self
    }
}

/// A trained seq2seq matcher.
pub struct Seq2SeqMatcher {
    cfg: Seq2SeqConfig,
    store: ParamStore,
    tower_embed: Embedding,
    seg_embed: Embedding, // num_segments + 1 rows; last row is BOS
    encoder: GruCell,
    transformer: Option<(AdditiveAttention, Mlp)>,
    decoder: GruCell,
    attn: Option<AdditiveAttention>,
    out_embed: ParamId, // (num_segments × feat_dim) output projection
    num_segments: usize,
    bos: usize,
}

impl Seq2SeqMatcher {
    /// Trains the model on the dataset's training split.
    pub fn train(ds: &Dataset, cfg: Seq2SeqConfig) -> Self {
        let num_segments = ds.network.num_segments();
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0x5E25E2));
        let mut store = ParamStore::new();
        let tower_embed = Embedding::new(&mut store, ds.towers.len(), cfg.embed, &mut rng);
        let seg_embed = Embedding::new(&mut store, num_segments + 1, cfg.embed, &mut rng);
        let encoder = GruCell::new(&mut store, cfg.embed, cfg.hidden, &mut rng);
        let transformer = cfg.transformer_encoder.then(|| {
            (
                AdditiveAttention::new(&mut store, cfg.embed, cfg.embed, &mut rng),
                Mlp::new(
                    &mut store,
                    &[cfg.embed, cfg.hidden],
                    Activation::Relu,
                    &mut rng,
                ),
            )
        });
        let decoder = GruCell::new(&mut store, cfg.embed, cfg.hidden, &mut rng);
        let attn = cfg
            .attention
            .then(|| AdditiveAttention::new(&mut store, cfg.hidden, cfg.hidden, &mut rng));
        let feat_dim = if cfg.attention {
            2 * cfg.hidden
        } else {
            cfg.hidden
        };
        let out_embed = store.alloc(init::xavier_uniform(num_segments, feat_dim, &mut rng));

        let mut model = Seq2SeqMatcher {
            bos: num_segments,
            cfg,
            store,
            tower_embed,
            seg_embed,
            encoder,
            transformer,
            decoder,
            attn,
            out_embed,
            num_segments,
        };
        model.fit(ds, &mut rng);
        model
    }

    fn fit(&mut self, ds: &Dataset, rng: &mut StdRng) {
        let mut opt = Adam::new(self.cfg.lr, 1e-4);
        for _ in 0..self.cfg.steps {
            let rec = &ds.train[rng.gen_range(0..ds.train.len())];
            if rec.cellular.is_empty() || rec.truth.is_empty() {
                continue;
            }
            // DeepMM augmentation: drop random interior points.
            let mut tower_idx: Vec<usize> = rec
                .cellular
                .points
                .iter()
                .map(|p| p.tower.idx())
                .collect();
            if self.cfg.augment && tower_idx.len() > 4 && rng.gen_bool(0.5) {
                let drop = rng.gen_range(1..tower_idx.len() - 1);
                tower_idx.remove(drop);
            }

            let target: Vec<usize> = rec
                .truth
                .segments
                .iter()
                .take(self.cfg.max_target_len)
                .map(|s| s.idx())
                .collect();

            let mut tape = Tape::new();
            let (enc_states, enc_final) = self.encode(&mut tape, &tower_idx);

            // Teacher-forced decode with a sampled softmax: the subset for
            // each step is [target, negatives...]; correct class is 0.
            let mut h = enc_final;
            let mut prev = self.bos;
            let mut step_logits: Option<Var> = None;
            let mut n_steps = 0usize;
            for &t in &target {
                let x = self.seg_embed.forward(&mut tape, &self.store, &[prev]);
                h = self.decoder.step(&mut tape, &self.store, x, h);
                let feat = self.decode_feat(&mut tape, h, enc_states);
                // Sampled subset: target + hard negatives (successors of
                // prev) + uniform negatives.
                let mut subset = vec![t];
                if prev != self.bos {
                    for &s in ds.network.successors(SegmentId(prev as u32)) {
                        if s.idx() != t && subset.len() < 1 + self.cfg.neg_samples {
                            subset.push(s.idx());
                        }
                    }
                }
                while subset.len() < 1 + self.cfg.neg_samples {
                    let s = rng.gen_range(0..self.num_segments);
                    if s != t {
                        subset.push(s);
                    }
                }
                let w = tape.param(&self.store, self.out_embed);
                let rows = tape.gather_rows(w, &subset); // m×feat
                let feat_t = tape.transpose(feat); // feat×1
                let logits = tape.matmul(rows, feat_t); // m×1
                let logits_row = tape.transpose(logits); // 1×m
                step_logits = Some(match step_logits {
                    None => logits_row,
                    Some(acc) => tape.concat_rows(acc, logits_row),
                });
                n_steps += 1;
                prev = t;
            }
            let Some(lv) = step_logits else { continue };
            let targets = vec![0usize; n_steps];
            let (_, grad) = softmax_cross_entropy_batch(tape.value(lv), &targets, 0.0);
            let grads = tape.backward(lv, grad);
            let mut pg = tape.param_grads(&grads);
            clip_grad_norm(&mut pg, 5.0);
            opt.step(&mut self.store, &pg);
        }
    }

    /// Runs the encoder; returns `(all states n×hidden, final state 1×hidden)`.
    fn encode(&self, tape: &mut Tape, tower_idx: &[usize]) -> (Var, Var) {
        if let (true, Some((att, proj))) =
            (self.cfg.transformer_encoder, self.transformer.as_ref())
        {
            let emb = self.tower_embed.forward(tape, &self.store, tower_idx); // n×e
            let mut states: Option<Var> = None;
            for i in 0..tower_idx.len() {
                let q = tape.gather_rows(emb, &[i]);
                let (ctx, _) = att.forward(tape, &self.store, q, emb, emb);
                let s = proj.forward(tape, &self.store, ctx); // 1×hidden
                states = Some(match states {
                    None => s,
                    Some(acc) => tape.concat_rows(acc, s),
                });
            }
            let states =
                states.unwrap_or_else(|| tape.constant(Matrix::zeros(1, self.cfg.hidden)));
            let final_state = tape.mean_rows(states);
            (states, final_state)
        } else {
            let mut h = tape.constant(Matrix::zeros(1, self.cfg.hidden));
            let mut states: Option<Var> = None;
            for &ti in tower_idx {
                let x = self.tower_embed.forward(tape, &self.store, &[ti]);
                h = self.encoder.step(tape, &self.store, x, h);
                states = Some(match states {
                    None => h,
                    Some(acc) => tape.concat_rows(acc, h),
                });
            }
            (states.unwrap_or(h), h)
        }
    }

    /// Decoder feature: the state, optionally concatenated with the
    /// attention context over encoder states.
    fn decode_feat(&self, tape: &mut Tape, h: Var, enc_states: Var) -> Var {
        match &self.attn {
            Some(att) => {
                let (ctx, _) = att.forward(tape, &self.store, h, enc_states, enc_states);
                tape.concat_cols(h, ctx)
            }
            None => h,
        }
    }

    /// Greedy constrained decode for one trajectory.
    fn decode(&self, net: &RoadNetwork, ctx: &MatchContext<'_>, traj: &CellularTrajectory) -> Path {
        let tower_idx: Vec<usize> = traj.points.iter().map(|p| p.tower.idx()).collect();
        let mut tape = Tape::new();
        let (enc_states, enc_final) = self.encode(&mut tape, &tower_idx);

        // Expected traveled length: the sum of straight hops (a lower bound
        // on the route), inflated for road-network detours.
        let positions = traj.effective_positions();
        let expected: f64 = positions.windows(2).map(|w| w[0].distance(w[1])).sum();
        let budget = expected * 1.3 + 500.0;
        let max_steps = ((budget / 80.0) as usize).clamp(8, 400);

        let w_out = self.store.value(self.out_embed);
        let mut h = enc_final;
        let mut prev: Option<SegmentId> = None;
        let mut out_segs: Vec<SegmentId> = Vec::new();
        let mut traveled = 0.0f64;
        for _ in 0..max_steps {
            let prev_idx = prev.map(|s| s.idx()).unwrap_or(self.bos);
            let x = self.seg_embed.forward(&mut tape, &self.store, &[prev_idx]);
            h = self.decoder.step(&mut tape, &self.store, x, h);
            let feat_var = self.decode_feat(&mut tape, h, enc_states);
            let feat = tape.value(feat_var).clone();
            // Full-vocabulary logits (the real cost of seq2seq inference).
            let logits = w_out.matmul(&feat.transpose()); // V×1

            let allowed: Vec<SegmentId> = match prev {
                None => ctx
                    .index
                    .k_nearest(net, positions[0], 20, 3_000.0)
                    .into_iter()
                    .map(|(s, _)| s)
                    .collect(),
                Some(p) => {
                    let mut a: Vec<SegmentId> = net.successors(p).to_vec();
                    a.retain(|&s| s != p);
                    a
                }
            };
            let chosen = if allowed.is_empty() {
                // Dead end: fall back to the global argmax (this is where
                // unconstrained seq2seq output goes off-road).
                match (0..self.num_segments)
                    .max_by(|&a, &b| logits.data()[a].total_cmp(&logits.data()[b]))
                {
                    Some(i) => SegmentId(i as u32),
                    None => break, // zero-segment network: nothing to emit
                }
            } else {
                match allowed
                    .iter()
                    .max_by(|&&a, &&b| logits.data()[a.idx()].total_cmp(&logits.data()[b.idx()]))
                {
                    Some(&seg) => seg,
                    None => break, // `allowed` checked non-empty above
                }
            };
            traveled += net.segment(chosen).length;
            out_segs.push(chosen);
            prev = Some(chosen);
            if traveled >= budget {
                break;
            }
        }
        let mut path = Path::new(out_segs);
        path.dedup_consecutive();
        path
    }
}

impl MapMatcher for Seq2SeqMatcher {
    fn name(&self) -> &str {
        &self.cfg.name
    }

    fn match_trajectory(
        &mut self,
        ctx: &MatchContext<'_>,
        traj: &CellularTrajectory,
    ) -> MatchResult {
        if traj.is_empty() {
            return MatchResult::empty();
        }
        MatchResult {
            path: self.decode(ctx.net, ctx, traj),
            // Seq2seq has no candidate-preparation stage (paper §V-A3:
            // hitting ratio only applies to HMM-based methods).
            candidate_sets: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhmm_cellsim::dataset::DatasetConfig;
    use lhmm_eval::runner::evaluate_matcher;

    #[test]
    fn dmm_trains_and_matches() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(91));
        let mut m = Seq2SeqMatcher::train(&ds, Seq2SeqConfig::dmm(91).fast_test());
        let report = evaluate_matcher(&ds, &mut m, &ds.test[..4]);
        assert_eq!(report.method, "DMM");
        // Even a lightly trained seq2seq should produce on-network paths
        // with some overlap.
        assert!(report.recall > 0.0, "recall {}", report.recall);
        assert!(report.hitting_ratio.is_none());
        // Decoded paths are contiguous thanks to constrained decoding.
        let ctx = MatchContext {
            net: &ds.network,
            index: &ds.index,
            towers: &ds.towers,
        };
        let r = m.match_trajectory(&ctx, &ds.test[0].cellular);
        assert!(!r.path.is_empty());
    }

    #[test]
    fn all_variants_train() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(92));
        for cfg in [
            Seq2SeqConfig::dmm(92),
            Seq2SeqConfig::deepmm(92),
            Seq2SeqConfig::transformer_mm(92),
        ] {
            let name = cfg.name.clone();
            let mut m = Seq2SeqMatcher::train(&ds, cfg.fast_test());
            let report = evaluate_matcher(&ds, &mut m, &ds.test[..2]);
            assert_eq!(report.method, name);
            assert!(report.rmf.is_finite());
        }
    }

    #[test]
    fn variant_flags_differ() {
        assert!(!Seq2SeqConfig::dmm(0).attention);
        assert!(Seq2SeqConfig::deepmm(0).attention);
        assert!(Seq2SeqConfig::deepmm(0).augment);
        assert!(Seq2SeqConfig::transformer_mm(0).transformer_encoder);
    }
}

#[cfg(test)]
mod unit_tests {
    use super::*;
    use lhmm_cellsim::dataset::DatasetConfig;
    use lhmm_neural::Matrix;

    fn tiny_model() -> (Dataset, Seq2SeqMatcher) {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(93));
        let mut cfg = Seq2SeqConfig::dmm(93).fast_test();
        cfg.steps = 20;
        let m = Seq2SeqMatcher::train(&ds, cfg);
        (ds, m)
    }

    #[test]
    fn encoder_emits_one_state_per_point() {
        let (_, m) = tiny_model();
        let mut tape = Tape::new();
        let (states, final_state) = m.encode(&mut tape, &[0, 1, 2, 0, 3]);
        assert_eq!(tape.value(states).rows(), 5);
        assert_eq!(tape.value(states).cols(), m.cfg.hidden);
        assert_eq!(tape.value(final_state).shape(), (1, m.cfg.hidden));
        // The final state equals the last emitted state for the GRU encoder.
        let last_row =
            Matrix::row_vector(tape.value(states).row(4).to_vec());
        assert_eq!(&last_row, tape.value(final_state));
    }

    #[test]
    fn transformer_encoder_final_state_is_mean() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(94));
        let mut cfg = Seq2SeqConfig::transformer_mm(94).fast_test();
        cfg.steps = 5;
        let m = Seq2SeqMatcher::train(&ds, cfg);
        let mut tape = Tape::new();
        let (states, final_state) = m.encode(&mut tape, &[1, 2, 3]);
        let s = tape.value(states);
        let f = tape.value(final_state);
        for c in 0..f.cols() {
            let mean = (s[(0, c)] + s[(1, c)] + s[(2, c)]) / 3.0;
            assert!((f[(0, c)] - mean).abs() < 1e-5);
        }
    }

    #[test]
    fn decoded_path_is_contiguous_and_length_budgeted() {
        let (ds, mut m) = tiny_model();
        let ctx = lhmm_core::types::MatchContext {
            net: &ds.network,
            index: &ds.index,
            towers: &ds.towers,
        };
        for rec in ds.test.iter().take(3) {
            let r = m.match_trajectory(&ctx, &rec.cellular);
            assert!(r.path.is_contiguous(&ds.network), "decode broke continuity");
            // The length budget keeps outputs in the same order of magnitude
            // as the trip (expected·1.3 + slack, plus one overshoot segment).
            let positions = rec.cellular.effective_positions();
            let expected: f64 = positions.windows(2).map(|w| w[0].distance(w[1])).sum();
            let budget = expected * 1.3 + 500.0 + 600.0;
            assert!(
                r.path.length(&ds.network) <= budget + 1e-6,
                "path {} exceeds budget {}",
                r.path.length(&ds.network),
                budget
            );
        }
    }
}
