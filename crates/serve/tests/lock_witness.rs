//! Witness-enabled serving suite (DESIGN §15).
//!
//! Every `OrderedMutex` in the serving stack registers with the runtime
//! lock-hierarchy witness under `debug_assertions` or the `lock-witness`
//! feature, so *any* rank inversion anywhere in these scenarios panics a
//! thread and fails the run. The scenario here is the hardest ordering in
//! the stack: concurrent streaming pushes (router session lock → per-tile
//! conn lock → supervisor slot) racing shard kills (slot → dead rollup →
//! shard-internal locks via abort) and the monitor's restart sweep — then
//! a full drain while handlers are still active.

use lhmm_cellsim::dataset::{Dataset, DatasetConfig};
use lhmm_cellsim::traj::CellularTrajectory;
use lhmm_core::error::MatchError;
use lhmm_core::lhmm::{LhmmConfig, LhmmModel};
use lhmm_core::registry::ModelRegistry;
use lhmm_core::sync::{witness_acquisitions, witness_enabled};
use lhmm_core::types::MatchContext;
use lhmm_serve::{
    ClientError, ClusterConfig, ClusterHandle, ClusterTopology, ServeClient, ServeCtx,
};
use std::thread;

fn cheap_model(ds: &Dataset, seed: u64) -> LhmmModel {
    let mut cfg = LhmmConfig::fast_test(seed);
    cfg.use_learned_obs = false;
    cfg.use_learned_trans = false;
    LhmmModel::train(ds, cfg)
}

fn ctx(ds: &Dataset) -> MatchContext<'_> {
    MatchContext {
        net: &ds.network,
        index: &ds.index,
        towers: &ds.towers,
    }
}

/// Streams one trajectory, tolerating typed per-point verdicts; panics on
/// transport or protocol failures (which is what a deadlock-turned-panic
/// on the server side produces).
fn stream_one(addr: std::net::SocketAddr, session: u64, traj: &CellularTrajectory) {
    let mut client = ServeClient::connect(addr).expect("connect");
    client.open(session, 4).expect("open");
    for p in &traj.points {
        match client.push(session, p) {
            Ok(_) => {}
            Err(ClientError::Failed(
                MatchError::NoCandidates | MatchError::EmptyLayer { .. },
            )) => {}
            Err(e) => panic!("session {session}: push failed: {e}"),
        }
    }
    let _ = client.finish(session).expect("finish");
}

/// Shard kills racing live streaming sessions and the monitor's restart
/// sweep, ending in a drain: the full supervisor shutdown ordering, every
/// acquisition checked by the witness.
#[test]
fn shard_kills_during_streaming_hold_the_lock_hierarchy() {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(901));
    let registry = ModelRegistry::new(cheap_model(&ds, 901), "v1");
    let topology = ClusterTopology::build(&ds.network, &ds.index, 2, 1, 3000.0);
    let trajs: Vec<CellularTrajectory> =
        ds.test.iter().take(4).map(|r| r.cellular.clone()).collect();

    let before = witness_acquisitions();
    thread::scope(|s| {
        let serve = ServeCtx {
            ctx: ctx(&ds),
            registry: &registry,
            scope: None,
        };
        // Headroom over the default budget: the killer consumes up to two
        // restarts per tile, and the monitor may burn a couple more.
        let config = ClusterConfig {
            max_restarts: 16,
            ..ClusterConfig::default()
        };
        let cluster = ClusterHandle::start(s, serve, &topology, config).expect("bind");
        let addr = cluster.addr();

        thread::scope(|inner| {
            // Concurrent streaming clients: the router holds its session
            // lock across every shard rpc these issue.
            let clients: Vec<_> = trajs
                .iter()
                .enumerate()
                .map(|(i, traj)| inner.spawn(move || stream_one(addr, 7000 + i as u64, traj)))
                .collect();
            // The killer: hard-crash alternating shards while the pushes
            // are in flight — bounded, so the rpc retry/replay machinery
            // always has a live generation to recover onto. `kill_shard`
            // takes the supervisor slot and folds the aborted shard's
            // report into the dead rollup while routers race it for the
            // same slots.
            let cluster = &cluster;
            inner.spawn(move || {
                for k in 0..4 {
                    thread::sleep(std::time::Duration::from_millis(20));
                    let _ = cluster.kill_shard(k % 2);
                }
            });
            for c in clients {
                c.join().expect("client thread panicked");
            }
        });

        // Drain while the supervisor still owns restarted generations:
        // monitor join → shard drain → handler joins, all rank-checked.
        let report = cluster.shutdown_and_drain();
        assert_eq!(
            report.in_flight_lost(),
            0,
            "admitted work was lost across kills + drain"
        );
        assert!(
            report.restarts >= 1,
            "the kill thread never forced a restart"
        );
    });

    if witness_enabled() {
        let grabbed = witness_acquisitions() - before;
        assert!(
            grabbed > 0,
            "witness saw no acquisitions in a run full of locking"
        );
    }
}
