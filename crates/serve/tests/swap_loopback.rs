//! Hot-swap-under-load loopback tests — the ISSUE 9 acceptance criteria,
//! over real TCP against both a single-process server and a 4-shard
//! cluster:
//!
//! * **Version pinning**: one-shots admitted before a swap reproduce the
//!   old model's offline verdicts byte-for-byte, one-shots admitted after
//!   reproduce the new model's; streaming sessions opened pre-swap finish
//!   on their admitted version (their completions land in the old
//!   version's report lane, never the new one's) and their final routes
//!   equal the offline full-lag reference.
//! * **Lose-nothing**: `in_flight_lost() == 0` with a swap mid-run.
//! * **No shadow leakage**: with a divergent candidate mirroring every
//!   one-shot, responses still equal the active version's offline
//!   verdicts; divergence shows up only in the shadow telemetry, and the
//!   divergence count equals the offline disagreement count exactly.

use lhmm_cellsim::dataset::{Dataset, DatasetConfig};
use lhmm_cellsim::traj::CellularTrajectory;
use lhmm_core::candidates::{nearest_segments, to_candidates};
use lhmm_core::classic::{ClassicModel, ClassicObservation, ClassicTransition};
use lhmm_core::error::MatchError;
use lhmm_core::lhmm::{LhmmConfig, LhmmModel};
use lhmm_core::registry::{ModelRegistry, ModelVersion};
use lhmm_core::types::{Candidate, MatchContext};
use lhmm_core::viterbi::{EngineConfig, HmmEngine};
use lhmm_geo::Point;
use lhmm_network::graph::SegmentId;
use lhmm_serve::{
    ClientError, ClusterConfig, ClusterHandle, ClusterTopology, ServeClient, ServeConfig,
    ServeCtx, ServerHandle, SessionPolicy,
};
use std::thread;

fn cheap_model(ds: &Dataset, seed: u64) -> LhmmModel {
    let mut cfg = LhmmConfig::fast_test(seed);
    cfg.use_learned_obs = false;
    cfg.use_learned_trans = false;
    LhmmModel::train(ds, cfg)
}

/// A structurally different candidate version: same classic scoring, a
/// narrower candidate budget, so its verdicts genuinely diverge from the
/// incumbent's on some trajectories.
fn narrow_model(ds: &Dataset, seed: u64) -> LhmmModel {
    let mut cfg = LhmmConfig::fast_test(seed);
    cfg.use_learned_obs = false;
    cfg.use_learned_trans = false;
    cfg.k = 3;
    LhmmModel::train(ds, cfg)
}

fn ctx(ds: &Dataset) -> MatchContext<'_> {
    MatchContext {
        net: &ds.network,
        index: &ds.index,
        towers: &ds.towers,
    }
}

type OfflineVerdict = Result<Vec<SegmentId>, MatchError>;

fn offline_verdicts(
    ds: &Dataset,
    model: &LhmmModel,
    trajs: &[CellularTrajectory],
) -> Vec<OfflineVerdict> {
    let ctx = ctx(ds);
    let mut engine = HmmEngine::new(&ds.network, model.engine_config());
    trajs
        .iter()
        .map(|t| {
            model
                .try_match_with_engine_stats(&ctx, t, &mut engine)
                .map(|(r, _)| r.path.segments)
        })
        .collect()
}

/// The offline full-lag reference for a streaming session (same compacted
/// candidate preparation as the session manager; see `loopback.rs`).
fn offline_streaming_reference(
    ds: &Dataset,
    traj: &CellularTrajectory,
    k: usize,
    radius: f64,
) -> Vec<SegmentId> {
    let mut model = ClassicModel::new(
        ClassicObservation::cellular(),
        ClassicTransition::cellular(),
        Vec::new(),
    );
    let mut pts: Vec<(Point, f64)> = Vec::new();
    let mut layers: Vec<Vec<Candidate>> = Vec::new();
    for p in &traj.points {
        let pos = p.effective_pos();
        let pairs = nearest_segments(&ds.network, &ds.index, pos, k, radius);
        if pairs.is_empty() {
            continue;
        }
        let i = pts.len();
        model.positions.push(pos);
        layers.push(to_candidates(&mut model, i, &pairs));
        pts.push((pos, p.t));
    }
    if pts.is_empty() {
        return Vec::new();
    }
    let mut engine = HmmEngine::new(
        &ds.network,
        EngineConfig {
            shortcuts: 0,
            ..Default::default()
        },
    );
    engine
        .try_find_path(&ds.network, &pts, layers, &mut model)
        .expect("valid layers")
        .path
        .segments
}

/// Serves every trajectory as a one-shot and asserts byte-identity with
/// the given offline verdicts.
fn assert_oneshots_match(
    client: &mut ServeClient,
    trajs: &[CellularTrajectory],
    want: &[OfflineVerdict],
    tag: &str,
) {
    for (i, traj) in trajs.iter().enumerate() {
        match (client.one_shot(traj), &want[i]) {
            (Ok(reply), Ok(expected)) => {
                assert_eq!(&reply.segments, expected, "{tag}: traj {i} route diverged");
            }
            (Err(ClientError::Failed(got)), Err(expected)) => {
                assert_eq!(&got, expected, "{tag}: traj {i} error diverged");
            }
            (got, expected) => {
                panic!("{tag}: traj {i} verdict class diverged: {got:?} vs {expected:?}");
            }
        }
    }
}

/// Pushes `points` into an open streaming session, tolerating the typed
/// per-point degradations a live feed survives.
fn push_all(
    client: &mut ServeClient,
    session: u64,
    points: &[lhmm_cellsim::traj::CellularPoint],
) {
    for p in points {
        match client.push(session, p) {
            Ok(_) => {}
            Err(ClientError::Failed(
                MatchError::NoCandidates | MatchError::EmptyLayer { .. },
            )) => {}
            Err(e) => panic!("session {session}: push failed: {e}"),
        }
    }
}

/// Offline shadow-divergence rule, mirroring the scheduler's: verdict
/// classes disagree, or both route but to different segments.
fn diverges(a: &OfflineVerdict, b: &OfflineVerdict) -> bool {
    match (a, b) {
        (Ok(x), Ok(y)) => x != y,
        (Err(_), Err(_)) => false,
        _ => true,
    }
}

#[test]
fn swap_under_load_pins_versions_and_loses_nothing() {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(601));
    let v1 = cheap_model(&ds, 601);
    let v2 = narrow_model(&ds, 601);
    let trajs: Vec<CellularTrajectory> = ds.test.iter().map(|r| r.cellular.clone()).collect();
    let want_v1 = offline_verdicts(&ds, &v1, &trajs);
    let want_v2 = offline_verdicts(&ds, &v2, &trajs);
    assert!(
        want_v1.iter().zip(&want_v2).any(|(a, b)| diverges(a, b)),
        "candidate model must produce divergent verdicts for this test to bite"
    );

    let sessions = SessionPolicy::default();
    let (k, radius) = (sessions.k, sessions.radius);
    let stream_trajs: Vec<&CellularTrajectory> =
        ds.test.iter().take(2).map(|r| &r.cellular).collect();

    let registry = ModelRegistry::new(v1, "v1");
    let v2_version = registry.register(v2, "v2-narrow", Some(ModelVersion(1)));

    let report = thread::scope(|s| {
        let server = ServerHandle::start(
            s,
            ServeCtx {
                ctx: ctx(&ds),
                registry: &registry,
                scope: None,
            },
            ServeConfig {
                sessions,
                ..Default::default()
            },
        )
        .expect("bind loopback");
        let addr = server.addr();
        let mut client = ServeClient::connect(addr).expect("connect");

        // Streaming sessions admitted on v1 (full lag), half their points in.
        for (i, traj) in stream_trajs.iter().enumerate() {
            let session = 6000 + i as u64;
            client
                .open(session, (traj.points.len() + 1) as u32)
                .expect("open session");
            push_all(&mut client, session, &traj.points[..traj.points.len() / 2]);
        }

        assert_oneshots_match(&mut client, &trajs, &want_v1, "pre-swap");

        // The hot swap. In-flight state above must be unaffected.
        let models = client.swap(v2_version.0).expect("swap");
        assert_eq!(models.active, v2_version.0);
        assert_eq!(models.previous, 1);

        assert_oneshots_match(&mut client, &trajs, &want_v2, "post-swap");

        // Pre-swap sessions stream to completion on their admitted pin and
        // still equal the offline full-lag reference byte-for-byte.
        for (i, traj) in stream_trajs.iter().enumerate() {
            let session = 6000 + i as u64;
            push_all(&mut client, session, &traj.points[traj.points.len() / 2..]);
            let reply = client.finish(session).expect("finish");
            let want = offline_streaming_reference(&ds, traj, k, radius);
            assert_eq!(
                reply.segments, want,
                "session {session}: route diverged after mid-stream swap"
            );
        }

        server.shutdown_and_drain()
    });

    assert_eq!(report.in_flight_lost(), 0, "swap lost admitted work");
    assert_eq!(report.model_swaps, 1);
    assert_eq!(report.total_rejected(), 0);
    // The version lanes prove the pinning: pre-swap one-shots + both
    // streaming finishes on v1, post-swap one-shots on v2, nothing mixed.
    let v1_lane = &report.versions.lanes[&1];
    let v2_lane = &report.versions.lanes[&v2_version.0];
    assert_eq!(v1_lane.served, (trajs.len() + stream_trajs.len()) as u64);
    assert_eq!(v2_lane.served, trajs.len() as u64);
}

#[test]
fn shadow_mirrors_diverge_in_telemetry_but_never_leak_over_the_wire() {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(602));
    let v1 = cheap_model(&ds, 602);
    let v2 = narrow_model(&ds, 602);
    let trajs: Vec<CellularTrajectory> = ds.test.iter().map(|r| r.cellular.clone()).collect();
    let want_v1 = offline_verdicts(&ds, &v1, &trajs);
    let want_v2 = offline_verdicts(&ds, &v2, &trajs);
    let expected_div = want_v1
        .iter()
        .zip(&want_v2)
        .filter(|(a, b)| diverges(a, b))
        .count() as u64;
    assert!(expected_div > 0, "candidate must diverge somewhere");

    let registry = ModelRegistry::new(v1, "v1");
    let v2_version = registry.register(v2, "v2-narrow", Some(ModelVersion(1)));

    let report = thread::scope(|s| {
        let server = ServerHandle::start(
            s,
            ServeCtx {
                ctx: ctx(&ds),
                registry: &registry,
                scope: None,
            },
            ServeConfig::default(),
        )
        .expect("bind loopback");
        let mut client = ServeClient::connect(server.addr()).expect("connect");

        // Mirror EVERY one-shot through the candidate.
        let models = client.set_shadow(v2_version.0, 1).expect("set shadow");
        assert_eq!(models.shadow, v2_version.0);
        assert_eq!(models.mirror_every, 1);

        // Responses are the active version's, bit-exactly — the candidate
        // never leaks into a reply.
        assert_oneshots_match(&mut client, &trajs, &want_v1, "shadowed");

        server.shutdown_and_drain()
    });

    assert_eq!(report.in_flight_lost(), 0);
    assert_eq!(report.shadow_served, trajs.len() as u64);
    assert_eq!(
        report.shadow_divergences, expected_div,
        "shadow divergence count must equal the offline disagreement count"
    );
    let lane = &report.versions.lanes[&v2_version.0];
    assert_eq!(lane.shadow_served, trajs.len() as u64);
    assert_eq!(lane.shadow_divergences, expected_div);
}

#[test]
fn cluster_swap_is_atomic_and_sessions_never_mix_versions() {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(603));
    let v1 = cheap_model(&ds, 603);
    let v2 = narrow_model(&ds, 603);
    let trajs: Vec<CellularTrajectory> = ds.test.iter().map(|r| r.cellular.clone()).collect();
    let want_v1 = offline_verdicts(&ds, &v1, &trajs);
    let want_v2 = offline_verdicts(&ds, &v2, &trajs);
    assert!(
        want_v1.iter().zip(&want_v2).any(|(a, b)| diverges(a, b)),
        "candidate model must produce divergent verdicts for this test to bite"
    );

    let sessions = SessionPolicy::default();
    let (k, radius) = (sessions.k, sessions.radius);
    let topology = ClusterTopology::build(&ds.network, &ds.index, 2, 2, radius);
    assert_eq!(topology.num_tiles(), 4);
    let stream_trajs: Vec<&CellularTrajectory> =
        ds.test.iter().take(3).map(|r| &r.cellular).collect();
    // The streams must cross tile boundaries so version pinning is
    // exercised across handoffs, not just within one shard.
    let crossings: usize = stream_trajs
        .iter()
        .map(|t| {
            t.points
                .windows(2)
                .filter(|w| {
                    topology.route(w[0].effective_pos()) != topology.route(w[1].effective_pos())
                })
                .count()
        })
        .sum();
    assert!(crossings > 0, "seed produced no tile-crossing trajectories");

    let registry = ModelRegistry::new(v1, "v1");
    let v2_version = registry.register(v2, "v2-narrow", Some(ModelVersion(1)));

    let report = thread::scope(|s| {
        let cluster = ClusterHandle::start(
            s,
            ServeCtx {
                ctx: ctx(&ds),
                registry: &registry,
                scope: None,
            },
            &topology,
            ClusterConfig {
                shard: ServeConfig {
                    sessions: sessions.clone(),
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .expect("bind cluster");
        let addr = cluster.addr();
        let mut client = ServeClient::connect(addr).expect("connect");

        for (i, traj) in stream_trajs.iter().enumerate() {
            let session = 7000 + i as u64;
            client
                .open(session, (traj.points.len() + 1) as u32)
                .expect("open session");
            push_all(&mut client, session, &traj.points[..traj.points.len() / 2]);
        }

        assert_oneshots_match(&mut client, &trajs, &want_v1, "cluster pre-swap");

        // One Swap request against the router promotes the shared registry:
        // every shard sees the new active version at its next admission.
        let models = client.swap(v2_version.0).expect("swap");
        assert_eq!(models.active, v2_version.0);

        assert_oneshots_match(&mut client, &trajs, &want_v2, "cluster post-swap");

        // Pre-swap sessions finish on their admitted pin — including any
        // that handed off across tiles after the swap.
        for (i, traj) in stream_trajs.iter().enumerate() {
            let session = 7000 + i as u64;
            push_all(&mut client, session, &traj.points[traj.points.len() / 2..]);
            let reply = client.finish(session).expect("finish");
            let want = offline_streaming_reference(&ds, traj, k, radius);
            assert_eq!(
                reply.segments, want,
                "session {session}: cluster route diverged after mid-stream swap"
            );
        }

        cluster.shutdown_and_drain()
    });

    assert_eq!(report.in_flight_lost(), 0, "cluster swap lost admitted work");
    assert_eq!(report.merged.model_swaps, 1);
    assert!(report.handoffs > 0, "no handoffs — the cross-shard pin was not exercised");
    // Lanes across all 4 shards: every pre-swap admission (one-shots and
    // all three streaming finishes) on v1, every post-swap one-shot on v2.
    // A single session served by mixed versions would move a finish into
    // the v2 lane and break both equalities.
    let v1_lane = &report.merged.versions.lanes[&1];
    let v2_lane = &report.merged.versions.lanes[&v2_version.0];
    assert_eq!(v1_lane.served, (trajs.len() + stream_trajs.len()) as u64);
    assert_eq!(v2_lane.served, trajs.len() as u64);
}
