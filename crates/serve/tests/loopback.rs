//! End-to-end loopback tests: a real TCP server, real client connections,
//! and equivalence against the offline matching pipeline.
//!
//! The load-bearing properties (the ISSUE 4 acceptance criteria):
//!
//! * N concurrent one-shot clients receive routes **byte-identical** to
//!   offline serial matching — batching, scheduling, and connection
//!   interleaving never change answers.
//! * A full-lag streaming session over the wire reproduces offline Viterbi
//!   without shortcuts byte-for-byte.
//! * Under overload, sheds carry a typed [`RejectReason`], nothing panics
//!   (including on the adversarial corpus), and a graceful drain loses
//!   zero admitted requests.

use lhmm_cellsim::dataset::{Dataset, DatasetConfig};
use lhmm_cellsim::faults::AdversarialCorpus;
use lhmm_cellsim::traj::CellularTrajectory;
use lhmm_core::candidates::{nearest_segments, to_candidates};
use lhmm_core::classic::{ClassicModel, ClassicObservation, ClassicTransition};
use lhmm_core::error::MatchError;
use lhmm_core::lhmm::{LhmmConfig, LhmmModel};
use lhmm_core::registry::ModelRegistry;
use lhmm_core::types::{Candidate, MatchContext};
use lhmm_core::viterbi::{EngineConfig, HmmEngine};
use lhmm_geo::Point;
use lhmm_network::graph::SegmentId;
use lhmm_serve::{
    BatchPolicy, ClientError, RejectReason, ServeClient, ServeConfig, ServeCtx, ServerHandle,
    SessionPolicy,
};
use std::thread;
use std::time::Duration;

fn cheap_model(ds: &Dataset, seed: u64) -> LhmmModel {
    let mut cfg = LhmmConfig::fast_test(seed);
    cfg.use_learned_obs = false;
    cfg.use_learned_trans = false;
    LhmmModel::train(ds, cfg)
}

fn ctx(ds: &Dataset) -> MatchContext<'_> {
    MatchContext {
        net: &ds.network,
        index: &ds.index,
        towers: &ds.towers,
    }
}

/// The offline verdict a served one-shot must reproduce exactly.
type OfflineVerdict = Result<Vec<SegmentId>, MatchError>;

fn offline_verdicts(ds: &Dataset, model: &LhmmModel, trajs: &[CellularTrajectory]) -> Vec<OfflineVerdict> {
    let ctx = ctx(ds);
    let mut engine = HmmEngine::new(&ds.network, model.engine_config());
    trajs
        .iter()
        .map(|t| {
            model
                .try_match_with_engine_stats(&ctx, t, &mut engine)
                .map(|(r, _)| r.path.segments)
        })
        .collect()
}

#[test]
fn concurrent_oneshot_clients_are_byte_identical_to_offline_serial() {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(401));
    let model = cheap_model(&ds, 401);
    let trajs: Vec<CellularTrajectory> = ds.test.iter().map(|r| r.cellular.clone()).collect();
    let want = offline_verdicts(&ds, &model, &trajs);
    let registry = ModelRegistry::new(model, "v1");

    const CLIENTS: usize = 4;
    let report = thread::scope(|s| {
        let server = ServerHandle::start(
            s,
            ServeCtx {
                ctx: ctx(&ds),
                registry: &registry,
                scope: None,
            },
            ServeConfig::default(),
        )
        .expect("bind loopback");
        let addr = server.addr();

        thread::scope(|cs| {
            for c in 0..CLIENTS {
                let trajs = &trajs;
                let want = &want;
                cs.spawn(move || {
                    let mut client = ServeClient::connect(addr).expect("connect");
                    // Stride the work so every client hits every phase of
                    // the batcher's lifetime.
                    for (i, traj) in trajs.iter().enumerate().skip(c).step_by(CLIENTS) {
                        match (client.one_shot(traj), &want[i]) {
                            (Ok(reply), Ok(expected)) => {
                                assert_eq!(
                                    &reply.segments, expected,
                                    "client {c}, traj {i}: served route diverged from offline"
                                );
                            }
                            (Err(ClientError::Failed(got)), Err(expected)) => {
                                assert_eq!(&got, expected, "client {c}, traj {i}: error diverged");
                            }
                            (got, expected) => {
                                panic!("client {c}, traj {i}: verdict class diverged: served {got:?} vs offline {expected:?}");
                            }
                        }
                    }
                });
            }
        });
        server.shutdown_and_drain()
    });
    assert_eq!(report.admitted as usize, trajs.len());
    assert_eq!(report.in_flight_lost(), 0);
    assert_eq!(report.total_rejected(), 0);
    assert!(report.batches > 0);
}

/// Builds the offline full-lag reference for one trajectory with the same
/// compacted candidate preparation the server's session manager applies
/// (positions grow only for observations that produced candidates).
fn offline_streaming_reference(
    ds: &Dataset,
    traj: &CellularTrajectory,
    k: usize,
    radius: f64,
) -> Vec<SegmentId> {
    let mut model = ClassicModel::new(
        ClassicObservation::cellular(),
        ClassicTransition::cellular(),
        Vec::new(),
    );
    let mut pts: Vec<(Point, f64)> = Vec::new();
    let mut layers: Vec<Vec<Candidate>> = Vec::new();
    for p in &traj.points {
        let pos = p.effective_pos();
        let pairs = nearest_segments(&ds.network, &ds.index, pos, k, radius);
        if pairs.is_empty() {
            continue;
        }
        let i = pts.len();
        model.positions.push(pos);
        layers.push(to_candidates(&mut model, i, &pairs));
        pts.push((pos, p.t));
    }
    if pts.is_empty() {
        return Vec::new();
    }
    let mut engine = HmmEngine::new(
        &ds.network,
        EngineConfig {
            shortcuts: 0,
            ..Default::default()
        },
    );
    engine
        .try_find_path(&ds.network, &pts, layers, &mut model)
        .expect("valid layers")
        .path
        .segments
}

#[test]
fn full_lag_streaming_sessions_match_offline_viterbi_over_the_wire() {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(402));
    let model = cheap_model(&ds, 402);
    let registry = ModelRegistry::new(model, "v1");
    let sessions = SessionPolicy::default();
    let (k, radius) = (sessions.k, sessions.radius);

    thread::scope(|s| {
        let server = ServerHandle::start(
            s,
            ServeCtx {
                ctx: ctx(&ds),
                registry: &registry,
                scope: None,
            },
            ServeConfig {
                sessions,
                ..Default::default()
            },
        )
        .expect("bind loopback");
        let addr = server.addr();

        // Three concurrent streaming clients, distinct trajectories.
        thread::scope(|cs| {
            for (id, rec) in ds.test.iter().take(3).enumerate() {
                let ds = &ds;
                cs.spawn(move || {
                    let traj = &rec.cellular;
                    let want = offline_streaming_reference(ds, traj, k, radius);
                    let mut client = ServeClient::connect(addr).expect("connect");
                    let session = 1000 + id as u64;
                    // Full lag: nothing commits before finish.
                    client
                        .open(session, (traj.points.len() + 1) as u32)
                        .expect("open session");
                    for p in &traj.points {
                        match client.push(session, p) {
                            Ok(_) => {}
                            // Off-network observation: session survives.
                            Err(ClientError::Failed(
                                MatchError::NoCandidates | MatchError::EmptyLayer { .. },
                            )) => {}
                            Err(e) => panic!("session {session}: push failed: {e}"),
                        }
                    }
                    let reply = client.finish(session).expect("finish");
                    assert_eq!(
                        reply.segments, want,
                        "session {session}: served streaming route diverged from offline full-lag Viterbi"
                    );
                });
            }
        });

        let report = server.shutdown_and_drain();
        assert_eq!(report.sessions_opened, 3);
        assert_eq!(report.sessions_finalized, 3);
        assert_eq!(report.active_sessions, 0);
        assert!(report.stream_pushes > 0);
        assert_eq!(report.stream_push.count(), report.stream_pushes);
    });
}

#[test]
fn overload_sheds_typed_rejections_and_drain_loses_nothing() {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(403));
    let model = cheap_model(&ds, 403);
    let trajs: Vec<CellularTrajectory> =
        ds.test.iter().map(|r| r.cellular.clone()).collect();
    let want = offline_verdicts(&ds, &model, &trajs);
    let registry = ModelRegistry::new(model, "v1");

    let report = thread::scope(|s| {
        let server = ServerHandle::start(
            s,
            ServeCtx {
                ctx: ctx(&ds),
                registry: &registry,
                scope: None,
            },
            ServeConfig {
                batch: BatchPolicy {
                    queue_capacity: 1,
                    workers: 1,
                    max_batch: 1,
                    // Deterministic backpressure: each request takes ≥30 ms,
                    // so the pipeline (1 in service + 1 dispatched + 1 held
                    // by the scheduler + 1 queued) saturates under 8
                    // concurrent clients.
                    service_delay: Duration::from_millis(30),
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .expect("bind loopback");
        let addr = server.addr();

        let shed_total: u64 = thread::scope(|cs| {
            let handles: Vec<_> = (0..8)
                .map(|c| {
                    let trajs = &trajs;
                    let want = &want;
                    cs.spawn(move || {
                        let mut client = ServeClient::connect(addr).expect("connect");
                        let mut shed = 0u64;
                        for (i, traj) in trajs.iter().enumerate().skip(c).step_by(8) {
                            match client.one_shot(traj) {
                                Ok(reply) => {
                                    assert_eq!(Ok(&reply.segments), want[i].as_ref(), "traj {i}");
                                }
                                Err(ClientError::Rejected(reason)) => {
                                    // The only overload shed on this path.
                                    assert_eq!(reason, RejectReason::QueueFull, "traj {i}");
                                    shed += 1;
                                }
                                Err(ClientError::Failed(e)) => {
                                    assert_eq!(Err(&e), want[i].as_ref(), "traj {i}");
                                }
                                Err(e) => panic!("traj {i}: transport failure: {e}"),
                            }
                        }
                        shed
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client")).sum()
        });
        assert!(shed_total > 0, "overload never materialized");

        let report = server.shutdown_and_drain();
        assert_eq!(report.rejected_for(RejectReason::QueueFull), shed_total);
        report
    });
    assert_eq!(report.in_flight_lost(), 0, "graceful drain dropped admitted work");
    assert_eq!(
        report.admitted + report.total_rejected(),
        trajs.len() as u64,
        "every request was either admitted or shed with a typed reason"
    );
}

#[test]
fn adversarial_corpus_verdicts_match_offline_and_nothing_panics() {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(404));
    let model = cheap_model(&ds, 404);
    let base: Vec<CellularTrajectory> = ds
        .test
        .iter()
        .take(2)
        .map(|r| r.cellular.clone())
        .collect();
    let corpus = AdversarialCorpus::generate(&base, 404);
    let trajs: Vec<CellularTrajectory> =
        corpus.cases.iter().map(|c| c.traj.clone()).collect();
    let want = offline_verdicts(&ds, &model, &trajs);
    let registry = ModelRegistry::new(model, "v1");

    thread::scope(|s| {
        let server = ServerHandle::start(
            s,
            ServeCtx {
                ctx: ctx(&ds),
                registry: &registry,
                scope: None,
            },
            ServeConfig::default(),
        )
        .expect("bind loopback");
        let addr = server.addr();
        let mut client = ServeClient::connect(addr).expect("connect");
        for (i, (traj, expected)) in trajs.iter().zip(&want).enumerate() {
            let plan = &corpus.cases[i].plan;
            match (client.one_shot(traj), expected) {
                (Ok(reply), Ok(want_segments)) => {
                    assert_eq!(&reply.segments, want_segments, "case {i} ({plan})");
                }
                (Err(ClientError::Failed(got)), Err(want_err)) => {
                    assert_eq!(&got, want_err, "case {i} ({plan})");
                }
                (got, expected) => panic!(
                    "case {i} ({plan}): verdict class diverged: served {got:?} vs offline {expected:?}"
                ),
            }
        }
        let report = server.shutdown_and_drain();
        assert_eq!(report.in_flight_lost(), 0);
        assert_eq!(report.completed as usize, trajs.len());
    });
}

#[test]
fn session_limit_and_lru_eviction_over_the_wire() {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(405));
    let registry = ModelRegistry::new(cheap_model(&ds, 405), "v1");

    thread::scope(|s| {
        let server = ServerHandle::start(
            s,
            ServeCtx {
                ctx: ctx(&ds),
                registry: &registry,
                scope: None,
            },
            ServeConfig {
                sessions: SessionPolicy {
                    max_sessions: 2,
                    idle_timeout: Duration::from_secs(60),
                    // Generous margin: the three opens below complete in
                    // well under this, so the first open(3) must shed.
                    lru_evict_min_idle: Duration::from_millis(300),
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .expect("bind loopback");
        let addr = server.addr();
        let mut client = ServeClient::connect(addr).expect("connect");

        client.open(1, 4).expect("open 1");
        client.open(2, 4).expect("open 2");
        // Both sessions were touched within lru_evict_min_idle: the cap
        // sheds instead of cannibalizing an active session.
        match client.open(3, 4) {
            Err(ClientError::Rejected(RejectReason::SessionLimit)) => {}
            other => panic!("expected SessionLimit, got {other:?}"),
        }
        // Once the LRU session has genuinely idled, a newcomer evicts it.
        thread::sleep(Duration::from_millis(400));
        client.open(3, 4).expect("open 3 evicts LRU");
        // Session 1 (the LRU) is gone: pushing to it is a typed failure.
        let p = ds.test[0].cellular.points[0];
        match client.push(1, &p) {
            Err(ClientError::Failed(MatchError::EmptyTrajectory)) => {}
            other => panic!("expected EmptyTrajectory for evicted session, got {other:?}"),
        }
        let report = server.shutdown_and_drain();
        assert_eq!(report.rejected_for(RejectReason::SessionLimit), 1);
        assert_eq!(report.sessions_evicted_lru, 1);
        assert_eq!(report.sessions_opened, 3);
        // Drain finalized the two surviving sessions; the evicted one was
        // finalized at eviction time.
        assert_eq!(report.sessions_finalized, 3);
        assert_eq!(report.active_sessions, 0);
    });
}

#[test]
fn oversized_oneshots_are_shed_before_the_queue() {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(406));
    let model = cheap_model(&ds, 406);
    let registry = ModelRegistry::new(model, "v1");
    let traj = ds
        .test
        .iter()
        .map(|r| &r.cellular)
        .find(|t| t.points.len() > 4)
        .expect("a trajectory longer than 4 points")
        .clone();

    thread::scope(|s| {
        let server = ServerHandle::start(
            s,
            ServeCtx {
                ctx: ctx(&ds),
                registry: &registry,
                scope: None,
            },
            ServeConfig {
                max_points: 4,
                ..Default::default()
            },
        )
        .expect("bind loopback");
        let mut client = ServeClient::connect(server.addr()).expect("connect");
        match client.one_shot(&traj) {
            Err(ClientError::Rejected(RejectReason::Oversized)) => {}
            other => panic!("expected Oversized, got {other:?}"),
        }
        let report = server.shutdown_and_drain();
        assert_eq!(report.rejected_for(RejectReason::Oversized), 1);
        assert_eq!(report.admitted, 0);
    });
}

#[test]
fn drain_with_open_sessions_flushes_them_and_report_renders() {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(407));
    let registry = ModelRegistry::new(cheap_model(&ds, 407), "v1");

    thread::scope(|s| {
        let server = ServerHandle::start(
            s,
            ServeCtx {
                ctx: ctx(&ds),
                registry: &registry,
                scope: None,
            },
            ServeConfig::default(),
        )
        .expect("bind loopback");
        let mut client = ServeClient::connect(server.addr()).expect("connect");
        for id in 0..3u64 {
            client.open(id, 2).expect("open");
        }
        for p in ds.test[0].cellular.points.iter().take(5) {
            match client.push(0, p) {
                Ok(_) | Err(ClientError::Failed(_)) => {}
                Err(e) => panic!("push: {e}"),
            }
        }
        // One one-shot in the mix, then drain with all sessions open.
        let _ = client.one_shot(&ds.test[1].cellular);
        let report = server.shutdown_and_drain();
        assert_eq!(report.active_sessions, 0);
        assert_eq!(report.sessions_opened, 3);
        assert_eq!(report.sessions_finalized, 3);
        assert_eq!(report.in_flight_lost(), 0);
        let text = report.render();
        assert!(text.contains("serving report"));
        assert!(text.contains("sessions: active 0"));
    });
}
