//! Protocol hardening: the frame decoders must never panic, whatever the
//! bytes — truncated frames, oversized length prefixes, bit flips, and
//! arbitrary garbage all come back as typed [`WireError`]s (or, for a
//! lucky bit flip, a successfully decoded frame), never a crash. The new
//! cluster frames (Ping/Snapshot/Restore/Pong/State, including the
//! versioned beam-state payload) are fuzzed alongside the originals.

use lhmm_cellsim::tower::TowerId;
use lhmm_cellsim::traj::{CellularPoint, CellularTrajectory};
use lhmm_core::registry::{ModelManifest, ModelVersion};
use lhmm_core::streaming::BeamState;
use lhmm_core::types::Candidate;
use lhmm_core::error::Degradation;
use lhmm_geo::Point;
use lhmm_network::graph::SegmentId;
use lhmm_serve::protocol::{
    read_request, read_response, write_request, write_response, Request, Response, WireError,
    MAX_FRAME,
};
use lhmm_serve::{RejectReason, WireMatchError};
use proptest::prelude::*;
use std::io::Cursor;

fn sample_point(i: u32) -> CellularPoint {
    CellularPoint {
        tower: TowerId(i),
        pos: Point::new(100.0 * i as f64, -50.0 * i as f64),
        t: 30.0 * i as f64,
        smoothed: if i.is_multiple_of(2) {
            Some(Point::new(99.0 * i as f64, -49.0 * i as f64))
        } else {
            None
        },
    }
}

fn sample_state() -> BeamState {
    BeamState {
        lag: 3,
        layers: vec![
            vec![
                Candidate {
                    seg: SegmentId(4),
                    t: 0.25,
                    obs: 0.5,
                },
                Candidate {
                    seg: SegmentId(9),
                    t: 1.0,
                    obs: 0.125,
                },
            ],
            vec![Candidate {
                seg: SegmentId(2),
                t: 0.0,
                obs: 1.0,
            }],
        ],
        pts: vec![
            (Point::new(10.0, -20.5), 0.0),
            (Point::new(11.5, -19.0), 30.0),
        ],
        f: vec![vec![-0.5, f64::NEG_INFINITY], vec![-1.25]],
        pre: vec![vec![None, None], vec![Some(1)]],
        committed_upto: 1,
        committed: vec![SegmentId(4), SegmentId(7)],
        last_committed: Some(Candidate {
            seg: SegmentId(4),
            t: 0.25,
            obs: 0.5,
        }),
        degradation: Degradation {
            dropped_points: 1,
            disconnected_joins: 0,
            clamped_scores: 2,
            failed_matches: 0,
        },
    }
}

/// Every request variant, encoded.
fn request_corpus() -> Vec<Vec<u8>> {
    let traj = CellularTrajectory {
        points: (0..4).map(sample_point).collect(),
    };
    let requests = [
        Request::OneShot { traj },
        Request::Open {
            client: 7,
            lag: 4,
            version: 2,
        },
        Request::Push {
            client: 7,
            point: sample_point(3),
        },
        Request::Finish { client: 7 },
        Request::Ping,
        Request::Snapshot { client: 7 },
        Request::Restore {
            client: 7,
            version: 3,
            state: sample_state(),
        },
        Request::Swap { version: 2 },
        Request::Shadow {
            version: 3,
            mirror_every: 8,
        },
        Request::Versions,
        Request::Refresh,
    ];
    requests
        .iter()
        .map(|r| {
            let mut buf = Vec::new();
            write_request(&mut buf, r).expect("encode request");
            buf
        })
        .collect()
}

/// Every response variant, encoded.
fn response_corpus() -> Vec<Vec<u8>> {
    let responses = [
        Response::Route {
            segments: vec![SegmentId(1), SegmentId(5), SegmentId(2)],
            degraded: true,
        },
        Response::Reject(RejectReason::QueueFull),
        Response::Reject(RejectReason::Invalid),
        Response::Failed(WireMatchError { code: 0, a: 0, b: 0 }),
        Response::Pushed { committed: 11 },
        Response::Pong { sessions: 3 },
        Response::State {
            state: sample_state(),
        },
        Response::Models {
            active: 2,
            previous: 1,
            shadow: 3,
            mirror_every: 8,
            refreshed: 0,
            manifests: vec![
                ModelManifest {
                    version: ModelVersion(1),
                    fingerprint: 0x1234_5678_9abc_def0,
                    weight_bytes: 4096,
                    parent: None,
                    label: "seed".to_string(),
                },
                ModelManifest {
                    version: ModelVersion(2),
                    fingerprint: 0x0fed_cba9_8765_4321,
                    weight_bytes: 4096,
                    parent: Some(ModelVersion(1)),
                    label: "refresh-1".to_string(),
                },
            ],
        },
    ];
    responses
        .iter()
        .map(|r| {
            let mut buf = Vec::new();
            write_response(&mut buf, r).expect("encode response");
            buf
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary garbage never panics either decoder.
    #[test]
    fn random_bytes_never_panic_the_decoders(raw in proptest::collection::vec(0u32..256, 0..256usize)) {
        let data: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        let _ = read_request(&mut Cursor::new(&data));
        let _ = read_response(&mut Cursor::new(&data));
    }

    /// Any strict prefix of a valid frame is a typed error, never a panic
    /// and never a bogus success.
    #[test]
    fn truncated_frames_fail_with_typed_errors(pick in 0usize..64, frac in 0.0f64..1.0) {
        let requests = request_corpus();
        let responses = response_corpus();
        let encoded = &requests[pick % requests.len()];
        let cut = ((encoded.len() as f64) * frac) as usize;
        prop_assume!(cut < encoded.len());
        match read_request(&mut Cursor::new(&encoded[..cut])) {
            Err(WireError::Io(_) | WireError::Malformed(_) | WireError::TooLarge(_)) => {}
            Ok(_) => prop_assert!(false, "decoded a truncated request frame"),
        }
        let encoded = &responses[pick % responses.len()];
        let cut = ((encoded.len() as f64) * frac) as usize;
        prop_assume!(cut < encoded.len());
        match read_response(&mut Cursor::new(&encoded[..cut])) {
            Err(WireError::Io(_) | WireError::Malformed(_) | WireError::TooLarge(_)) => {}
            Ok(_) => prop_assert!(false, "decoded a truncated response frame"),
        }
    }

    /// Flipping any single bit of a valid frame never panics: the decoder
    /// either still produces a frame or fails with a typed error.
    #[test]
    fn bit_flipped_frames_never_panic(pick in 0usize..64, pos in 0usize..10_000, bit in 0u32..8) {
        let requests = request_corpus();
        let responses = response_corpus();
        let mut bytes = requests[pick % requests.len()].clone();
        let i = pos % bytes.len();
        bytes[i] ^= 1u8 << bit;
        let _ = read_request(&mut Cursor::new(&bytes));
        let mut bytes = responses[pick % responses.len()].clone();
        let i = pos % bytes.len();
        bytes[i] ^= 1u8 << bit;
        let _ = read_response(&mut Cursor::new(&bytes));
    }

    /// Appending trailing garbage after a valid frame still decodes the
    /// frame (framing is length-prefixed, not delimiter-based).
    #[test]
    fn trailing_garbage_does_not_corrupt_a_valid_frame(pick in 0usize..64, tail in proptest::collection::vec(0u32..256, 0..32usize)) {
        let requests = request_corpus();
        let mut bytes = requests[pick % requests.len()].clone();
        bytes.extend(tail.iter().map(|&b| b as u8));
        prop_assert!(read_request(&mut Cursor::new(&bytes)).is_ok());
    }
}

#[test]
fn oversized_length_prefix_is_a_typed_error_for_every_tag() {
    // Each known tag with a declared length just past the cap: the decoder
    // must refuse before allocating or reading the body.
    for tag in [
        0x01u8, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x81, 0x82, 0x83,
        0x84, 0x85, 0x86, 0x87,
    ] {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        bytes.push(tag);
        bytes.extend_from_slice(&[0u8; 64]);
        let req = read_request(&mut Cursor::new(&bytes));
        let resp = read_response(&mut Cursor::new(&bytes));
        assert!(
            matches!(req, Err(WireError::TooLarge(_))),
            "tag {tag:#x}: request decoder accepted an oversized frame: {req:?}"
        );
        assert!(
            matches!(resp, Err(WireError::TooLarge(_))),
            "tag {tag:#x}: response decoder accepted an oversized frame: {resp:?}"
        );
    }
}

#[test]
fn beam_state_with_wrong_version_is_malformed_not_a_panic() {
    let mut buf = Vec::new();
    write_request(
        &mut buf,
        &Request::Restore {
            client: 7,
            version: 3,
            state: sample_state(),
        },
    )
    .expect("encode");
    // Frame layout: len u32 | tag u8 | client u64 | pin u32 | version u8 | ...
    let version_at = 4 + 1 + 8 + 4;
    buf[version_at] = buf[version_at].wrapping_add(1);
    match read_request(&mut Cursor::new(&buf)) {
        Err(WireError::Malformed(msg)) => {
            assert!(msg.contains("version"), "unexpected message: {msg}")
        }
        other => panic!("expected Malformed for wrong beam-state version, got {other:?}"),
    }
}
