//! Cluster loopback tests: a real router, real shard servers, real TCP —
//! and byte-exact equivalence against single-process serving and the
//! offline pipeline (the ISSUE 8 acceptance criteria).
//!
//! * Adversarial-corpus one-shot verdict fingerprints through a 4-shard
//!   cluster equal the single-process and offline-serial fingerprints.
//! * Streaming sessions that cross tile boundaries mid-stream (beam-state
//!   handoff over the wire) commit and finish byte-identically to an
//!   uninterrupted single-process session and to offline full-lag Viterbi.
//! * Killing a shard mid-stream loses nothing: the supervisor restarts it,
//!   the router replays its journal, and final routes are unchanged.
//! * The internal snapshot/restore plane is rejected at the router.

use lhmm_cellsim::dataset::{Dataset, DatasetConfig};
use lhmm_cellsim::faults::AdversarialCorpus;
use lhmm_cellsim::traj::CellularTrajectory;
use lhmm_core::candidates::{nearest_segments, to_candidates};
use lhmm_core::classic::{ClassicModel, ClassicObservation, ClassicTransition};
use lhmm_core::error::MatchError;
use lhmm_core::lhmm::{LhmmConfig, LhmmModel};
use lhmm_core::registry::ModelRegistry;
use lhmm_core::types::{Candidate, MatchContext};
use lhmm_core::viterbi::{EngineConfig, HmmEngine};
use lhmm_geo::Point;
use lhmm_network::graph::SegmentId;
use lhmm_serve::protocol::{read_response, write_request, Request, Response};
use lhmm_serve::{
    ClientError, ClusterConfig, ClusterHandle, ClusterTopology, RejectReason, ServeClient,
    ServeConfig, ServeCtx, ServerHandle, SessionPolicy,
};
use std::net::TcpStream;
use std::thread;

fn cheap_model(ds: &Dataset, seed: u64) -> LhmmModel {
    let mut cfg = LhmmConfig::fast_test(seed);
    cfg.use_learned_obs = false;
    cfg.use_learned_trans = false;
    LhmmModel::train(ds, cfg)
}

fn ctx(ds: &Dataset) -> MatchContext<'_> {
    MatchContext {
        net: &ds.network,
        index: &ds.index,
        towers: &ds.towers,
    }
}

/// The verdict a served one-shot must reproduce exactly.
type Verdict = Result<Vec<SegmentId>, MatchError>;

fn offline_verdicts(ds: &Dataset, model: &LhmmModel, trajs: &[CellularTrajectory]) -> Vec<Verdict> {
    let ctx = ctx(ds);
    let mut engine = HmmEngine::new(&ds.network, model.engine_config());
    trajs
        .iter()
        .map(|t| {
            model
                .try_match_with_engine_stats(&ctx, t, &mut engine)
                .map(|(r, _)| r.path.segments)
        })
        .collect()
}

/// FNV-1a over the verdict sequence: equal fingerprints mean bitwise-equal
/// verdicts (same routes, same typed errors, same order).
fn fingerprint(verdicts: &[Verdict]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u64| {
        h ^= b;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for v in verdicts {
        match v {
            Ok(segments) => {
                eat(1);
                eat(segments.len() as u64);
                for s in segments {
                    eat(s.0 as u64);
                }
            }
            Err(e) => {
                eat(2);
                let mut buf = String::new();
                use std::fmt::Write as _;
                let _ = write!(buf, "{e:?}");
                for byte in buf.bytes() {
                    eat(byte as u64);
                }
            }
        }
    }
    h
}

fn served_verdicts(addr: std::net::SocketAddr, trajs: &[CellularTrajectory]) -> Vec<Verdict> {
    let mut client = ServeClient::connect(addr).expect("connect");
    trajs
        .iter()
        .map(|t| match client.one_shot(t) {
            Ok(reply) => Ok(reply.segments),
            Err(ClientError::Failed(e)) => Err(e),
            Err(e) => panic!("unexpected serving outcome: {e}"),
        })
        .collect()
}

/// Offline full-lag reference with the same compacted candidate
/// preparation the session manager applies.
fn offline_streaming_reference(
    ds: &Dataset,
    traj: &CellularTrajectory,
    k: usize,
    radius: f64,
) -> Vec<SegmentId> {
    let mut model = ClassicModel::new(
        ClassicObservation::cellular(),
        ClassicTransition::cellular(),
        Vec::new(),
    );
    let mut pts: Vec<(Point, f64)> = Vec::new();
    let mut layers: Vec<Vec<Candidate>> = Vec::new();
    for p in &traj.points {
        let pos = p.effective_pos();
        let pairs = nearest_segments(&ds.network, &ds.index, pos, k, radius);
        if pairs.is_empty() {
            continue;
        }
        let i = pts.len();
        model.positions.push(pos);
        layers.push(to_candidates(&mut model, i, &pairs));
        pts.push((pos, p.t));
    }
    if pts.is_empty() {
        return Vec::new();
    }
    let mut engine = HmmEngine::new(
        &ds.network,
        EngineConfig {
            shortcuts: 0,
            ..Default::default()
        },
    );
    engine
        .try_find_path(&ds.network, &pts, layers, &mut model)
        .expect("valid layers")
        .path
        .segments
}

/// Streams `traj` through the endpoint at `addr` and returns the
/// per-push outcome trace (committed counts and typed per-point errors)
/// plus the final route — the full observable behavior of the session.
fn stream_session(
    addr: std::net::SocketAddr,
    session: u64,
    lag: u32,
    traj: &CellularTrajectory,
) -> (Vec<Result<u32, String>>, Vec<SegmentId>, bool) {
    let mut client = ServeClient::connect(addr).expect("connect");
    client.open(session, lag).expect("open session");
    let mut trace = Vec::new();
    for p in &traj.points {
        match client.push(session, p) {
            Ok(committed) => trace.push(Ok(committed)),
            Err(ClientError::Failed(
                e @ (MatchError::NoCandidates | MatchError::EmptyLayer { .. }),
            )) => trace.push(Err(format!("{e:?}"))),
            Err(e) => panic!("session {session}: push failed: {e}"),
        }
    }
    let reply = client.finish(session).expect("finish");
    (trace, reply.segments, reply.degraded)
}

#[test]
fn four_shard_oneshot_fingerprint_equals_single_process_and_offline() {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(501));
    let model = cheap_model(&ds, 501);
    let base: Vec<CellularTrajectory> =
        ds.test.iter().take(2).map(|r| r.cellular.clone()).collect();
    let corpus = AdversarialCorpus::generate(&base, 501);
    let trajs: Vec<CellularTrajectory> = corpus.cases.iter().map(|c| c.traj.clone()).collect();

    let offline_fp = fingerprint(&offline_verdicts(&ds, &model, &trajs));
    let registry = ModelRegistry::new(model, "v1");
    let topology = ClusterTopology::build(&ds.network, &ds.index, 2, 2, 3000.0);
    assert_eq!(topology.num_tiles(), 4);

    let (single_fp, cluster_fp) = thread::scope(|s| {
        let serve = ServeCtx {
            ctx: ctx(&ds),
            registry: &registry,
            scope: None,
        };
        let single =
            ServerHandle::start(s, serve, ServeConfig::default()).expect("bind single");
        let single_fp = fingerprint(&served_verdicts(single.addr(), &trajs));
        single.shutdown_and_drain();

        let cluster = ClusterHandle::start(s, serve, &topology, ClusterConfig::default())
            .expect("bind cluster");
        let cluster_fp = fingerprint(&served_verdicts(cluster.addr(), &trajs));
        let report = cluster.shutdown_and_drain();
        assert_eq!(report.in_flight_lost(), 0, "cluster drain dropped admitted work");
        assert_eq!(report.merged.completed as usize, trajs.len());
        assert_eq!(report.shards, 4);
        (single_fp, cluster_fp)
    });

    assert_eq!(
        cluster_fp, single_fp,
        "4-shard verdict fingerprint diverged from single-process"
    );
    assert_eq!(
        cluster_fp, offline_fp,
        "4-shard verdict fingerprint diverged from offline serial"
    );
}

#[test]
fn streaming_handoff_across_tiles_is_byte_identical_to_single_process() {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(502));
    let registry = ModelRegistry::new(cheap_model(&ds, 502), "v1");
    let sessions = SessionPolicy::default();
    let (k, radius) = (sessions.k, sessions.radius);
    let topology = ClusterTopology::build(&ds.network, &ds.index, 2, 2, radius);
    let trajs: Vec<CellularTrajectory> =
        ds.test.iter().take(4).map(|r| r.cellular.clone()).collect();

    // Every trajectory must cross at least one tile boundary for this test
    // to exercise handoff; the dataset seed guarantees it.
    let crossings: usize = trajs
        .iter()
        .map(|t| {
            t.points
                .windows(2)
                .filter(|w| {
                    topology.route(w[0].effective_pos()) != topology.route(w[1].effective_pos())
                })
                .count()
        })
        .sum();
    assert!(crossings > 0, "seed produced no tile-crossing trajectories");

    thread::scope(|s| {
        let serve = ServeCtx {
            ctx: ctx(&ds),
            registry: &registry,
            scope: None,
        };
        let config = ServeConfig {
            sessions: sessions.clone(),
            ..Default::default()
        };
        let single = ServerHandle::start(s, serve, config.clone()).expect("bind single");
        let cluster = ClusterHandle::start(
            s,
            serve,
            &topology,
            ClusterConfig {
                shard: config,
                ..Default::default()
            },
        )
        .expect("bind cluster");

        for (i, traj) in trajs.iter().enumerate() {
            let session = 2000 + i as u64;
            // Fixed lag: commits happen mid-stream, so divergence anywhere
            // in the beam state would surface in the trace.
            let want = stream_session(single.addr(), session, 4, traj);
            let got = stream_session(cluster.addr(), session, 4, traj);
            assert_eq!(
                got, want,
                "session {session}: sharded streaming diverged from single-process"
            );
            // Full lag: the final route must also equal offline Viterbi.
            let offline = offline_streaming_reference(&ds, traj, k, radius);
            let (_, full_lag_route, _) = stream_session(
                cluster.addr(),
                3000 + i as u64,
                (traj.points.len() + 1) as u32,
                traj,
            );
            assert_eq!(
                full_lag_route, offline,
                "session {session}: sharded full-lag route diverged from offline"
            );
        }

        let report = cluster.shutdown_and_drain();
        assert!(report.handoffs >= 1, "no mid-stream handoff happened");
        assert!(report.merged.sessions_exported >= 1);
        assert!(report.merged.sessions_imported >= 1);
        assert_eq!(report.in_flight_lost(), 0);
        single.shutdown_and_drain();
    });
}

#[test]
fn shard_crash_mid_stream_recovers_with_nothing_lost() {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(503));
    let registry = ModelRegistry::new(cheap_model(&ds, 503), "v1");
    let topology = ClusterTopology::build(&ds.network, &ds.index, 2, 2, 3000.0);
    let trajs: Vec<CellularTrajectory> =
        ds.test.iter().take(3).map(|r| r.cellular.clone()).collect();

    thread::scope(|s| {
        let serve = ServeCtx {
            ctx: ctx(&ds),
            registry: &registry,
            scope: None,
        };
        let single = ServerHandle::start(s, serve, ServeConfig::default()).expect("bind single");
        let cluster = ClusterHandle::start(s, serve, &topology, ClusterConfig::default())
            .expect("bind cluster");

        for (i, traj) in trajs.iter().enumerate() {
            let session = 4000 + i as u64;
            let want = stream_session(single.addr(), session, 4, traj);

            // Same stream against the cluster, but kill the shard that
            // holds the session halfway through.
            let mut client = ServeClient::connect(cluster.addr()).expect("connect");
            client.open(session, 4).expect("open");
            let mut trace = Vec::new();
            let cut = traj.points.len() / 2;
            let mut last_tile = None;
            for (j, p) in traj.points.iter().enumerate() {
                if j == cut {
                    if let Some(tile) = last_tile {
                        assert!(
                            cluster.kill_shard(tile),
                            "session {session}: shard {tile} was already down"
                        );
                    }
                }
                match client.push(session, p) {
                    Ok(committed) => {
                        trace.push(Ok(committed));
                        last_tile = Some(topology.route(p.effective_pos()));
                    }
                    Err(ClientError::Failed(
                        e @ (MatchError::NoCandidates | MatchError::EmptyLayer { .. }),
                    )) => trace.push(Err(format!("{e:?}"))),
                    Err(e) => panic!("session {session}: push failed after crash: {e}"),
                }
            }
            let reply = client.finish(session).expect("finish after crash");
            let got = (trace, reply.segments, reply.degraded);
            assert_eq!(
                got, want,
                "session {session}: crash recovery diverged from uninterrupted single-process"
            );
        }

        let report = cluster.shutdown_and_drain();
        assert!(report.restarts >= 1, "the supervisor never restarted a shard");
        assert!(report.replays >= 1, "no journal replay happened");
        assert_eq!(
            report.in_flight_lost(),
            0,
            "a crashed shard lost admitted work"
        );
        single.shutdown_and_drain();
    });
}

#[test]
fn snapshot_and_restore_are_rejected_on_the_public_plane() {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(504));
    let registry = ModelRegistry::new(cheap_model(&ds, 504), "v1");
    let topology = ClusterTopology::build(&ds.network, &ds.index, 2, 1, 3000.0);

    thread::scope(|s| {
        let cluster = ClusterHandle::start(
            s,
            ServeCtx {
                ctx: ctx(&ds),
                registry: &registry,
                scope: None,
            },
            &topology,
            ClusterConfig::default(),
        )
        .expect("bind cluster");

        let mut stream = TcpStream::connect(cluster.addr()).expect("connect");
        write_request(&mut stream, &Request::Snapshot { client: 7 }).expect("write");
        match read_response(&mut stream).expect("read") {
            Response::Reject(RejectReason::Invalid) => {}
            other => panic!("expected Invalid reject for public Snapshot, got {other:?}"),
        }

        // An opened-but-never-pushed session finishes with the empty route,
        // exactly like single-process serving.
        let mut client = ServeClient::connect(cluster.addr()).expect("connect");
        client.open(9, 4).expect("open");
        let reply = client.finish(9).expect("finish");
        assert!(reply.segments.is_empty());
        assert!(!reply.degraded);

        let report = cluster.shutdown_and_drain();
        assert_eq!(report.merged.rejected_for(RejectReason::Invalid), 1);
    });
}
