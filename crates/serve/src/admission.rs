//! Admission control: typed rejection reasons and the bounded MPSC queue.
//!
//! Overload policy (the serving half of the PR 3 degradation story): when
//! the system cannot take more work, it says so *immediately* with a typed
//! [`RejectReason`] instead of queueing unboundedly and letting latency
//! grow until everything times out. The bounded queue is the only place
//! requests wait; everything behind it (scheduler, workers) pulls at its
//! own pace.

use lhmm_core::sync::{rank, OrderedMutex};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Condvar;
use std::time::Duration;

/// Why a request was shed at admission, layered on the
/// [`MatchError`](lhmm_core::error::MatchError) taxonomy: these are
/// *service* verdicts (try again later / elsewhere), not matching verdicts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RejectReason {
    /// The admission queue is at capacity; retry with backoff.
    QueueFull,
    /// The session table is at its cap and no session is evictable.
    SessionLimit,
    /// The server is draining; no new work is admitted.
    ShuttingDown,
    /// The request exceeds the configured size limit (points per
    /// trajectory) or the frame cap.
    Oversized,
    /// The request is not acceptable on this endpoint or failed semantic
    /// validation (e.g. a beam-state snapshot that violates its invariants,
    /// or a shard-internal frame sent to the public router plane).
    Invalid,
}

impl RejectReason {
    /// Stable wire code.
    pub fn code(self) -> u8 {
        match self {
            RejectReason::QueueFull => 0,
            RejectReason::SessionLimit => 1,
            RejectReason::ShuttingDown => 2,
            RejectReason::Oversized => 3,
            RejectReason::Invalid => 4,
        }
    }

    /// Decodes a wire code.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(RejectReason::QueueFull),
            1 => Some(RejectReason::SessionLimit),
            2 => Some(RejectReason::ShuttingDown),
            3 => Some(RejectReason::Oversized),
            4 => Some(RejectReason::Invalid),
            _ => None,
        }
    }

    /// Index into per-reason counter arrays (dense, 0..5).
    pub fn index(self) -> usize {
        self.code() as usize
    }

    /// Number of distinct reasons (size for counter arrays).
    pub const COUNT: usize = 5;
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull => write!(f, "admission queue full"),
            RejectReason::SessionLimit => write!(f, "session limit reached"),
            RejectReason::ShuttingDown => write!(f, "server shutting down"),
            RejectReason::Oversized => write!(f, "request exceeds size limits"),
            RejectReason::Invalid => write!(f, "request invalid on this endpoint"),
        }
    }
}

/// A bounded multi-producer queue with blocking consumers.
///
/// Producers never block: [`BoundedQueue::try_push`] fails fast with the
/// value when the queue is full or closed — the admission-control
/// primitive. Consumers block with a timeout so they can observe shutdown.
pub struct BoundedQueue<T> {
    // Rank-ordered (DESIGN §15): the queue lock rides poison exactly as
    // the old `lock_unpoisoned` helper did — serving state must stay
    // reachable even if a holder panicked mid-update.
    inner: OrderedMutex<QueueState<T>>,
    not_empty: Condvar,
    cap: usize,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// At capacity.
    Full,
    /// Queue closed for admissions (drain started).
    Closed,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `cap` items (`cap = 0` rejects
    /// everything — a degenerate but valid "serve nothing" configuration).
    pub fn new(cap: usize) -> Self {
        BoundedQueue {
            inner: OrderedMutex::new(rank::ADMISSION_QUEUE, "admission.queue", QueueState {
                items: VecDeque::with_capacity(cap.min(1024)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            cap,
        }
    }

    /// Attempts to enqueue without blocking.
    pub fn try_push(&self, value: T) -> Result<(), (PushError, T)> {
        let mut st = self.inner.lock();
        if st.closed {
            return Err((PushError::Closed, value));
        }
        if st.items.len() >= self.cap {
            return Err((PushError::Full, value));
        }
        st.items.push_back(value);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues, waiting up to `timeout`. `None` on timeout or when the
    /// queue is closed *and* drained.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let mut st = self.inner.lock();
        loop {
            if let Some(v) = st.items.pop_front() {
                return Some(v);
            }
            if st.closed {
                return None;
            }
            // Same-lock deadline wait: the guard is consumed and handed
            // back by the witness-aware wrapper.
            let (next, timed_out) = st.wait_timeout(&self.not_empty, timeout);
            st = next;
            if timed_out {
                return st.items.pop_front();
            }
        }
    }

    /// Current depth (instantaneous; for telemetry).
    pub fn len(&self) -> usize {
        self.inner.lock().items.len()
    }

    /// True when empty at this instant.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: further pushes fail with [`PushError::Closed`];
    /// consumers drain the remaining items and then see `None`.
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.not_empty.notify_all();
    }

    /// True once [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn reject_codes_roundtrip_and_are_dense() {
        for reason in [
            RejectReason::QueueFull,
            RejectReason::SessionLimit,
            RejectReason::ShuttingDown,
            RejectReason::Oversized,
            RejectReason::Invalid,
        ] {
            assert_eq!(RejectReason::from_code(reason.code()), Some(reason));
            assert!(reason.index() < RejectReason::COUNT);
            assert!(!reason.to_string().is_empty());
        }
        assert_eq!(RejectReason::from_code(200), None);
    }

    #[test]
    fn queue_bounds_and_sheds() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        match q.try_push(3) {
            Err((PushError::Full, v)) => assert_eq!(v, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(1));
        assert!(q.try_push(3).is_ok());
    }

    #[test]
    fn close_rejects_pushes_but_drains_consumers() {
        let q = BoundedQueue::new(4);
        q.try_push("a").ok();
        q.try_push("b").ok();
        q.close();
        assert!(matches!(q.try_push("c"), Err((PushError::Closed, _))));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some("a"));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some("b"));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), None);
    }

    #[test]
    fn pop_wakes_on_cross_thread_push() {
        let q = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || q2.pop_timeout(Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(20));
        q.try_push(99).ok();
        assert_eq!(h.join().expect("join"), Some(99));
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let q = BoundedQueue::new(0);
        assert!(matches!(q.try_push(1), Err((PushError::Full, _))));
    }
}
