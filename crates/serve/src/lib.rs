//! `lhmm-serve`: an online map-matching service over the LHMM engine,
//! built entirely on `std`.
//!
//! The serving stack (ISSUE 4 tentpole) has three load-bearing pieces:
//!
//! * **Micro-batch scheduler** ([`scheduler`]): one-shot requests enter a
//!   bounded admission queue and are coalesced into size-or-deadline
//!   batches dispatched onto a worker pool. Each worker owns a private
//!   [`HmmEngine`](lhmm_core::viterbi::HmmEngine) whose scratch arenas and
//!   shortest-path cache shard recycle across requests — results are
//!   byte-identical to serial offline matching (cache state never changes
//!   answers, only speed).
//! * **Session manager** ([`session`]): multi-tenant fixed-lag streaming
//!   sessions keyed by client id, with idle-timeout sweeping and LRU
//!   eviction at the cap.
//! * **Admission control** ([`admission`]): when the service cannot take
//!   more work it says so immediately with a typed [`RejectReason`] —
//!   queue full, session limit, shutting down, oversized — instead of
//!   queueing unboundedly.
//!
//! The wire protocol ([`protocol`]) is a length-prefixed binary framing
//! over TCP; [`client`] is the blocking in-crate client. [`server`] ties
//! it together and guarantees graceful drain: stop admissions, flush every
//! admitted request, finalize sessions, join all threads, report metrics
//! ([`metrics`]).
//!
//! Model versioning (ISSUE 9): every server runs against a
//! [`ModelRegistry`](lhmm_core::registry::ModelRegistry). Work is pinned
//! to the active version at admission; hot swaps only affect later
//! admissions, shadow mode mirrors a fraction of one-shots through a
//! candidate version, and reports slice latency by version
//! ([`lhmm_eval::versioned`]).

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

pub mod admission;
pub mod client;
pub mod cluster;
pub mod metrics;
pub mod protocol;
pub mod scheduler;
pub mod server;
pub mod session;

pub use admission::{BoundedQueue, PushError, RejectReason};
pub use client::{ClientError, ModelsReply, RouteReply, ServeClient};
pub use cluster::{ClusterConfig, ClusterHandle, ClusterReport, ClusterTopology};
pub use metrics::{ServeMetrics, ServeReport};
pub use protocol::{Request, Response, WireError, WireMatchError, MAX_FRAME};
pub use scheduler::{BatchPolicy, MatchReply, MicroBatcher, ServeCtx};
pub use server::{ServeConfig, ServerHandle};
pub use session::{SessionFinish, SessionManager, SessionPolicy};
